#!/usr/bin/env python
"""Profile one simulation cell under cProfile.

Answers "where does the wall time of a cell go?" without touching the
simulator: runs one (workload, policy, budget) cell under either
interpreter and prints the top-N functions by cumulative time.

Examples::

    PYTHONPATH=src python tools/profile_run.py mcf
    PYTHONPATH=src python tools/profile_run.py swim --policy hw_only \
        --instructions 200000 --no-fast --top 40
    PYTHONPATH=src python tools/profile_run.py art --out art.pstats
    python -m pstats art.pstats     # interactive drill-down later
"""

from __future__ import annotations

import argparse
import cProfile
import pathlib
import pstats
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.config import PrefetchPolicy  # noqa: E402
from repro.harness.runner import run_simulation  # noqa: E402
from repro.workloads.registry import BENCHMARK_NAMES  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cProfile one simulation cell",
    )
    parser.add_argument("workload", choices=BENCHMARK_NAMES)
    parser.add_argument(
        "--policy",
        default="self_repairing",
        choices=[p.value for p in PrefetchPolicy],
    )
    parser.add_argument("--instructions", type=int, default=100_000)
    parser.add_argument("--warmup", type=int, default=200_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--fast",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "profile the decoded fast interpreter (default); --no-fast "
            "profiles the reference step loop"
        ),
    )
    parser.add_argument(
        "--top",
        type=int,
        metavar="N",
        default=25,
        help="rows of the cumulative-time table to print (default 25)",
    )
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime", "ncalls"],
        help="stat column to rank by (default cumulative)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE.pstats",
        default=None,
        help="also dump raw stats for pstats/snakeviz drill-down",
    )
    args = parser.parse_args(argv)

    profile = cProfile.Profile()
    profile.enable()
    result = run_simulation(
        args.workload,
        policy=PrefetchPolicy(args.policy),
        max_instructions=args.instructions,
        warmup_instructions=args.warmup,
        seed=args.seed,
        fast=args.fast,
    )
    profile.disable()

    interp = "fast" if args.fast else "slow"
    print(
        f"cell: {args.workload}/{args.policy} "
        f"({args.instructions:,} measured + {args.warmup:,} warmup, "
        f"{interp} interpreter) -> IPC {result.ipc:.4f}"
    )
    print()
    stats = pstats.Stats(profile, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    if args.out:
        stats.dump_stats(args.out)
        print(f"raw stats written to {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
