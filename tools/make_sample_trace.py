#!/usr/bin/env python
"""Regenerate the checked-in sample ChampSim trace.

Usage::

    PYTHONPATH=src python tools/make_sample_trace.py [OUT.champsim.gz]

Writes ``examples/traces/sample_loop.champsim.gz`` by default: a
deterministic 3-instruction loop traced for 600 iterations — one dense
strided load (the prefetchable stream), one irregular load over a 1 MiB
window (the delinquent load a repairing prefetcher has to live with),
and the loop's taken backward branch.  Byte-stable across runs (fixed
seed, fixed mtime in the gzip header) so the file can live in git and
in golden job specs.
"""

from __future__ import annotations

import gzip
import pathlib
import random
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.scenarios.trace import RECORD  # noqa: E402

DEFAULT_OUT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "examples" / "traces" / "sample_loop.champsim.gz"
)

ITERATIONS = 600
LOOP_HEAD = 0x0040_1000


def record(ip, is_branch=0, taken=0, loads=(), stores=()):
    loads = tuple(loads) + (0,) * (4 - len(loads))
    stores = tuple(stores) + (0,) * (2 - len(stores))
    return RECORD.pack(
        ip, is_branch, taken,
        0, 0,            # dest_regs
        0, 0, 0, 0,      # src_regs
        *stores, *loads,
    )


def build() -> bytes:
    rng = random.Random(20060325)  # CGO'06, fixed forever
    out = []
    for i in range(ITERATIONS):
        # Strided stream: one 8-byte word per iteration.
        out.append(record(LOOP_HEAD, loads=(0x1000_0000 + i * 8,)))
        # Irregular load over a 1 MiB window.
        out.append(record(
            LOOP_HEAD + 8,
            loads=(0x2000_0000 + rng.randrange(1 << 20) * 8,),
        ))
        # Loop back-edge.
        out.append(record(LOOP_HEAD + 16, is_branch=1, taken=1))
    return b"".join(out)


def main() -> int:
    out = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_OUT
    out.parent.mkdir(parents=True, exist_ok=True)
    payload = build()
    with open(out, "wb") as fh:
        with gzip.GzipFile(
            filename="", mode="wb", fileobj=fh, mtime=0
        ) as gz:
            gz.write(payload)
    print(f"wrote {len(payload) // 64} records to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
