#!/usr/bin/env python3
"""Render repair-timeline JSONL as markdown with ASCII distance charts.

Input: the per-PC timeline records written by
``python -m repro timeline <workload> --json-out timelines.jsonl``
(one JSON object per line, the ``PCTimeline.to_dict`` schema).

Output (stdout): one markdown section per prefetch group — its loads,
delinquent-load event count, final state, the step table, and a
distance-versus-cycle ASCII chart showing the section-3.5.2 search
(1 → ... → max, with −1 steps where the latency rose).

Usage::

    python tools/render_timeline.py timelines.jsonl
    python tools/render_timeline.py timelines.jsonl --width 72 --pc 3
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple


def load_timelines(path: str) -> List[Dict]:
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise SystemExit(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from None
    return records


def distance_chart(
    trajectory: List[Tuple[float, int]], width: int
) -> List[str]:
    """ASCII chart: one row per distance value, cycles left to right.

    Each column is one cycle bucket; the marker sits on the row of the
    distance in force at that point of the search.
    """
    if not trajectory:
        return ["(no distance-bearing steps)"]
    cycles = [c for c, _d in trajectory]
    distances = [d for _c, d in trajectory]
    lo_d, hi_d = min(distances), max(distances)
    lo_c, hi_c = min(cycles), max(cycles)
    span_c = max(1.0, hi_c - lo_c)
    cols = max(1, width - 12)

    def col_of(cycle: float) -> int:
        return min(cols - 1, int((cycle - lo_c) / span_c * (cols - 1)))

    # Forward-fill: the distance holds between steps.
    grid = {}
    for (cycle, distance), nxt in zip(
        trajectory, trajectory[1:] + [(hi_c, distances[-1])]
    ):
        for col in range(col_of(cycle), col_of(nxt[0]) + 1):
            grid[col] = distance
    lines = []
    for d in range(hi_d, lo_d - 1, -1):
        row = "".join(
            "*" if grid.get(col) == d else
            ("." if grid.get(col) is not None and grid[col] > d else " ")
            for col in range(cols)
        )
        lines.append(f"  d={d:<3d} |{row}")
    lines.append(f"        +{'-' * cols}")
    lines.append(
        f"        cycle {int(lo_c)} .. {int(hi_c)}"
    )
    return lines


def render_record(record: Dict, width: int) -> str:
    pcs = ", ".join(str(pc) for pc in record.get("load_pcs", []))
    out = [
        f"## pc {record.get('pc')} ({record.get('kind', 'stride')})",
        "",
        f"- loads: {pcs or '-'}",
        f"- delinquent-load events: {record.get('dl_events', 0)}",
        f"- final distance: {record.get('final_distance')}",
    ]
    if record.get("mature"):
        out.append(
            f"- matured at cycle {int(record.get('mature_cycle') or 0)}"
        )
    steps = record.get("steps", [])
    if steps:
        out += [
            "",
            "| cycle | event | distance | avg latency |",
            "|------:|:------|---------:|------------:|",
        ]
        for step in steps:
            distance = step.get("distance", "")
            latency = step.get("avg_latency")
            latency = f"{latency:.1f}" if latency is not None else ""
            out.append(
                f"| {int(step.get('cycle', 0))} | {step.get('kind', '?')} "
                f"| {distance} | {latency} |"
            )
    trajectory = [
        (step["cycle"], step["distance"])
        for step in steps
        if "distance" in step and step.get("distance") is not None
    ]
    out += ["", "```"] + distance_chart(trajectory, width) + ["```", ""]
    return "\n".join(out)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("jsonl", help="timeline JSONL file")
    parser.add_argument(
        "--width", type=int, default=72, help="chart width in columns"
    )
    parser.add_argument(
        "--pc",
        type=int,
        default=None,
        help="render only the group led by this PC",
    )
    args = parser.parse_args(argv)
    records = load_timelines(args.jsonl)
    if args.pc is not None:
        records = [r for r in records if r.get("pc") == args.pc]
        if not records:
            print(f"no timeline for pc {args.pc}", file=sys.stderr)
            return 1
    if not records:
        print("no timelines in input", file=sys.stderr)
        return 1
    print("# Repair timelines")
    print()
    for record in records:
        print(render_record(record, args.width))
    return 0


if __name__ == "__main__":
    sys.exit(main())
