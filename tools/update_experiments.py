#!/usr/bin/env python
"""Rebuild EXPERIMENTS.md's reference tables from benchmarks/results/.

Run after a bench pass::

    pytest benchmarks/ --benchmark-only
    python tools/update_experiments.py

The section between the ``## Reference tables`` heading and the next
``## `` heading is replaced with the current contents of the results
directory, in figure order.
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).parent.parent
RESULTS = ROOT / "benchmarks" / "results"
EXPERIMENTS = ROOT / "EXPERIMENTS.md"

#: Preferred table order (anything else is appended alphabetically).
ORDER = [
    "fig2_hw_baseline",
    "fig3_overhead",
    "fig4_coverage",
    "fig5_policies",
    "fig6_breakdown",
    "fig7_threshold_sweep",
    "fig8_dlt_sweep",
    "fig9_sw_vs_hw",
    "cache_equiv",
    "ablation_initial_distance",
    "ablation_grouping",
    "ablation_confidence_penalty",
    "ablation_repair_budget",
    "ablation_phase_detection",
    "ablation_markov",
    "resilience",
]


def collect_tables() -> str:
    """Gather the result tables, tolerating damage.

    A missing, unreadable, or empty results file — a bench that crashed
    mid-write, a partial sync — is skipped with a warning instead of
    sinking the whole rebuild; only a completely empty results directory
    is fatal.
    """
    files = {p.stem: p for p in RESULTS.glob("*.txt")}
    names = [n for n in ORDER if n in files]
    names += sorted(set(files) - set(ORDER))
    tables = []
    for name in names:
        try:
            text = files[name].read_text().strip()
        except OSError as exc:
            print(
                f"warning: skipping unreadable {files[name].name}: {exc}",
                file=sys.stderr,
            )
            continue
        if not text:
            print(
                f"warning: skipping empty {files[name].name}",
                file=sys.stderr,
            )
            continue
        tables.append(text)
    if not tables:
        raise SystemExit(
            "no usable results found; run "
            "`pytest benchmarks/ --benchmark-only`"
        )
    return "\n\n".join(tables)


def main() -> int:
    text = EXPERIMENTS.read_text()
    block = "## Reference tables\n\n```\n" + collect_tables() + "\n```\n"
    pattern = re.compile(
        r"## Reference tables\n+```\n.*?\n```\n", flags=re.S
    )
    if not pattern.search(text):
        raise SystemExit("EXPERIMENTS.md has no '## Reference tables'")
    EXPERIMENTS.write_text(pattern.sub(block, text, count=1))
    print(f"EXPERIMENTS.md updated from {RESULTS}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
