#!/usr/bin/env python
"""Rebuild EXPERIMENTS.md's reference tables from benchmarks/results/.

Run after a bench pass::

    pytest benchmarks/ --benchmark-only
    python tools/update_experiments.py

or regenerate the tables directly through the experiment engine —
shared HW_ONLY baselines are simulated once per budget and every rerun
replays unchanged results from the cache::

    python tools/update_experiments.py --regenerate --jobs 4

The section between the ``## Reference tables`` heading and the next
``## `` heading is replaced with the current contents of the results
directory, in figure order.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).parent.parent
RESULTS = ROOT / "benchmarks" / "results"
EXPERIMENTS = ROOT / "EXPERIMENTS.md"

#: Preferred table order (anything else is appended alphabetically).
ORDER = [
    "fig2_hw_baseline",
    "fig3_overhead",
    "fig4_coverage",
    "fig5_policies",
    "fig6_breakdown",
    "fig7_threshold_sweep",
    "fig8_dlt_sweep",
    "fig9_sw_vs_hw",
    "cache_equiv",
    "ablation_initial_distance",
    "ablation_grouping",
    "ablation_confidence_penalty",
    "ablation_repair_budget",
    "ablation_phase_detection",
    "ablation_markov",
    "resilience",
    "tournament",
]


def collect_tables() -> str:
    """Gather the result tables, tolerating damage.

    A missing, unreadable, or empty results file — a bench that crashed
    mid-write, a partial sync — is skipped with a warning instead of
    sinking the whole rebuild; only a completely empty results directory
    is fatal.
    """
    files = {p.stem: p for p in RESULTS.glob("*.txt")}
    names = [n for n in ORDER if n in files]
    names += sorted(set(files) - set(ORDER))
    tables = []
    for name in names:
        try:
            text = files[name].read_text().strip()
        except OSError as exc:
            print(
                f"warning: skipping unreadable {files[name].name}: {exc}",
                file=sys.stderr,
            )
            continue
        if not text:
            print(
                f"warning: skipping empty {files[name].name}",
                file=sys.stderr,
            )
            continue
        tables.append(text)
    if not tables:
        raise SystemExit(
            "no usable results found; run "
            "`pytest benchmarks/ --benchmark-only`"
        )
    return "\n\n".join(tables)


def regenerate(jobs: int, refresh: bool, workloads) -> None:
    """Re-run every experiment through one shared engine and rewrite
    benchmarks/results/*.txt (what a full bench pass would produce)."""
    sys.path.insert(0, str(ROOT / "src"))
    from repro.harness import experiments as E
    from repro.harness import sweep as S
    from repro.harness.engine import ExperimentEngine
    from repro.harness.experiments import (
        bench_instructions,
        bench_warmup,
    )

    engine = ExperimentEngine(workers=jobs, refresh=refresh)
    sweep_names = workloads or ["art", "dot", "mcf", "parser", "swim"]
    budget, warm = bench_instructions(), bench_warmup()
    producers = {
        "fig2_hw_baseline": lambda: E.fig2_hw_baseline(
            workloads=workloads, engine=engine),
        "fig3_overhead": lambda: E.fig3_overhead(
            workloads=workloads, engine=engine),
        "fig4_coverage": lambda: E.fig4_coverage(
            workloads=workloads, engine=engine),
        "fig5_policies": lambda: E.fig5_policies(
            workloads=workloads, engine=engine),
        "fig6_breakdown": lambda: E.fig6_breakdown(
            workloads=workloads, engine=engine),
        "fig7_threshold_sweep": lambda: E.fig7_threshold_sweep(
            workloads=sweep_names, engine=engine),
        "fig8_dlt_sweep": lambda: E.fig8_dlt_sweep(
            workloads=sweep_names, engine=engine),
        "fig9_sw_vs_hw": lambda: E.fig9_sw_vs_hw(
            workloads=workloads, engine=engine),
        "cache_equiv": lambda: E.cache_equivalent_area(
            workloads=workloads, engine=engine),
        "ablation_initial_distance": lambda: S.ablation_initial_distance(
            sweep_names, budget, warmup_instructions=warm, engine=engine),
        "ablation_grouping": lambda: S.ablation_grouping(
            sweep_names, budget, warmup_instructions=warm, engine=engine),
        "ablation_confidence_penalty": (
            lambda: S.ablation_confidence_penalty(
                sweep_names, budget, warmup_instructions=warm,
                engine=engine)),
        "ablation_repair_budget": lambda: S.ablation_repair_budget(
            sweep_names, budget, warmup_instructions=warm, engine=engine),
        "ablation_phase_detection": lambda: S.ablation_phase_detection(
            sweep_names, budget, warmup_instructions=warm, engine=engine),
        "ablation_markov": lambda: S.ablation_markov(
            workloads or ["dot", "mcf", "parser"], budget,
            warmup_instructions=warm, engine=engine),
        "resilience": lambda: E.resilience(
            workloads=sweep_names, engine=engine),
        "tournament": lambda: E.tournament(
            workloads=workloads, engine=engine),
    }
    RESULTS.mkdir(exist_ok=True)
    for name, produce in producers.items():
        print(f"regenerating {name} ...", file=sys.stderr)
        result = produce()
        (RESULTS / f"{name}.txt").write_text(result.render() + "\n")
    print(engine.stats.summary(), file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--regenerate",
        action="store_true",
        help=(
            "re-run every experiment through the engine (honouring "
            "REPRO_BENCH_* budgets) before rebuilding EXPERIMENTS.md"
        ),
    )
    parser.add_argument(
        "--jobs", type=int, metavar="N", default=1,
        help="engine worker processes for --regenerate",
    )
    parser.add_argument(
        "--refresh", action="store_true",
        help="with --regenerate: bypass cached results and re-simulate",
    )
    parser.add_argument(
        "--workloads", default=None,
        help="with --regenerate: comma-separated workload subset",
    )
    # Tests call main() directly; only the __main__ guard passes argv.
    args = parser.parse_args([] if argv is None else argv)
    if args.regenerate:
        workloads = None
        if args.workloads:
            workloads = [
                w.strip() for w in args.workloads.split(",") if w.strip()
            ]
        regenerate(args.jobs, args.refresh, workloads)
    text = EXPERIMENTS.read_text()
    block = "## Reference tables\n\n```\n" + collect_tables() + "\n```\n"
    pattern = re.compile(
        r"## Reference tables\n+```\n.*?\n```\n", flags=re.S
    )
    if not pattern.search(text):
        raise SystemExit("EXPERIMENTS.md has no '## Reference tables'")
    EXPERIMENTS.write_text(pattern.sub(block, text, count=1))
    print(f"EXPERIMENTS.md updated from {RESULTS}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
