#!/usr/bin/env python
"""Regenerate the golden-trace regression fixtures in tests/data/golden/.

Each fixture pins the full ``SimulationResult.to_dict()`` payload of one
small-budget (workload, policy) cell — cycles, IPC, miss counts, repair
counters, windowed samples, everything — plus a sha256 of its canonical
JSON.  ``tests/test_golden_traces.py`` recomputes every cell on every CI
run and diffs the payloads, so *any* silent timing drift in the
interpreter, the memory hierarchy, or the Trident runtime fails with a
readable field-level diff instead of slipping into the figures.

Run after an intentional timing change::

    PYTHONPATH=src python tools/update_golden.py

and commit the rewritten fixtures together with the change that
justifies them.  The budgets are deliberately tiny (the point is drift
detection, not realism); the grid covers every registered workload so
each workload's access pattern — strided, pointer-chasing, phased —
exercises its own corner of the timing model.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).parent.parent
GOLDEN_DIR = ROOT / "tests" / "data" / "golden"

sys.path.insert(0, str(ROOT / "src"))

from repro.config import PrefetchPolicy  # noqa: E402
from repro.harness.runner import run_simulation  # noqa: E402
from repro.hwprefetch.zoo import zoo_names  # noqa: E402
from repro.scenarios import CATALOG  # noqa: E402
from repro.workloads.registry import BENCHMARK_NAMES  # noqa: E402

#: The fixture grid.  Policies chosen to pin both the bare timing model
#: (HW_ONLY: no runtime, no traces) and the full self-repair loop
#: (SELF_REPAIRING: traces, DLT, repairs, helper thread).
POLICIES = (PrefetchPolicy.HW_ONLY, PrefetchPolicy.SELF_REPAIRING)
MAX_INSTRUCTIONS = 4_000
WARMUP_INSTRUCTIONS = 1_000
SAMPLE_INTERVAL = 1_000
SEED = 1

#: Curated DSL scenarios pinned alongside the builtin benchmarks: the
#: scenario compiler (register plan, data-structure layout, phase
#: nesting) is part of the timing surface these fixtures guard.
SCENARIO_NAMES = tuple(CATALOG)
ALL_WORKLOADS = tuple(BENCHMARK_NAMES) + SCENARIO_NAMES

#: Hardware-prefetcher zoo cells: every registered zoo policy on a
#: small workload subset (one pointer-chaser, one DSL scenario) — the
#: zoo engines' timing is pinned without quadrupling the grid.
ZOO_POLICIES = tuple(zoo_names())
ZOO_WORKLOADS = ("mcf", "stride-flip")


def workload_arg(name: str, seed: int = SEED):
    """Resolve a grid entry: catalog scenarios compile to Workload
    objects, builtin names pass through to the registry."""
    if name in CATALOG:
        return CATALOG[name].build(seed)
    return name


def canonical(payload: dict) -> str:
    """The byte-exact form the equivalence suite compares (no sort_keys:
    dict ordering is part of the result contract)."""
    return json.dumps(payload)


def policy_value(policy) -> str:
    """Fixture key for a cell's policy: enum value or zoo name."""
    return policy.value if isinstance(policy, PrefetchPolicy) else policy


def generate_cell(workload: str, policy) -> dict:
    result = run_simulation(
        workload_arg(workload),
        policy=policy,  # run_simulation resolves zoo names itself
        max_instructions=MAX_INSTRUCTIONS,
        warmup_instructions=WARMUP_INSTRUCTIONS,
        seed=SEED,
        sample_interval=SAMPLE_INTERVAL,
    )
    payload = result.to_dict()
    return {
        "spec": {
            "workload": workload,
            "policy": policy_value(policy),
            "max_instructions": MAX_INSTRUCTIONS,
            "warmup_instructions": WARMUP_INSTRUCTIONS,
            "seed": SEED,
            "sample_interval": SAMPLE_INTERVAL,
        },
        "sha256": hashlib.sha256(canonical(payload).encode()).hexdigest(),
        "result": payload,
    }


def fixture_path(workload: str, policy) -> pathlib.Path:
    return GOLDEN_DIR / f"{workload}__{policy_value(policy)}.json"


def grid_cells():
    """Every (workload, policy) cell in the golden grid."""
    for workload in ALL_WORKLOADS:
        for policy in POLICIES:
            yield workload, policy
    for workload in ZOO_WORKLOADS:
        for policy in ZOO_POLICIES:
            yield workload, policy


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for workload, policy in grid_cells():
        fixture = generate_cell(workload, policy)
        path = fixture_path(workload, policy)
        path.write_text(json.dumps(fixture, indent=1) + "\n")
        print(f"wrote {path.relative_to(ROOT)}  "
              f"sha256={fixture['sha256'][:12]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
