#!/usr/bin/env python
"""Perf-trend reporting and regression gating over the bench history.

Every bench run appends one JSON record (stamped with UTC time and git
revision) to ``benchmarks/results/BENCH_history.jsonl`` — see
``benchmarks/bench_output.py``.  This tool turns that feed into:

* ``report`` — a per-bench trend table: every recorded run at each
  budget, its headline metric, and the delta of the latest run against
  the recorded best;
* ``check``  — the regression gate: for every (bench, budget) series
  with at least two records, fail when the latest run's headline metric
  regresses more than ``--threshold`` (default 20%) against the best
  earlier record.  ``--report-only`` prints the verdicts but always
  exits 0 (CI's mode while history accumulates);
* ``measure`` — run a tracked bench directly (no pytest session) and
  append its record, so CI and developers can grow history cheaply:
  ``REPRO_BENCH_INSTRUCTIONS=8000 python tools/bench_trend.py measure``.

The headline metric is the record's ``speedup`` when it has one (higher
is better), else the summed wall time of its cells (lower is better).
Records are only ever compared within one (bench, instructions, warmup)
series: an 8k-instruction smoke run and a 120k full run measure
different things and must not gate each other.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Dict, List, Optional, Tuple

_REPO = pathlib.Path(__file__).resolve().parent.parent
for entry in (str(_REPO / "src"), str(_REPO / "benchmarks")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

DEFAULT_THRESHOLD = 0.20


def _series_key(record: Dict) -> Tuple[str, int, int]:
    budget = record.get("budget") or {}
    return (
        record.get("bench", "?"),
        int(budget.get("instructions") or 0),
        int(budget.get("warmup") or 0),
    )


def _headline(record: Dict) -> Tuple[str, float, bool]:
    """``(metric name, value, higher_is_better)`` for one record."""
    speedup = record.get("speedup")
    if isinstance(speedup, (int, float)):
        return ("speedup", float(speedup), True)
    walls = record.get("wall_times_s") or {}
    total = sum(
        v for v in walls.values() if isinstance(v, (int, float))
    )
    return ("wall_s", total, False)


def _load_series(
    history_path: Optional[str],
) -> Dict[Tuple[str, int, int], List[Dict]]:
    from bench_output import read_history

    series: Dict[Tuple[str, int, int], List[Dict]] = {}
    for record in read_history(history_path):
        series.setdefault(_series_key(record), []).append(record)
    return series


def _best(records: List[Dict]) -> float:
    metric, _, higher = _headline(records[0])
    values = [_headline(r)[1] for r in records]
    return max(values) if higher else min(values)


def _regression(latest: float, best: float, higher: bool) -> float:
    """Fractional regression of ``latest`` against ``best`` (>0 means
    worse); guards the zero-best corner."""
    if best == 0:
        return 0.0
    if higher:
        return (best - latest) / best
    return (latest - best) / best


def cmd_report(args: argparse.Namespace) -> int:
    series = _load_series(args.history)
    if not series:
        print("no bench history recorded yet")
        return 0
    for key in sorted(series):
        bench, instructions, warmup = key
        records = series[key]
        metric, _, higher = _headline(records[0])
        print(
            f"{bench} @ {instructions:,}+{warmup:,} instructions "
            f"({len(records)} run(s), metric: {metric}, "
            f"{'higher' if higher else 'lower'} is better)"
        )
        for record in records:
            _, value, _ = _headline(record)
            stamp = record.get("recorded_at", "?")
            rev = record.get("git_rev") or "?"
            print(f"  {stamp}  {rev:>9}  {metric}={value:.4f}")
        if len(records) >= 2:
            best = _best(records[:-1])
            _, latest, _ = _headline(records[-1])
            regression = _regression(latest, best, higher)
            print(
                f"  latest vs best-so-far: {latest:.4f} vs {best:.4f} "
                f"({-regression * 100:+.1f}%)"
            )
        print()
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    series = _load_series(args.history)
    gated = {
        key: records
        for key, records in series.items()
        if len(records) >= 2
    }
    if not gated:
        print(
            "bench-trend gate: no series with >=2 records yet; "
            "nothing to compare"
        )
        return 0
    failures = 0
    for key in sorted(gated):
        bench, instructions, warmup = key
        records = gated[key]
        metric, _, higher = _headline(records[0])
        best = _best(records[:-1])
        _, latest, _ = _headline(records[-1])
        regression = _regression(latest, best, higher)
        verdict = "PASS"
        if regression > args.threshold:
            verdict = "FAIL"
            failures += 1
        print(
            f"{verdict}  {bench} @ {instructions:,}+{warmup:,}: "
            f"{metric} {latest:.4f} vs best {best:.4f} "
            f"({-regression * 100:+.1f}%, gate -{args.threshold:.0%})"
        )
    if failures and not args.report_only:
        print(
            f"bench-trend gate: {failures} series regressed beyond "
            f"{args.threshold:.0%}",
            file=sys.stderr,
        )
        return 1
    if failures:
        print(
            f"bench-trend gate: {failures} regression(s) noted "
            "(--report-only: not failing)"
        )
    return 0


def _measure_interp_fastpath() -> pathlib.Path:
    import bench_interp_fastpath as bench

    rows = bench.run_fastpath_bench()
    print(bench.render(rows))
    return bench.record_rows(rows)


#: Benches ``measure`` can run standalone (no pytest session needed).
MEASURABLE = {
    "interp_fastpath": _measure_interp_fastpath,
}


def cmd_measure(args: argparse.Namespace) -> int:
    runner = MEASURABLE.get(args.bench)
    if runner is None:
        print(
            f"error: unknown bench {args.bench!r} "
            f"(measurable: {', '.join(sorted(MEASURABLE))})",
            file=sys.stderr,
        )
        return 2
    path = runner()
    print(f"\nrecorded to {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_trend",
        description="perf-trend reports and regression gating over "
        "benchmarks/results/BENCH_history.jsonl",
    )
    parser.add_argument(
        "--history",
        metavar="PATH",
        default=None,
        help="history file (default: benchmarks/results/"
        "BENCH_history.jsonl)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("report", help="print the per-bench trend tables")
    check = sub.add_parser(
        "check", help="fail when the latest run regresses vs the best"
    )
    check.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        metavar="FRACTION",
        help=f"allowed fractional regression (default "
        f"{DEFAULT_THRESHOLD})",
    )
    check.add_argument(
        "--report-only",
        action="store_true",
        help="print verdicts but always exit 0",
    )
    measure = sub.add_parser(
        "measure",
        help="run a tracked bench standalone and append its record",
    )
    measure.add_argument(
        "--bench",
        default="interp_fastpath",
        help="which bench to run (default: interp_fastpath)",
    )
    args = parser.parse_args(argv)
    if args.command == "report":
        return cmd_report(args)
    if args.command == "check":
        return cmd_check(args)
    return cmd_measure(args)


if __name__ == "__main__":
    sys.exit(main())
