"""swim — shallow-water modelling (the textbook stride benchmark).

Behaviour reproduced: the finite-difference update reading neighbouring
points of three field arrays (u, v, p) at unit stride with a very short
iteration body.  Three perfectly regular streams are a best case for the
hardware stream buffers; the paper notes (section 5.5) that for swim and
equake "hardware prefetching may be more advantageous" than software-only
prefetching — software prefetches here buy little beyond what the buffers
already do and cost issue bandwidth.
"""

from __future__ import annotations

from .base import Workload, counted_loop, new_parts
from .data import build_array

FIELD_WORDS = 4_000_000
INNER_ITERS = 900_000
OUTER_ITERS = 1_000


def build(seed: int = 1) -> Workload:
    parts = new_parts("swim", seed)
    asm = parts.asm

    u = build_array(parts.alloc, FIELD_WORDS)
    v = build_array(parts.alloc, FIELD_WORDS)
    p = build_array(parts.alloc, FIELD_WORDS)

    close_outer = counted_loop(asm, "r21", OUTER_ITERS, "timestep")
    asm.li("r1", u)
    asm.li("r2", v)
    asm.li("r3", p)
    close_inner = counted_loop(asm, "r22", INNER_ITERS, "update")
    for k in range(2):
        asm.ldq("r4", "r1", 8 * (k + 1))  # u[i+k+1]
        asm.ldq("r5", "r2", 8 * (k + 1))  # v[i+k+1]
        asm.ldq("r6", "r3", 8 * k)        # p[i+k]
        asm.addf("r7", "r4", rb="r5")
        asm.mulf("r7", "r7", rb="r6")
        asm.addf("r11", "r11", rb="r7")
    asm.lda("r1", "r1", 16)
    asm.lda("r2", "r2", 16)
    asm.lda("r3", "r3", 16)
    close_inner()
    close_outer()
    asm.halt()

    return Workload(
        name="swim",
        program=asm.build(),
        memory=parts.memory,
        description=(
            "Three unit-stride field streams with a minimal iteration "
            "body — the hardware stream buffers' best case."
        ),
        kind="stride",
        paper_notes=(
            "Software-only prefetching does not beat the 8x8 stream "
            "buffers here (Figure 9's swim shape)."
        ),
    )
