"""gap — computational group theory (low trace coverage, prefetchable
hot-trace misses).

Behaviour reproduced: Figure 4 singles gap out — *low* hot-trace coverage
of misses, yet nearly all in-trace misses prefetchable.  We get that shape
from the round structure below:

* the round opens with ~260 instructions of permutation arithmetic with no
  loads, so the trace formed at the round head (capped at 256
  instructions) covers almost no memory traffic;
* a long straight-line table-walk section (one fresh cache line per block)
  then misses heavily *outside* any trace;
* a small hot multiplication loop forms its own trace, and every one of
  its misses is stride-prefetchable.
"""

from __future__ import annotations

from .base import Workload, counted_loop, new_parts
from .data import build_array

TABLE_WORDS = 8_000_000
VECTOR_WORDS = 4_000_000
ALU_BLOCKS = 44              # ~264 load-free instructions at the head
WALK_BLOCKS = 120            # pseudo-random probes, outside the trace
HOT_ITERS = 50
OUTER_ITERS = 20_000


def build(seed: int = 1) -> Workload:
    parts = new_parts("gap", seed)
    asm = parts.asm

    table = build_array(parts.alloc, TABLE_WORDS)
    vector = build_array(parts.alloc, VECTOR_WORDS)

    asm.li("r1", table)
    asm.li("r2", vector)
    close_outer = counted_loop(asm, "r21", OUTER_ITERS, "round")
    # Part 1: load-free permutation arithmetic.  The trace formed at the
    # round head spends its 256-instruction budget here, covering almost
    # none of the round's memory traffic.
    for _ in range(ALU_BLOCKS):
        asm.sll("r5", "r11", imm=1)
        asm.xor("r6", "r5", rb="r12")
        asm.addq("r11", "r11", rb="r6")
        asm.srl("r12", "r11", imm=3)
        asm.addq("r12", "r12", imm=7)
        asm.xor("r11", "r11", rb="r12")
    # Part 2: pseudo-random table probes (a multiplicative hash walks the
    # 64 MB table) — data-dependent addresses no stream buffer can
    # predict, all executing in original code (outside the capped trace).
    for _block in range(WALK_BLOCKS):
        asm.mulq("r13", "r13", imm=2654435761)
        asm.addq("r13", "r13", imm=12345)
        asm.and_("r14", "r13", imm=(TABLE_WORDS * 8 - 1) & ~63)
        asm.addq("r14", "r14", rb="r1")
        asm.ldq("r4", "r14", 0)
        asm.addq("r15", "r15", rb="r4")
    # Part 3: the hot multiplication loop — its own trace, every miss
    # stride-prefetchable (the "nearly all prefetched" half).
    close_hot = counted_loop(asm, "r22", HOT_ITERS, "mult")
    asm.ldq("r4", "r2", 0)
    asm.ldq("r5", "r2", 8)
    asm.mulq("r6", "r4", rb="r5")
    # Dependent reduction (~16 cycles): the optimal distance stays
    # within the repair search's reach.
    asm.addq("r14", "r14", rb="r6")
    asm.mulq("r14", "r14", rb="r6")
    asm.mulq("r14", "r14", rb="r4")
    asm.mulq("r14", "r14", rb="r5")
    asm.xor("r14", "r14", rb="r6")
    asm.lda("r2", "r2", 64)
    close_hot()
    close_outer()
    asm.halt()

    return Workload(
        name="gap",
        program=asm.build(),
        memory=parts.memory,
        description=(
            "Load-free round head (fills the trace cap), straight-line "
            "table walk outside traces, small hot strided loop."
        ),
        kind="mixed",
        paper_notes=(
            "Low hot-trace coverage, but nearly all in-trace misses are "
            "prefetched (Figure 4's gap shape)."
        ),
    )
