"""mcf — network-simplex pointer chasing (the paper's flagship pointer
benchmark).

Behaviour reproduced: a traversal over arc/node objects linked in lists.
Because the real allocator placed the nodes in a burst, the ``next``
pointers advance at a *mostly constant stride* (with periodic breaks where
segments were reordered) — the exact situation where the DLT's hardware
stride detection turns a pointer load into a stride-prefetchable load
(section 3.3).  Each node contributes three field loads off the same base
register, so same-object grouping covers the whole node with one prefetch.

Footprint exceeds the L3, so every pass misses to memory.
"""

from __future__ import annotations

from .base import Workload, counted_loop, new_parts
from .data import build_linked_list

#: 8 words (64 bytes) per node: next, value, weight, capacity, flow, pad...
NODE_WORDS = 8
NUM_NODES = 120_000          # ~7.3 MB of nodes: larger than the 4 MB L3
SEGMENT = 64                 # sequential run length between layout breaks
INNER_PASS = 100_000         # nodes visited per outer iteration
OUTER_ITERS = 10_000


def build(seed: int = 1) -> Workload:
    parts = new_parts("mcf", seed)
    asm, mem = parts.asm, parts.memory

    head, _nodes = build_linked_list(
        parts.alloc,
        node_words=NODE_WORDS,
        count=NUM_NODES,
        rng=parts.rng,
        segment=SEGMENT,
    )

    close_outer = counted_loop(asm, "r21", OUTER_ITERS, "outer")
    asm.li("r1", head)                    # r1 = current node
    close_inner = counted_loop(asm, "r22", INNER_PASS, "inner")
    asm.ldq("r2", "r1", 8)                # node->value
    asm.ldq("r3", "r1", 16)               # node->weight
    asm.mulq("r4", "r2", rb="r3")
    asm.addq("r11", "r11", rb="r4")       # cost accumulation
    asm.ldq("r5", "r1", 24)               # node->capacity
    asm.addq("r12", "r12", rb="r5")
    # Reduced-cost update: a short dependent chain (as the real pricing
    # loop has), putting the converged iteration around ~20 cycles so the
    # optimal prefetch distance lands near 15-20 node strides.
    asm.mulq("r13", "r11", rb="r12")
    asm.srl("r13", "r13", imm=3)
    asm.xor("r11", "r11", rb="r13")
    asm.addq("r12", "r12", rb="r13")
    asm.mulq("r14", "r12", rb="r11")
    asm.addq("r11", "r11", rb="r14")
    asm.ldq("r1", "r1", 0)                # chase: node = node->next
    close_inner()
    close_outer()
    asm.halt()

    return Workload(
        name="mcf",
        program=asm.build(),
        memory=mem,
        description=(
            "Linked-node traversal with allocator-sequential layout "
            "(segment-shuffled), three field loads per node."
        ),
        kind="pointer",
        paper_notes=(
            "Large self-repairing gain: DLT stride-detects the chase load, "
            "same-object grouping covers all node fields."
        ),
    )
