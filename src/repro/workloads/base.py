"""Workload container and shared helpers.

Each workload module builds a :class:`Workload`: an assembled program plus
a populated data memory, shaped to reproduce the documented memory
behaviour of the SPEC2000 / pointer-intensive benchmark it stands in for
(see DESIGN.md's substitution table).  The paper's benchmarks are Alpha
binaries we cannot run; what the prefetcher *reacts to* is the access
pattern, which these synthetic programs reproduce.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..isa.assembler import Assembler
from ..isa.program import Program
from ..memory.mainmem import DataMemory, HeapAllocator


@dataclass
class Workload:
    """A runnable benchmark: program + initial memory + provenance."""

    name: str
    program: Program
    memory: DataMemory
    description: str
    #: Dominant memory behaviour ("stride", "pointer", "mixed", "irregular").
    kind: str
    #: Notes on which paper observations this workload is shaped to show.
    paper_notes: str = ""


@dataclass
class WorkloadParts:
    """The builder scaffolding every workload module starts from."""

    asm: Assembler
    memory: DataMemory
    alloc: HeapAllocator
    rng: random.Random


def new_parts(name: str, seed: int) -> WorkloadParts:
    memory = DataMemory()
    return WorkloadParts(
        asm=Assembler(name),
        memory=memory,
        alloc=HeapAllocator(memory),
        rng=random.Random(seed),
    )


def counted_loop(asm: Assembler, counter_reg: str, count: int, label: str):
    """Emit the prologue of a counted loop; returns a ``close()`` that
    emits the decrement-and-branch back-edge.

    The back-edge is a conditional taken backward branch — the pattern the
    branch profiler recognises as a hot trace head.
    """
    asm.li(counter_reg, count)
    asm.label(label)

    def close() -> None:
        asm.subq(counter_reg, counter_reg, imm=1)
        asm.bne(counter_reg, label)

    return close
