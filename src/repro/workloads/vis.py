"""vis — visualization / rendering (phase-alternating mixed behaviour).

Behaviour reproduced: a render loop alternating two phases — walking a
display list (allocator-sequential nodes, so the chase load is
DLT-stride-predictable like mcf) and streaming a framebuffer-style array
(pure stride).  The phase alternation exercises the optimizer's ability to
keep several independently-tuned traces live at once, and the DLT's
ability to hold both phases' loads across phase boundaries.
"""

from __future__ import annotations

from .base import Workload, counted_loop, new_parts
from .data import build_array, build_linked_list

NODE_WORDS = 8
NUM_NODES = 60_000
FRAME_WORDS = 4_000_000
LIST_PASS = 2_000
FRAME_PASS = 6_000
OUTER_ITERS = 20_000


def build(seed: int = 1) -> Workload:
    parts = new_parts("vis", seed)
    asm = parts.asm

    head, _ = build_linked_list(
        parts.alloc,
        node_words=NODE_WORDS,
        count=NUM_NODES,
        rng=parts.rng,
    )
    frame = build_array(parts.alloc, FRAME_WORDS)

    asm.li("r2", frame)
    asm.li("r1", head)
    close_outer = counted_loop(asm, "r21", OUTER_ITERS, "frame_loop")
    # Phase 1: display-list walk (sequential layout => stride-predictable
    # pointer chase, same-object field loads).
    close_list = counted_loop(asm, "r22", LIST_PASS, "displaylist")
    asm.ldq("r3", "r1", 8)                # primitive type
    asm.ldq("r4", "r1", 16)               # vertex count
    asm.mulq("r5", "r3", rb="r4")
    asm.addq("r11", "r11", rb="r5")
    asm.ldq("r1", "r1", 0)                # next primitive
    close_list()
    # Phase 2: framebuffer blend (pure stride stream).
    close_frame = counted_loop(asm, "r23", FRAME_PASS, "blend")
    asm.ldq("r6", "r2", 0)
    asm.ldq("r7", "r2", 8)
    asm.addf("r8", "r6", rb="r7")
    asm.stq("r8", "r2", 0)
    asm.lda("r2", "r2", 16)
    close_frame()
    close_outer()
    asm.halt()

    return Workload(
        name="vis",
        program=asm.build(),
        memory=parts.memory,
        description=(
            "Alternating display-list walk (sequential-layout pointer "
            "chase) and framebuffer stride stream."
        ),
        kind="mixed",
        paper_notes=(
            "Two traces with different optimal distances live "
            "simultaneously; both repaired independently."
        ),
    )
