"""galgel — Galerkin fluid oscillation solver (many concurrent streams).

Behaviour reproduced: a spectral update reading *twelve* coefficient
arrays per iteration, sampling two words of each array's current cache
line and advancing one line per iteration.  Twelve streams exceed the
eight hardware stream buffers, so buffer allocation thrashes (much worse
still in the 4x4 configuration — part of Figure 2's spread), while
software prefetching targets each delinquent load individually with no
structural limit.  This is one of the workloads where the software
prefetcher's per-load precision shows up most clearly.
"""

from __future__ import annotations

from .base import Workload, counted_loop, new_parts
from .data import build_array

NUM_STREAMS = 12
ARRAY_WORDS = 4_000_000
INNER_ITERS = 450_000
OUTER_ITERS = 2_000


def build(seed: int = 1) -> Workload:
    parts = new_parts("galgel", seed)
    asm = parts.asm

    bases = [build_array(parts.alloc, ARRAY_WORDS) for _ in range(NUM_STREAMS)]

    close_outer = counted_loop(asm, "r21", OUTER_ITERS, "sweep")
    for i, base in enumerate(bases):
        asm.li(f"r{i + 1}", base)         # r1..r12 are stream cursors
    close_inner = counted_loop(asm, "r22", INNER_ITERS, "galerkin")
    # Sample two words of each array's line; a dependent combine keeps
    # the iteration near ~26 cycles so the repaired distance lands around
    # 13 and converges within a short warmup.
    for i in range(NUM_STREAMS):
        asm.ldq("r13", f"r{i + 1}", 0)
        asm.ldq("r14", f"r{i + 1}", 32)
        asm.mulf("r15", "r13", rb="r14")
        asm.addf("r16", "r16", rb="r15")  # carried dependence
    for i in range(NUM_STREAMS):
        asm.lda(f"r{i + 1}", f"r{i + 1}", 64)
    close_inner()
    close_outer()
    asm.halt()

    return Workload(
        name="galgel",
        program=asm.build(),
        memory=parts.memory,
        description=(
            "Twelve concurrent line-stride FP streams — more than the "
            "hardware has stream buffers."
        ),
        kind="stride",
        paper_notes=(
            "Stream-buffer thrash leaves misses for the software "
            "prefetcher; strong self-repairing gains."
        ),
    )
