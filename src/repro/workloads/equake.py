"""equake — earthquake simulation (sparse matrix-vector product).

Behaviour reproduced: the CSR sweep.  Column-index and value arrays are
unit-stride streams (easy for the hardware stream buffers — "simple stride
patterns with short prefetching distances, hardware prefetching may be
more advantageous", section 5.5), while the gather through the column
index into the x-vector is data-dependent and irregular: the DLT finds no
stride, the code has no recurrence, the load is neither Stride nor
Pointer — it matures unprefetched.  The x-vector is sized to live in the
L3 but not the L2, so the gather stays delinquent (35-cycle average miss
latency, above the half-L2-miss-latency threshold).
"""

from __future__ import annotations

from .base import Workload, counted_loop, new_parts
from .data import build_csr_matrix

ROWS = 40_000
NNZ_PER_ROW = 12
X_WORDS = 131_072            # 1 MB x-vector: L3-resident, L2-busting
INNER_ITERS = ROWS * NNZ_PER_ROW
OUTER_ITERS = 10_000


def build(seed: int = 1) -> Workload:
    parts = new_parts("equake", seed)
    asm = parts.asm

    col_base, val_base, x_base = build_csr_matrix(
        parts.alloc,
        rows=ROWS,
        nnz_per_row=NNZ_PER_ROW,
        num_cols=X_WORDS,
        rng=parts.rng,
    )

    close_outer = counted_loop(asm, "r21", OUTER_ITERS, "solve")
    asm.li("r1", col_base)
    asm.li("r2", val_base)
    asm.li("r3", x_base)
    close_inner = counted_loop(asm, "r22", INNER_ITERS, "smvp")
    asm.ldq("r4", "r1", 0)                # col = col_index[j]   (stride)
    asm.ldq("r5", "r2", 0)                # v = values[j]        (stride)
    asm.sll("r6", "r4", imm=3)
    asm.addq("r6", "r6", rb="r3")
    asm.ldq("r7", "r6", 0)                # x[col]   (irregular gather)
    asm.mulf("r8", "r5", rb="r7")
    asm.addf("r11", "r11", rb="r8")
    asm.lda("r1", "r1", 8)
    asm.lda("r2", "r2", 8)
    close_inner()
    close_outer()
    asm.halt()

    return Workload(
        name="equake",
        program=asm.build(),
        memory=parts.memory,
        description=(
            "CSR sparse matrix-vector: two unit-stride streams plus an "
            "irregular gather into an L3-resident vector."
        ),
        kind="mixed",
        paper_notes=(
            "Hardware prefetching is competitive here (section 5.5): the "
            "stride part is trivial and the gather is unprefetchable."
        ),
    )
