"""fma3d — crash-simulation finite elements (struct-of-fields streams).

Behaviour reproduced: a sweep over element records (five fields each, 40
bytes) with a moderately long dependent FP update per element.  All five
field loads share one base register — the same-object case: WHOLE_OBJECT
covers the record with a single prefetch (plus the extra-block rule) where
BASIC spends one prefetch per field.  The element computation is slow
enough that small distances suffice, so — like applu and facerec in the
paper — self-repairing matches but does not much beat the estimate-based
scheme.
"""

from __future__ import annotations

from .base import Workload, counted_loop, new_parts
from .data import build_array

ELEMENT_WORDS = 5            # 40 bytes: straddles cache lines regularly
NUM_ELEMENTS = 2_000_000
INNER_ITERS = NUM_ELEMENTS
OUTER_ITERS = 2_000


def build(seed: int = 1) -> Workload:
    parts = new_parts("fma3d", seed)
    asm = parts.asm

    elements = build_array(parts.alloc, NUM_ELEMENTS * ELEMENT_WORDS)
    forces = build_array(parts.alloc, NUM_ELEMENTS)

    close_outer = counted_loop(asm, "r21", OUTER_ITERS, "step")
    asm.li("r1", elements)
    asm.li("r2", forces)
    close_inner = counted_loop(asm, "r22", INNER_ITERS, "element")
    asm.ldq("r4", "r1", 0)                # stress
    asm.ldq("r5", "r1", 8)                # strain
    asm.ldq("r6", "r1", 16)               # mass
    asm.ldq("r7", "r1", 24)               # velocity
    asm.ldq("r8", "r1", 32)               # position
    asm.mulf("r9", "r4", rb="r5")
    asm.addf("r9", "r9", rb="r6")
    asm.divf("r9", "r9", rb="r7")         # dependent: ~12-cycle divide
    asm.addf("r9", "r9", rb="r8")
    asm.divf("r11", "r9", rb="r4")        # carried chain across elements
    asm.addf("r12", "r12", rb="r11")
    asm.stq("r11", "r2", 0)               # forces[i]
    asm.lda("r1", "r1", ELEMENT_WORDS * 8)
    asm.lda("r2", "r2", 8)
    close_inner()
    close_outer()
    asm.halt()

    return Workload(
        name="fma3d",
        program=asm.build(),
        memory=parts.memory,
        description=(
            "Element-record sweep: five same-object field loads per "
            "40-byte record, dependent FP update, store stream."
        ),
        kind="stride",
        paper_notes=(
            "Same-object grouping collapses five prefetches into the "
            "minimum-offset + extra-block pattern; repair gains are small."
        ),
    )
