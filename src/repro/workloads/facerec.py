"""facerec — face recognition (graph-matching correlation over images).

Behaviour reproduced: a correlation kernel whose inner iteration compares
40 image/graph tap pairs through a dependent normalisation chain.  Like
applu, the body (~290 instructions) exceeds the 256-entry ROB — the OOO
window cannot fetch the next iteration's data early — and the chain makes
the iteration longer than the memory latency, so a prefetch distance of 1
is already optimal: facerec is one of the paper's benchmarks where "the
naive estimates were sufficient" and self-repairing adds nothing over the
basic scheme (section 5.3).
"""

from __future__ import annotations

from .base import Workload, counted_loop, new_parts
from .data import build_array

IMAGE_WORDS = 16_000_000
GRAPH_WORDS = 16_000_000
#: Tap pairs per iteration: 40 x 8 bytes = five cache lines of each array.
UNROLL = 40
INNER_ITERS = 16_000_000 // UNROLL
OUTER_ITERS = 1_000


def build(seed: int = 1) -> Workload:
    parts = new_parts("facerec", seed)
    asm = parts.asm

    image = build_array(parts.alloc, IMAGE_WORDS)
    graph = build_array(parts.alloc, GRAPH_WORDS)

    close_outer = counted_loop(asm, "r21", OUTER_ITERS, "match")
    asm.li("r1", image)
    asm.li("r2", graph)
    close_inner = counted_loop(asm, "r22", INNER_ITERS, "corr")
    for tap in range(UNROLL):
        asm.ldq("r4", "r1", tap * 8)      # image[i + tap]
        asm.ldq("r5", "r2", tap * 8)      # graph[i + tap]
        asm.subf("r6", "r4", rb="r5")
        asm.mulf("r6", "r6", rb="r6")
        # Dependent normalisation carried through r11 (~9 cycles per
        # tap): the iteration runs past the 350-cycle memory latency.
        asm.addf("r11", "r11", rb="r6")
        asm.mulf("r11", "r11", rb="r4")
        if tap % 8 == 7:
            asm.divf("r11", "r11", rb="r6")
    asm.lda("r1", "r1", UNROLL * 8)
    asm.lda("r2", "r2", UNROLL * 8)
    close_inner()
    close_outer()
    asm.halt()

    return Workload(
        name="facerec",
        program=asm.build(),
        memory=parts.memory,
        description=(
            "40 image/graph tap pairs per iteration (~290-instruction "
            "body, beyond the ROB) with a dependent FP chain."
        ),
        kind="stride",
        paper_notes=(
            "Distance 1 is already optimal (slow, wide iterations), so "
            "self-repairing matches but does not beat the basic scheme."
        ),
    )
