"""mgrid — multigrid PDE solver (3D stencil: same-object offsets spanning
lines, multiple delinquent loads per trace).

Behaviour reproduced: the residual stencil reduced to its memory
essentials — per step (one cache line of the sweep), reads at
``i−PLANE``, ``i−ROW``, ``i``, ``i+8`` (same line as ``i``: exercises the
insertion skip rule), ``i+ROW``, ``i+PLANE`` of one base register, plus a
coefficient array and a second field array, with a result store.  The
plane spacing is 2 MB, so by the time the sweep returns to a line through
a lagging offset, ~8 MB of traffic has evicted it from the whole
hierarchy: *every* stencil arm misses to memory.  Eight load streams meet
exactly eight stream buffers — hardware covers each with only its 8-line
lead (~180 cycles of 350), and the repaired software distance finishes
the job.  Several loads are delinquent at once, so the repair loop's
"fix one, expose the next" convergence (section 3.5.1) is on display.
"""

from __future__ import annotations

from .base import Workload, counted_loop, new_parts
from .data import build_array

ROW_WORDS = 512               # 4 KB rows
PLANE_WORDS = ROW_WORDS * 512  # 2 MB planes
GRID_WORDS = 12_000_000
INNER_ITERS = 1_000_000
OUTER_ITERS = 500


def build(seed: int = 1) -> Workload:
    parts = new_parts("mgrid", seed)
    asm = parts.asm

    grid = build_array(parts.alloc, GRID_WORDS)
    field = build_array(parts.alloc, GRID_WORDS)
    coeff = build_array(parts.alloc, GRID_WORDS)
    out = build_array(parts.alloc, GRID_WORDS)

    row = ROW_WORDS * 8
    plane = PLANE_WORDS * 8

    close_outer = counted_loop(asm, "r21", OUTER_ITERS, "vcycle")
    asm.li("r1", grid + plane + row)      # interior starting point
    asm.li("r2", coeff)
    asm.li("r3", out)
    asm.li("r4", field)
    close_inner = counted_loop(asm, "r22", INNER_ITERS, "resid")
    asm.ldq("r5", "r1", -plane)           # lagging arm: memory re-touch
    asm.ldq("r6", "r1", -row)
    asm.ldq("r7", "r1", 0)
    asm.ldq("r8", "r1", 8)                # same line as the centre (skip)
    asm.ldq("r9", "r1", row)
    asm.ldq("r10", "r1", plane)           # leading edge: compulsory miss
    asm.ldq("r12", "r4", 0)               # second field
    asm.ldq("r13", "r2", 0)               # coefficient stream
    asm.addf("r11", "r5", rb="r6")
    asm.addf("r11", "r11", rb="r8")
    asm.addf("r11", "r11", rb="r9")
    asm.addf("r11", "r11", rb="r10")
    asm.addf("r11", "r11", rb="r12")
    asm.mulf("r11", "r11", rb="r13")
    asm.subf("r11", "r7", rb="r11")
    asm.stq("r11", "r3", 0)
    asm.lda("r1", "r1", 64)               # one line per step
    asm.lda("r2", "r2", 64)
    asm.lda("r3", "r3", 64)
    asm.lda("r4", "r4", 64)
    close_inner()
    close_outer()
    asm.halt()

    return Workload(
        name="mgrid",
        program=asm.build(),
        memory=parts.memory,
        description=(
            "7-point-style 3D stencil at line stride: one same-object "
            "group spanning five line regions plus two extra streams."
        ),
        kind="stride",
        paper_notes=(
            "Multiple delinquent loads per trace; repair convergence "
            "and the line-skip insertion rule are both exercised."
        ),
    )
