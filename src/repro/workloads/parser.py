"""parser — natural-language link parser (hash-table probing, many load
sites, DLT-capacity sensitive).

Behaviour reproduced: dictionary lookups — hash a key from a strided token
stream, load a bucket head, walk a short *scrambled* chain comparing keys.
The probe code is replicated across many distinct sites (real parser code
inlines lookups all over), so hundreds of static load PCs are live at
once: exactly what makes parser one of the two benchmarks that want a
bigger DLT in Figure 8 (small DLTs evict entries before their 256-access
monitoring window completes).  The key-compare branch is data dependent,
so traces exit early and coverage stays low (Figure 4).
"""

from __future__ import annotations

from .base import Workload, counted_loop, new_parts
from .data import build_array, build_hash_table

NUM_SITES = 40               # replicated probe sites (distinct PCs)
BUCKETS = 16_384
CHAIN_LENGTH = 4
NODE_WORDS = 4
PROBES_PER_SITE = 600        # just over two DLT monitoring windows
OUTER_ITERS = 50_000


def build(seed: int = 1) -> Workload:
    parts = new_parts("parser", seed)
    asm = parts.asm

    bucket_base = build_hash_table(
        parts.alloc,
        buckets=BUCKETS,
        chain_length=CHAIN_LENGTH,
        node_words=NODE_WORDS,
        rng=parts.rng,
    )
    tokens = build_array(
        parts.alloc,
        NUM_SITES * PROBES_PER_SITE,
        init=(
            parts.rng.randrange(1 << 16)
            for _ in range(NUM_SITES * PROBES_PER_SITE)
        ),
    )

    close_outer = counted_loop(asm, "r21", OUTER_ITERS, "sentence")
    asm.li("r1", tokens)
    for site in range(NUM_SITES):
        close_probe = counted_loop(
            asm, "r22", PROBES_PER_SITE, f"probe_{site}"
        )
        asm.ldq("r2", "r1", 0)            # token key (strided stream)
        asm.lda("r1", "r1", 8)
        # hash = key & (BUCKETS - 1)
        asm.and_("r3", "r2", imm=BUCKETS - 1)
        asm.sll("r3", "r3", imm=3)
        asm.li("r4", bucket_base)
        asm.addq("r3", "r3", rb="r4")
        asm.ldq("r5", "r3", 0)            # bucket head (irregular gather)
        # Walk up to two nodes; the compare branch is data dependent.
        for depth in range(2):
            asm.ldq("r6", "r5", 8)        # node->key (scrambled chain)
            asm.cmpeq("r7", "r6", rb="r2")
            asm.bne("r7", f"hit_{site}_{depth}")
            asm.ldq("r5", "r5", 0)        # node->next
            asm.label(f"hit_{site}_{depth}")
        asm.ldq("r8", "r5", 16)           # node->value
        asm.addq("r11", "r11", rb="r8")
        close_probe()
    close_outer()
    asm.halt()

    return Workload(
        name="parser",
        program=asm.build(),
        memory=parts.memory,
        description=(
            "40 replicated hash-probe sites over a chained, scrambled "
            "dictionary; ~280 static load PCs."
        ),
        kind="irregular",
        paper_notes=(
            "Low trace coverage (data-dependent exits) and DLT-capacity "
            "sensitivity (Figure 8's parser shape)."
        ),
    )
