"""art — neural-network image recognition (FP, stride dominated).

Behaviour reproduced: the F1-layer scan — unit-stride sweeps over weight
and activation arrays far larger than any cache, consuming one cache line
of each per iteration through a dependent accumulation chain.  The
converged iteration (~33 cycles) times eight stream-buffer entries gives
the hardware a ~260-cycle lead — short of the 350-cycle memory latency —
while the software prefetcher's repaired distance (~11 iterations) covers
it fully: art is a workload where the distance search pays off.
"""

from __future__ import annotations

from .base import Workload, counted_loop, new_parts
from .data import build_array

ARRAY_WORDS = 16_000_000     # 128 MB of address space per array (sparse)
INNER_ITERS = 1_900_000
OUTER_ITERS = 2_000
#: Elements per iteration: one full 64-byte line of each array.
UNROLL = 8


def build(seed: int = 1) -> Workload:
    parts = new_parts("art", seed)
    asm = parts.asm

    weights = build_array(parts.alloc, ARRAY_WORDS)
    activations = build_array(parts.alloc, ARRAY_WORDS)

    close_outer = counted_loop(asm, "r21", OUTER_ITERS, "epoch")
    asm.li("r1", weights)
    asm.li("r2", activations)
    close_inner = counted_loop(asm, "r22", INNER_ITERS, "scan")
    for tap in range(UNROLL):
        asm.ldq("r4", "r1", tap * 8)      # w[i + tap]
        asm.ldq("r5", "r2", tap * 8)      # a[i + tap]
        asm.mulf("r6", "r4", rb="r5")
        # Two alternating accumulators: a 16-cycle dependent chain per
        # iteration, so the hardware's 8-line lead (~130 cycles) cannot
        # cover the 350-cycle memory latency but a repaired software
        # distance in the twenties can.
        acc = "r11" if tap % 2 == 0 else "r12"
        asm.addf(acc, acc, rb="r6")
    asm.lda("r1", "r1", UNROLL * 8)       # one line per iteration
    asm.lda("r2", "r2", UNROLL * 8)
    close_inner()
    close_outer()
    asm.halt()

    return Workload(
        name="art",
        program=asm.build(),
        memory=parts.memory,
        description=(
            "Two unit-stride FP streams consuming a cache line per "
            "iteration through a dependent accumulation chain."
        ),
        kind="stride",
        paper_notes=(
            "The hardware stream buffers' 8-entry lead falls short of the "
            "memory latency; the repaired software distance covers it."
        ),
    )
