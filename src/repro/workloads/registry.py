"""Workload registry: the paper's 14 benchmarks by name."""

from __future__ import annotations

from typing import Callable, Dict, List

from . import (
    applu,
    art,
    dot,
    equake,
    facerec,
    fma3d,
    galgel,
    gap,
    mcf,
    mgrid,
    parser,
    swim,
    vis,
    wupwise,
)
from .base import Workload

#: Benchmark order as listed in the paper (section 4.2).
BENCHMARK_NAMES: List[str] = [
    "applu",
    "art",
    "dot",
    "equake",
    "facerec",
    "fma3d",
    "galgel",
    "gap",
    "mcf",
    "mgrid",
    "parser",
    "swim",
    "vis",
    "wupwise",
]

_BUILDERS: Dict[str, Callable[[int], Workload]] = {
    "applu": applu.build,
    "art": art.build,
    "dot": dot.build,
    "equake": equake.build,
    "facerec": facerec.build,
    "fma3d": fma3d.build,
    "galgel": galgel.build,
    "gap": gap.build,
    "mcf": mcf.build,
    "mgrid": mgrid.build,
    "parser": parser.build,
    "swim": swim.build,
    "vis": vis.build,
    "wupwise": wupwise.build,
}


def load_workload(name: str, seed: int = 1) -> Workload:
    """Build the named benchmark workload.

    Building is deterministic for a given (name, seed): identical layout,
    identical program.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(_BUILDERS))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
    return builder(seed)


def all_workload_names() -> List[str]:
    return list(BENCHMARK_NAMES)
