"""wupwise — lattice QCD (large per-site records spanning several lines).

Behaviour reproduced: the matrix-times-spinor kernel reads a 3x3 complex
matrix (18 words) and a spinor (6 words) per lattice site — a same-object
record of 24 words (192 bytes, three cache lines).  The group-prefetch
skip algorithm emits one prefetch per touched line; the record stride
(192 bytes) is larger than a line, so the stream buffers' next-block
guessing is wasteful while the software prefetch lands exactly on the
record boundaries.
"""

from __future__ import annotations

from .base import Workload, counted_loop, new_parts
from .data import build_array

SITE_WORDS = 24              # 192 bytes: three cache lines per site
NUM_SITES = 1_500_000
INNER_ITERS = NUM_SITES
OUTER_ITERS = 2_000


def build(seed: int = 1) -> Workload:
    parts = new_parts("wupwise", seed)
    asm = parts.asm

    sites = build_array(parts.alloc, NUM_SITES * SITE_WORDS)
    result = build_array(parts.alloc, NUM_SITES * 2)

    close_outer = counted_loop(asm, "r21", OUTER_ITERS, "sweep")
    asm.li("r1", sites)
    asm.li("r2", result)
    close_inner = counted_loop(asm, "r22", INNER_ITERS, "site")
    # Sample the record across its three lines (matrix rows + spinor).
    asm.ldq("r4", "r1", 0)                # m[0][0]
    asm.ldq("r5", "r1", 32)               # m[0][4]
    asm.ldq("r6", "r1", 72)               # m[1][..] (second line)
    asm.ldq("r7", "r1", 104)
    asm.ldq("r8", "r1", 144)              # spinor (third line)
    asm.ldq("r9", "r1", 176)
    asm.mulf("r10", "r4", rb="r8")
    asm.mulf("r11", "r5", rb="r9")
    asm.addf("r10", "r10", rb="r11")
    asm.mulf("r12", "r6", rb="r8")
    asm.addf("r10", "r10", rb="r12")
    asm.mulf("r13", "r7", rb="r9")
    asm.addf("r10", "r10", rb="r13")
    asm.stq("r10", "r2", 0)
    asm.lda("r1", "r1", SITE_WORDS * 8)   # 192-byte record stride
    asm.lda("r2", "r2", 8)
    close_inner()
    close_outer()
    asm.halt()

    return Workload(
        name="wupwise",
        program=asm.build(),
        memory=parts.memory,
        description=(
            "192-byte lattice-site records (three lines each) read "
            "through one base register; record stride above line size."
        ),
        kind="stride",
        paper_notes=(
            "Same-object skip algorithm emits one prefetch per touched "
            "line; big whole-object and self-repair gains."
        ),
    )
