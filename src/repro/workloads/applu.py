"""applu — SSOR CFD solver (the paper's very-long-inner-loop case).

Behaviour reproduced: the paper explains that applu gains nothing from
self-repairing "because applu has such a large inner loop (over 1000
instructions) that a prefetch distance of 1 is optimal".  Two properties
matter and both are built in:

* the loop body (~300 instructions) exceeds the 256-entry ROB, so the
  out-of-order window cannot slide the next iteration's loads early —
  without software prefetching the misses are exposed;
* the per-iteration time exceeds the 350-cycle memory latency, so a
  prefetch issued one iteration ahead (distance 1) fully covers a miss —
  repair has nothing to add over the basic scheme.

The 160 load sites also bury the eight hardware stream buffers (Figure
2's applu bar is flat), and the 256-instruction trace-length cap leaves
the tail of the body unprefetched — all gains come from the covered
prefix, as in any trace-based optimizer.
"""

from __future__ import annotations

from .base import Workload, counted_loop, new_parts
from .data import build_array

FIELD_WORDS = 5              # rho, u, v, w, E per grid point
POINTS_PER_ITER = 32         # grid points processed per loop iteration
NUM_POINTS = 4_000_000
INNER_ITERS = NUM_POINTS // POINTS_PER_ITER
OUTER_ITERS = 500

#: Bytes the state pointer advances per iteration.
_STEP = POINTS_PER_ITER * FIELD_WORDS * 8


def build(seed: int = 1) -> Workload:
    parts = new_parts("applu", seed)
    asm = parts.asm

    state = build_array(parts.alloc, NUM_POINTS * FIELD_WORDS)
    rhs = build_array(parts.alloc, NUM_POINTS)

    close_outer = counted_loop(asm, "r21", OUTER_ITERS, "ssor")
    asm.li("r1", state)
    asm.li("r2", rhs)
    close_inner = counted_loop(asm, "r22", INNER_ITERS, "point")
    for point in range(POINTS_PER_ITER):
        base = point * FIELD_WORDS * 8
        asm.ldq("r4", "r1", base)         # rho
        asm.ldq("r5", "r1", base + 8)     # u
        asm.ldq("r6", "r1", base + 16)    # v
        asm.ldq("r7", "r1", base + 24)    # w
        asm.ldq("r8", "r1", base + 32)    # E
        asm.addf("r9", "r5", rb="r6")
        asm.mulf("r9", "r9", rb="r7")
        # The block elimination chain carried through r11 keeps each
        # iteration past the 350-cycle memory latency.
        asm.addf("r11", "r11", rb="r9")
        asm.mulf("r11", "r11", rb="r4")
        if point % 4 == 3:
            asm.divf("r11", "r11", rb="r8")
    asm.stq("r11", "r2", 0)
    asm.lda("r1", "r1", _STEP)
    asm.lda("r2", "r2", 8)
    close_inner()
    close_outer()
    asm.halt()

    return Workload(
        name="applu",
        program=asm.build(),
        memory=parts.memory,
        description=(
            "32 five-field grid points per iteration (~300-instruction "
            "body, beyond the ROB) with a >350-cycle dependent FP chain."
        ),
        kind="stride",
        paper_notes=(
            "Distance 1 is optimal (the paper's applu observation): "
            "basic and self-repairing prefetching perform alike."
        ),
    )
