"""dot — pointer-intensive graph layout (one of the paper's non-SPEC
pointer applications).

Behaviour reproduced: chasing genuinely *scrambled* linked rings (no
address stride for the DLT to find — the loads classify as Pointer and get
only the double-dereference prefetch).  The graph fits the L3 but not the
L2, so after the first lap the chases are ~35-cycle delinquent loads the
double dereference can get ahead of — but only just: dot's software gains
are modest, as in the paper.  A data-dependent branch in the hot loop
makes formed traces exit early about half the time, keeping hot-trace
miss coverage low (Figure 4's dot bar).
"""

from __future__ import annotations

from .base import Workload, counted_loop, new_parts
from .data import build_linked_list

NODE_WORDS = 4
NUM_CHAINS = 4               # advanced together in one loop body
NODES_PER_CHAIN = 6_000      # 4 x 6k x 32 B ~= 768 KB: L3- not L2-resident
INNER_PASS = 6_000
OUTER_ITERS = 100_000

#: Registers holding the chain cursors (r1..r4).
_CHAIN_REGS = [f"r{i}" for i in range(1, NUM_CHAINS + 1)]


def build(seed: int = 1) -> Workload:
    parts = new_parts("dot", seed)
    asm = parts.asm

    heads = []
    for _ in range(NUM_CHAINS):
        head, _ = build_linked_list(
            parts.alloc,
            node_words=NODE_WORDS,
            count=NODES_PER_CHAIN,
            rng=parts.rng,
            scramble=True,
        )
        heads.append(head)

    close_outer = counted_loop(asm, "r21", OUTER_ITERS, "layout")
    for reg, head in zip(_CHAIN_REGS, heads):
        asm.li(reg, head)
    close_inner = counted_loop(asm, "r22", INNER_PASS, "step")
    for index, reg in enumerate(_CHAIN_REGS):
        asm.ldq("r17", reg, 8)            # node->key
        asm.ldq("r18", reg, 16)           # node->rank
        asm.addq("r11", "r11", rb="r18")
        if index == 0:
            # Data-dependent branch (key parity alternates along the
            # chain): the captured trace direction is wrong about half
            # the time, so the trace exits early and the remaining
            # chains' misses land outside hot traces.
            asm.and_("r19", "r17", imm=1)
            asm.beq("r19", "even")
            asm.addq("r12", "r12", rb="r17")
            asm.br("join")
            asm.label("even")
            asm.subq("r12", "r12", rb="r17")
            asm.label("join")
        asm.ldq(reg, reg, 0)              # chase (scrambled: no stride)
    close_inner()
    close_outer()
    asm.halt()

    return Workload(
        name="dot",
        program=asm.build(),
        memory=parts.memory,
        description=(
            "Four scrambled pointer rings advanced in lock-step with a "
            "data-dependent branch in the hot loop."
        ),
        kind="irregular",
        paper_notes=(
            "Low hot-trace coverage, Pointer-class loads only (no "
            "stride); software prefetching gains are modest."
        ),
    )
