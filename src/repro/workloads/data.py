"""Heap data-structure builders shared by the workloads.

These mirror how the paper's benchmarks lay out memory:

* dense arrays and matrices (the FP codes),
* linked lists whose nodes a bump allocator placed sequentially — giving
  pointer loads a *constant address stride* the DLT can discover (the
  paper's key observation in section 3.3),
* scrambled linked lists (genuinely irregular chains),
* chained hash tables (parser),
* compressed sparse rows (equake-style indexed gathers).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..memory.mainmem import HeapAllocator, WORD_SIZE


def build_array(
    alloc: HeapAllocator,
    count: int,
    init: Optional[Sequence[float]] = None,
) -> int:
    """Allocate a ``count``-word array; returns its base address.

    Uninitialised words read as zero (the store is sparse), which is fine
    for FP streams — only the addresses matter to the memory system.
    """
    return alloc.alloc_array(count, init=init)


def build_linked_list(
    alloc: HeapAllocator,
    node_words: int,
    count: int,
    rng: Optional[random.Random] = None,
    scramble: bool = False,
    segment: Optional[int] = None,
    pad_words: int = 0,
    value_init: bool = True,
) -> Tuple[int, List[int]]:
    """Build a singly linked list; returns (head address, node addresses).

    Layout modes:

    * default — nodes in allocation order: the ``next`` pointers advance by
      a constant stride, so the chase load is DLT-stride-predictable;
    * ``scramble`` — logical order is a random permutation of placement:
      no stride whatsoever (forces Pointer classification);
    * ``segment=k`` — runs of ``k`` sequential nodes with a random jump
      between runs (mcf-like: stride predictable with periodic breaks).

    Node layout: word 0 = next pointer (0 terminates), words 1.. = fields.
    """
    memory = alloc.memory
    addrs = alloc.alloc_nodes(
        count,
        node_words,
        rng=rng,
        scramble=scramble,
        pad_words=pad_words,
    )
    order = list(range(count))
    if segment is not None and segment > 0 and rng is not None:
        starts = list(range(0, count, segment))
        rng.shuffle(starts)
        order = []
        for start in starts:
            order.extend(range(start, min(start + segment, count)))
    chain = [addrs[i] for i in order]
    for pos, addr in enumerate(chain):
        nxt = chain[pos + 1] if pos + 1 < len(chain) else chain[0]
        memory.write(addr, nxt)
        if value_init:
            for w in range(1, node_words):
                memory.write(addr + w * WORD_SIZE, (pos + w) & 0xFFFF)
    return chain[0], chain


def build_hash_table(
    alloc: HeapAllocator,
    buckets: int,
    chain_length: int,
    node_words: int,
    rng: random.Random,
) -> int:
    """Chained hash table with scrambled chain nodes; returns the bucket
    array's base address (each bucket holds a head pointer)."""
    memory = alloc.memory
    bucket_base = alloc.alloc_array(buckets)
    total = buckets * chain_length
    addrs = alloc.alloc_nodes(total, node_words, rng=rng, scramble=True)
    index = 0
    for b in range(buckets):
        head = 0
        for _ in range(chain_length):
            addr = addrs[index]
            index += 1
            memory.write(addr, head)  # next pointer
            memory.write(addr + WORD_SIZE, rng.randrange(1 << 16))  # key
            memory.write(addr + 2 * WORD_SIZE, index)  # value
            head = addr
        memory.write(bucket_base + b * WORD_SIZE, head)
    return bucket_base


def build_csr_matrix(
    alloc: HeapAllocator,
    rows: int,
    nnz_per_row: int,
    num_cols: int,
    rng: random.Random,
) -> Tuple[int, int, int]:
    """Compressed-sparse-row structure: (col_index_base, values_base,
    x_vector_base).  Column indices are random — the gather through them
    is the unprefetchable access equake exposes."""
    memory = alloc.memory
    nnz = rows * nnz_per_row
    col_base = alloc.alloc_array(nnz)
    val_base = alloc.alloc_array(nnz)
    x_base = alloc.alloc_array(num_cols)
    for i in range(nnz):
        memory.write(col_base + i * WORD_SIZE, rng.randrange(num_cols))
    return col_base, val_base, x_base
