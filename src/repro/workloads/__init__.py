"""The paper's 14 benchmarks as synthetic equivalents (see DESIGN.md)."""

from .base import Workload, WorkloadParts, counted_loop, new_parts
from .registry import BENCHMARK_NAMES, all_workload_names, load_workload

__all__ = [
    "BENCHMARK_NAMES",
    "Workload",
    "WorkloadParts",
    "all_workload_names",
    "counted_loop",
    "load_workload",
    "new_parts",
]
