"""Prefix-keyed on-disk store of simulator checkpoints.

The result cache (:mod:`repro.harness.cache`) keys on the *full* job
spec: same budget or nothing.  The checkpoint store keys on the job's
**prefix spec** — the full canonical spec with ``max_instructions``
removed — because a deterministic simulation's state at N committed
instructions is identical for every budget ≥ N.  A sweep that asks for
ascending budgets B1 < B2 < B3 therefore pays full price once: each run
stores its end-of-run snapshot under the shared prefix key, and the next
run resumes from the largest stored checkpoint not past its own target.

Layout mirrors the result cache, under the same root::

    <root>/checkpoints/<prefix[:2]>/<prefix>/<committed>.ckpt

One file per captured committed-instruction count, named so lookup is a
directory listing plus an integer compare — no index file to corrupt.
Writes are atomic (same-directory temp + ``os.replace``); any file that
fails to parse or restore is treated as absent.  The code-version stamp
is hashed into the prefix key *and* checked by
:func:`~repro.checkpoint.snapshot.restore`, so a source change orphans
old snapshots rather than resuming from a diverged world.
"""

from __future__ import annotations

import os
import pathlib
import threading
from typing import Dict, List, Optional, Tuple

from ..errors import CheckpointError
from ..harness.cache import (
    _DISK_FULL_ERRNOS,
    SCHEMA_VERSION,
    code_version,
    default_cache_dir,
    stable_hash,
)
from ..logutil import get_logger
from .snapshot import Snapshot, capture, is_quiescent

_log = get_logger("checkpoint")

_SUFFIX = ".ckpt"

_tmp_lock = threading.Lock()
_tmp_counter = 0


def _tmp_suffix() -> str:
    global _tmp_counter
    with _tmp_lock:
        _tmp_counter += 1
        counter = _tmp_counter
    return f".tmp.{os.getpid()}.{threading.get_ident()}.{counter}"


def prefix_spec(spec: Dict) -> Dict:
    """A job spec reduced to its budget-independent prefix.

    Everything that shapes execution from cycle 0 stays (workload,
    machine/Trident config, warmup, seed, fault plan, sampling interval,
    interpreter choice); only the stopping point goes.
    """
    reduced = dict(spec)
    config = dict(reduced.get("config") or {})
    config.pop("max_instructions", None)
    reduced["config"] = config
    return reduced


class CheckpointStore:
    """Content-addressed checkpoint files under the cache root.

    Like the result cache, every I/O failure degrades to "no
    checkpoint": an unwritable root skips saves, an unreadable or stale
    snapshot is a miss, and the simulation runs cold.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = pathlib.Path(root) if root else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Snapshots moved aside after failing to parse/restore.
        self.quarantined = 0
        #: Set once the disk fills up; all later saves become no-ops.
        self.disabled = False

    # ------------------------------------------------------------------
    # Keys and paths.
    # ------------------------------------------------------------------
    def prefix_key(self, spec: Dict) -> str:
        """The content address of a job's budget-independent prefix."""
        return stable_hash(
            {
                "schema": SCHEMA_VERSION,
                "code_version": code_version(),
                "prefix": prefix_spec(spec),
            }
        )

    def dir_for(self, prefix: str) -> pathlib.Path:
        return self.root / "checkpoints" / prefix[:2] / prefix

    def path_for(self, prefix: str, committed: int) -> pathlib.Path:
        return self.dir_for(prefix) / f"{committed:016d}{_SUFFIX}"

    # ------------------------------------------------------------------
    # Lookup / store.
    # ------------------------------------------------------------------
    def committed_counts(self, prefix: str) -> List[int]:
        """Committed-instruction counts with a stored snapshot, sorted."""
        try:
            names = os.listdir(self.dir_for(prefix))
        except OSError:
            return []
        counts = []
        for name in names:
            if not name.endswith(_SUFFIX):
                continue
            try:
                counts.append(int(name[: -len(_SUFFIX)]))
            except ValueError:
                continue
        counts.sort()
        return counts

    def best(self, prefix: str, max_committed: int) -> Optional[Snapshot]:
        """The largest usable snapshot at ``committed <= max_committed``.

        Candidates are tried largest-first; one that fails to parse is
        quarantined (moved aside and logged), not fatal — determinism
        means any stored point at or before the target is a valid resume
        point.
        """
        for committed in reversed(self.committed_counts(prefix)):
            if committed > max_committed:
                continue
            path = self.path_for(prefix, committed)
            try:
                snapshot = Snapshot.from_bytes(path.read_bytes())
            except (OSError, CheckpointError) as exc:
                self._quarantine(path, exc)
                continue
            self.hits += 1
            return snapshot
        self.misses += 1
        return None

    def _quarantine(self, path: pathlib.Path, exc: Exception) -> None:
        """Move an unusable snapshot aside for autopsy; never raises."""
        _log.warning("checkpoint %s unusable (%s); quarantining", path, exc)
        dest = self.root / "quarantine" / path.parent.name / path.name
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
        except OSError:
            # Best-effort: an immovable corrupt snapshot is still skipped
            # by the largest-first scan, it just stays in place.
            try:
                path.unlink()
            except OSError:
                return
        self.quarantined += 1

    def put(self, prefix: str, snapshot: Snapshot) -> bool:
        """Durably store one snapshot; returns False when skipped.

        An existing file for the same (prefix, committed) is left alone:
        determinism makes it byte-identical to what we would write.
        """
        if self.disabled:
            return False
        path = self.path_for(prefix, snapshot.committed)
        if path.exists():
            return False
        tmp = path.with_name(path.name + _tmp_suffix())
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(snapshot.to_bytes())
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            if exc.errno in _DISK_FULL_ERRNOS:
                _log.warning(
                    "checkpoint disk full (%s); disabling saves", exc
                )
                self.disabled = True
            else:
                _log.debug("checkpoint store failed for %s: %s", path, exc)
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self.stores += 1
        return True

    def save(self, prefix: str, sim) -> bool:
        """Capture-and-store if ``sim`` is quiescent; False otherwise.

        The convenience used as a run's checkpoint sink: skips busy
        boundaries and never lets a capture or I/O failure break the
        simulation that is being checkpointed.
        """
        if not is_quiescent(sim):
            return False
        if self.path_for(prefix, sim.core.stats.committed).exists():
            # A previous identical run already stored this exact point;
            # the due capture is satisfied without re-pickling.
            return True
        try:
            return self.put(prefix, capture(sim))
        except CheckpointError as exc:
            _log.debug("checkpoint capture skipped: %s", exc)
            return False


# ---------------------------------------------------------------------------
# Maintenance shared with the result cache (the `repro cache` subcommand).
# ---------------------------------------------------------------------------
def scan_usage(root: pathlib.Path) -> Dict[str, Dict[str, int]]:
    """Entry counts and byte totals for each section of a cache root."""
    usage: Dict[str, Dict[str, int]] = {}
    for section, suffix in (("results", ".json"), ("checkpoints", _SUFFIX)):
        entries = 0
        size = 0
        base = root / section
        if base.is_dir():
            for path in base.rglob(f"*{suffix}"):
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        usage[section] = {"entries": entries, "bytes": size}
    return usage


def prune(root: pathlib.Path, max_bytes: int) -> Tuple[int, int]:
    """Delete oldest entries until the root fits ``max_bytes``.

    Covers both sections (result JSON and checkpoint files), oldest
    modification time first — checkpoints from a superseded sweep age
    out exactly like stale result entries.  Returns
    ``(files_deleted, bytes_freed)``.
    """
    candidates = []
    for section, suffix in (("results", ".json"), ("checkpoints", _SUFFIX)):
        base = root / section
        if not base.is_dir():
            continue
        for path in base.rglob(f"*{suffix}"):
            try:
                stat = path.stat()
            except OSError:
                continue
            candidates.append((stat.st_mtime, stat.st_size, path))
    total = sum(size for _mtime, size, _path in candidates)
    candidates.sort()
    deleted = 0
    freed = 0
    for _mtime, size, path in candidates:
        if total - freed <= max_bytes:
            break
        try:
            path.unlink()
        except OSError:
            continue
        deleted += 1
        freed += size
    return deleted, freed
