"""Snapshot/resume checkpoints: capture a deterministic simulator state
and resume it at a larger budget, byte-identical to a cold run.

See DESIGN.md §5d.  :mod:`~repro.checkpoint.snapshot` owns the canonical
serialisation and the quiescence rule; :mod:`~repro.checkpoint.store`
owns the prefix-keyed on-disk layout the experiment engine resumes from.
"""

from .snapshot import (
    FORMAT_VERSION,
    Snapshot,
    canonical_dumps,
    capture,
    is_quiescent,
    restore,
)
from .store import CheckpointStore, prefix_spec, prune, scan_usage

__all__ = [
    "FORMAT_VERSION",
    "Snapshot",
    "CheckpointStore",
    "canonical_dumps",
    "capture",
    "is_quiescent",
    "prefix_spec",
    "prune",
    "restore",
    "scan_usage",
]
