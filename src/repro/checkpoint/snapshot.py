"""Versioned, deterministic snapshots of a whole :class:`Simulation`.

Every run here is bit-for-bit deterministic and ``SMTCore.run`` is
re-entrant: chunked calls (``drain=False``) leave state identical to one
big call.  A snapshot therefore *is* the run's future — restoring one and
continuing to budget B2 is byte-identical to a cold run at B2.  That
equivalence only holds if two things are true, and this module enforces
both:

* **Capture happens at quiescent points only.**  Pending fault reverts
  hold closures that cannot be pickled; :func:`capture` raises
  :class:`CheckpointError` while a fault window is open and callers
  simply retry at a later boundary.  (In-flight helper jobs and queued
  optimization events are *not* blockers: their completion actions are
  picklable objects over the simulated graph, so a busy helper rides
  along inside the snapshot.)
* **The serialized form is canonical.**  The payload is a pickle whose
  bytes depend only on *values*, never on object identity accidents:
  every ``set``/``frozenset`` is reduced through sorted element lists
  (a restored set's iteration order differs from the original's
  insertion order), and strings are never memoized — CPython interns
  attribute names and literals, so equal strings are one shared object
  in a freshly built graph but many distinct objects in an unpickled
  one, and identity-keyed memoization would encode that difference into
  the bytes.  (The simulation itself never iterates its persisted sets
  in a timing-relevant order; the property tests hold capture
  idempotence to byte equality.)

Volatile derived state is excluded by ``__getstate__`` hooks on its
owners: the fast interpreter's compiled handler closures (``SMTCore``,
``HotTrace._fast_cache``) are rebuilt on demand, and the watchdog's
wall-clock deadline is re-armed on the next ``run`` call.

The on-disk container is a small framed format::

    RPCK | uint32 header length | header JSON | zlib-compressed pickle

The header carries the format version, the code-version stamp of
:func:`repro.harness.cache.code_version` (any source change invalidates
every prior snapshot), and the progress coordinates (committed
instructions, cycles) used for prefix lookup.  Anything that fails to
parse — truncation, garbage, stale stamps — raises
:class:`CheckpointError`, which every consumer converts to "run cold".
"""

from __future__ import annotations

import array
import io
import json
import pickle
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import CheckpointError
from ..harness.cache import code_version

#: Bumped whenever the frame layout or the pickled object graph changes
#: incompatibly; part of the header, checked on load.
FORMAT_VERSION = 1

#: Frame magic ("RePro ChecKpoint").
MAGIC = b"RPCK"

_HEADER_LEN = struct.Struct(">I")

#: zlib level 1: snapshots are dominated by workload data arrays that
#: compress well at any level, and capture sits on the measured path of
#: every checkpointed run — speed wins over the last few percent of size.
_ZLIB_LEVEL = 1


def _sorted_elements(values):
    """Elements of a set in a deterministic order.

    Persisted simulator sets hold homogeneous ints (load PCs); ``repr``
    is the total-order fallback for anything unorderable that may appear
    in test doubles.
    """
    try:
        return sorted(values)
    except TypeError:
        return sorted(values, key=repr)


#: Lists shorter than this go through the generic pickler; longer
#: homogeneous numeric lists (workload memory images, data arrays) take
#: the packed ``array`` fast path, which dominates payload size.
_PACK_MIN = 256


def _restore_int_list(data: bytes) -> list:
    return list(array.array("q", data))


def _restore_float_list(data: bytes) -> list:
    return list(array.array("d", data))


def _restore_int_dict(keys: bytes, values: bytes) -> dict:
    # zip preserves the packed (insertion) order, so the restored dict
    # iterates identically to the captured one.
    return dict(zip(array.array("q", keys), array.array("q", values)))


def _restore_int_float_dict(keys: bytes, values: bytes) -> dict:
    return dict(zip(array.array("q", keys), array.array("d", values)))


class _CanonicalPickler(pickle._Pickler):
    """Pickler producing identical bytes for equal object graphs.

    Built on the pure-Python pickler because canonicalisation needs two
    hooks the C pickler does not expose:

    * ``memoize`` is skipped for ``str``.  The memo is keyed on object
      identity, and equal strings do not have stable identity across a
      pickle round trip (attribute names and literals are interned in a
      live process; unpickled strings are not).  Unmemoized strings are
      re-emitted per occurrence — a few percent of payload that zlib
      reclaims — and the bytes become pure functions of value.
    * ``set``/``frozenset`` serialise as sorted element lists; their
      native opcodes (``ADDITEMS``/``FROZENSET``) write insertion order,
      which differs between an original and a restored set.

    Dict ordering is already deterministic (simulation dicts are built in
    deterministic insertion order, and unpickling preserves it).  The
    pickle memo keeps every non-string shared reference shared — a
    PrefetchRecord aliased across several record-map keys stays one
    object after restore.

    The pure-Python walk would be slow on the multi-megabyte workload
    arrays, so exact-type homogeneous int/float lists of ``_PACK_MIN``
    or more elements pack through :mod:`array` at C speed (host-endian:
    snapshots are same-machine artifacts, keyed by a local code-version
    stamp, never shipped across architectures).
    """

    dispatch = pickle._Pickler.dispatch.copy()

    def memoize(self, obj):
        if type(obj) is str:
            return
        super().memoize(obj)

    def save_set(self, obj):
        self.save_reduce(set, (_sorted_elements(obj),), obj=obj)

    dispatch[set] = save_set

    def save_frozenset(self, obj):
        self.save_reduce(frozenset, (_sorted_elements(obj),), obj=obj)

    dispatch[frozenset] = save_frozenset

    def save_list(self, obj):
        if len(obj) >= _PACK_MIN:
            kinds = set(map(type, obj))
            if kinds == {int}:
                try:
                    packed = array.array("q", obj)
                except OverflowError:
                    pass  # arbitrary-precision outlier: generic path
                else:
                    self.save_reduce(
                        _restore_int_list, (packed.tobytes(),), obj=obj
                    )
                    return
            elif kinds == {float}:
                packed = array.array("d", obj)
                self.save_reduce(
                    _restore_float_list, (packed.tobytes(),), obj=obj
                )
                return
        pickle._Pickler.save_list(self, obj)

    dispatch[list] = save_list

    def save_dict(self, obj):
        # The dominant graph component is main memory: a plain dict of
        # int word address -> int/float word value, up to ~1M entries.
        if len(obj) >= _PACK_MIN and set(map(type, obj.keys())) == {int}:
            value_kinds = set(map(type, obj.values()))
            try:
                if value_kinds == {int}:
                    self.save_reduce(
                        _restore_int_dict,
                        (
                            array.array("q", obj.keys()).tobytes(),
                            array.array("q", obj.values()).tobytes(),
                        ),
                        obj=obj,
                    )
                    return
                if value_kinds == {float}:
                    self.save_reduce(
                        _restore_int_float_dict,
                        (
                            array.array("q", obj.keys()).tobytes(),
                            array.array("d", obj.values()).tobytes(),
                        ),
                        obj=obj,
                    )
                    return
            except OverflowError:
                pass  # arbitrary-precision outlier: generic path
        pickle._Pickler.save_dict(self, obj)

    dispatch[dict] = save_dict


def canonical_dumps(obj) -> bytes:
    """Pickle ``obj`` with canonical (sorted) set serialisation."""
    buffer = io.BytesIO()
    _CanonicalPickler(buffer, protocol=4).dump(obj)
    return buffer.getvalue()


# ---------------------------------------------------------------------------
# Quiescence.
# ---------------------------------------------------------------------------
def is_quiescent(sim) -> bool:
    """True when ``sim`` holds no in-flight closures.

    Helper jobs and queued optimization events are picklable objects
    (their completion actions are dataclasses over the simulated object
    graph, see ``repro.core.optimizer`` / ``repro.trident.runtime``), so
    a busy helper does not block capture.  The one remaining owner of
    genuine closures is the fault injector's scheduled revert list —
    present only in fault-plan runs, and pending only inside an active
    fault window.
    """
    injector = sim.injector
    if injector is not None and injector._reverts:
        return False
    return True


# ---------------------------------------------------------------------------
# The snapshot container.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Snapshot:
    """One captured simulator state: parsed header + compressed payload."""

    header: Dict
    payload: bytes

    @property
    def committed(self) -> int:
        return self.header["committed"]

    @property
    def cycles(self) -> float:
        return self.header["cycles"]

    def to_bytes(self) -> bytes:
        header = json.dumps(
            self.header, sort_keys=True, separators=(",", ":")
        ).encode()
        return b"".join(
            (MAGIC, _HEADER_LEN.pack(len(header)), header, self.payload)
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "Snapshot":
        """Parse a framed snapshot; raises :class:`CheckpointError` on
        any truncation, corruption, or version/stamp mismatch."""
        prefix = len(MAGIC) + _HEADER_LEN.size
        if len(data) < prefix or not data.startswith(MAGIC):
            raise CheckpointError("not a checkpoint: bad magic")
        (header_len,) = _HEADER_LEN.unpack(
            data[len(MAGIC):prefix]
        )
        if len(data) < prefix + header_len:
            raise CheckpointError("truncated checkpoint header")
        try:
            header = json.loads(data[prefix:prefix + header_len])
        except ValueError as exc:
            raise CheckpointError(f"unparsable checkpoint header: {exc}")
        if not isinstance(header, dict):
            raise CheckpointError("checkpoint header is not an object")
        if header.get("format") != FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint format {header.get('format')!r} "
                f"(this build reads {FORMAT_VERSION})"
            )
        payload = data[prefix + header_len:]
        declared = header.get("payload_bytes")
        if declared is not None and declared != len(payload):
            raise CheckpointError(
                f"truncated checkpoint payload: {len(payload)} bytes, "
                f"header declares {declared}"
            )
        return cls(header=header, payload=payload)


def capture(sim) -> Snapshot:
    """Snapshot the complete simulator state at a quiescent point.

    The snapshot is taken *before* the end-of-run drain and
    ``injector.finish`` — i.e. exactly the state a longer cold run would
    have when passing this committed count — so a checkpoint captured at
    a run's own budget can seed any larger budget.
    """
    if not is_quiescent(sim):
        raise CheckpointError(
            "cannot capture: fault revert in flight "
            "(retry at the next quiescent boundary)"
        )
    committed, cycles = sim.core.snapshot()
    payload = zlib.compress(canonical_dumps(sim), _ZLIB_LEVEL)
    header = {
        "format": FORMAT_VERSION,
        "code_version": code_version(),
        "workload": sim.workload.name,
        "policy": sim.config.policy.value,
        "warmup_instructions": sim.config.warmup_instructions,
        "committed": committed,
        "cycles": cycles,
        "payload_bytes": len(payload),
    }
    return Snapshot(header=header, payload=payload)


def restore(snapshot: Snapshot):
    """Rebuild a runnable :class:`Simulation` from ``snapshot``.

    Validates the code-version stamp (a snapshot from different sources
    is not just stale, it would *diverge*), unpickles the object graph,
    and recompiles the one piece of stripped derived state that cannot
    wait for lazy rebuild: the fast interpreter's handler list for a
    trace that was mid-execution at capture time.
    """
    stamp = snapshot.header.get("code_version")
    if stamp != code_version():
        raise CheckpointError(
            "checkpoint was captured by different simulator sources "
            f"(stamp {str(stamp)[:12]}..., current "
            f"{code_version()[:12]}...)"
        )
    try:
        sim = pickle.loads(zlib.decompress(snapshot.payload))
    except Exception as exc:
        raise CheckpointError(f"corrupt checkpoint payload: {exc}")
    core = getattr(sim, "core", None)
    if core is None:
        raise CheckpointError("checkpoint payload is not a Simulation")
    if core._trace is not None and core.fast:
        from ..cpu.fastpath import compile_trace

        trace = core._trace
        handlers = compile_trace(core, trace)
        trace._fast_cache = (trace.body, len(trace.body), handlers)
        core._trace_handlers = handlers
    return sim
