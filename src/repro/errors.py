"""Structured exception hierarchy for the reproduction.

Every error the package raises deliberately derives from
:class:`ReproError`, so harness code can catch "something went wrong in a
simulation" without swallowing programming errors.  Each class carries a
``transient`` flag: the experiment harness retries a failed workload once
when its failure was transient (see
:mod:`repro.harness.experiments`), and records it otherwise.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every deliberate error in the package."""

    #: Whether a retry of the same run could plausibly succeed.
    transient = False


class ConfigError(ReproError, ValueError):
    """A configuration value is invalid (bad budget, unknown workload,
    malformed fault plan).  Never transient: the same inputs will fail
    the same way."""


class CheckpointError(ReproError, RuntimeError):
    """A simulator snapshot could not be captured, parsed, or restored —
    truncated or corrupt payload, a format/code-version mismatch, or a
    capture attempted at a non-quiescent point (in-flight helper job,
    queued optimization event, pending fault revert).  Never transient:
    the store treats it as "no checkpoint" and runs cold instead."""


class FleetError(ReproError, RuntimeError):
    """Base class for harness-infrastructure failures — the job itself may
    be fine, but the machinery running it (a worker process, its lease,
    the journal) misbehaved.  Distinct from simulation errors so retry
    policy can treat "the worker died" differently from "the run is
    invalid"."""


class WorkerCrashError(FleetError):
    """A worker process died without reporting a result — SIGKILL, an
    ``os._exit`` in library code, a segfault-equivalent.  Transient: the
    job is re-dispatched to a fresh worker under backoff."""

    transient = True


class LeaseExpiredError(FleetError):
    """A worker held a job past its wall-time lease without progress: the
    supervisor revoked the lease, killed the worker, and reclaimed the
    job.  Transient, like a wall-time watchdog trip."""

    transient = True


class PoisonJobError(FleetError):
    """A job crashed or hung its worker ``max_attempts`` times in a row
    and was quarantined so the rest of the sweep can finish.  Never
    transient: redispatching it again would wedge the fleet."""

    def __init__(self, message: str, strikes: int = 0) -> None:
        super().__init__(message)
        #: How many workers this job took down before quarantine.
        self.strikes = strikes


class JournalError(ReproError, RuntimeError):
    """The job journal could not be opened or written (bad directory,
    permission).  Corrupt *records* never raise this — recovery skips
    them — only an unusable journal does."""


#: The three-way failure taxonomy the supervisor's retry policy keys on.
TRANSIENT = "transient"
PERMANENT = "permanent"
POISON = "poison"


def classify(exc: BaseException) -> str:
    """Map an exception to the retry taxonomy.

    * ``POISON`` — quarantine, never retry (:class:`PoisonJobError`);
    * ``TRANSIENT`` — a retry could plausibly succeed (crashed worker,
      expired lease, wall-time stall);
    * ``PERMANENT`` — the same inputs will fail the same way (config
      errors, simulation bugs): record once, move on.
    """
    if isinstance(exc, PoisonJobError):
        return POISON
    if getattr(exc, "transient", False):
        return TRANSIENT
    return PERMANENT


class SimulationStallError(ReproError, RuntimeError):
    """The watchdog stopped a run that was no longer making progress —
    commit stall, cycle-budget blowout, or wall-time exhaustion.

    Marked transient: a wall-time trip depends on machine load, and a
    cycle-budget trip may clear under the retry's fresh state; the
    harness gives the workload one more chance before recording it.
    """

    transient = True

    def __init__(
        self,
        message: str,
        committed: int = 0,
        cycles: float = 0.0,
    ) -> None:
        super().__init__(message)
        #: Progress at the moment the watchdog tripped.
        self.committed = committed
        self.cycles = cycles
