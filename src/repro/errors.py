"""Structured exception hierarchy for the reproduction.

Every error the package raises deliberately derives from
:class:`ReproError`, so harness code can catch "something went wrong in a
simulation" without swallowing programming errors.  Each class carries a
``transient`` flag: the experiment harness retries a failed workload once
when its failure was transient (see
:mod:`repro.harness.experiments`), and records it otherwise.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every deliberate error in the package."""

    #: Whether a retry of the same run could plausibly succeed.
    transient = False


class ConfigError(ReproError, ValueError):
    """A configuration value is invalid (bad budget, unknown workload,
    malformed fault plan).  Never transient: the same inputs will fail
    the same way."""


class CheckpointError(ReproError, RuntimeError):
    """A simulator snapshot could not be captured, parsed, or restored —
    truncated or corrupt payload, a format/code-version mismatch, or a
    capture attempted at a non-quiescent point (in-flight helper job,
    queued optimization event, pending fault revert).  Never transient:
    the store treats it as "no checkpoint" and runs cold instead."""


class SimulationStallError(ReproError, RuntimeError):
    """The watchdog stopped a run that was no longer making progress —
    commit stall, cycle-budget blowout, or wall-time exhaustion.

    Marked transient: a wall-time trip depends on machine load, and a
    cycle-budget trip may clear under the retry's fresh state; the
    harness gives the workload one more chance before recording it.
    """

    transient = True

    def __init__(
        self,
        message: str,
        committed: int = 0,
        cycles: float = 0.0,
    ) -> None:
        super().__init__(message)
        #: Progress at the moment the watchdog tripped.
        self.committed = committed
        self.cycles = cycles
