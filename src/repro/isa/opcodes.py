"""Opcode definitions for the reproduction ISA.

The ISA is a small Alpha-flavoured register machine: 32 integer registers,
three-operand arithmetic, displacement-addressed loads and stores, compare
instructions that write a register, and conditional branches that test a
register against zero.  It is deliberately minimal — just enough for the
synthetic workloads and for the dynamic optimizer to manipulate real
instructions the way the paper's optimizer patches Alpha machine code.

Two opcodes exist specifically for the prefetcher:

* ``PREFETCH`` — a non-binding, non-faulting cache-line prefetch of
  ``disp(base)``.  It never stalls the pipeline and never raises.
* ``LDQ_NF`` — a non-faulting load.  The pointer-prefetch transformation
  (paper section 3.4.3) dereferences a possibly-garbage pointer, so the
  inserted load must not fault; unmapped addresses read as zero.
"""

from __future__ import annotations

import enum


class Opcode(enum.Enum):
    """Every instruction opcode understood by the functional executor."""

    # Memory.
    LDQ = "ldq"          # rd <- mem[ra + disp]
    LDQ_NF = "ldq_nf"    # non-faulting load (reads 0 from unmapped memory)
    STQ = "stq"          # mem[ra + disp] <- rd
    PREFETCH = "prefetch"  # non-binding prefetch of mem[ra + disp]

    # Address arithmetic (Alpha's LDA: rd <- ra + disp, no memory access).
    LDA = "lda"

    # Integer arithmetic / logic.
    ADDQ = "addq"
    SUBQ = "subq"
    MULQ = "mulq"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"

    # Floating point (operates on the same register file; the distinction
    # matters only for issue-port accounting in the timing model).
    ADDF = "addf"
    SUBF = "subf"
    MULF = "mulf"
    DIVF = "divf"

    # Compares: rd <- 1 if cond else 0.
    CMPEQ = "cmpeq"
    CMPLT = "cmplt"
    CMPLE = "cmple"

    # Control flow.  Conditional branches test ra against zero.
    BR = "br"            # unconditional, pc-relative via target
    BEQ = "beq"          # taken if ra == 0
    BNE = "bne"          # taken if ra != 0
    BLT = "blt"          # taken if ra < 0
    BGE = "bge"          # taken if ra >= 0
    JMP = "jmp"          # indirect jump to address in ra

    # Misc.
    MOVE = "move"        # rd <- ra (the Trident-added ISA helper, section 3.2)
    NOP = "nop"
    HALT = "halt"        # ends the simulated program


#: Opcodes that read data memory.
LOAD_OPCODES = frozenset({Opcode.LDQ, Opcode.LDQ_NF})

#: Opcodes that write data memory.
STORE_OPCODES = frozenset({Opcode.STQ})

#: All memory-touching opcodes (prefetch included: it accesses the hierarchy
#: but is non-binding).
MEMORY_OPCODES = LOAD_OPCODES | STORE_OPCODES | {Opcode.PREFETCH}

#: Conditional branches (have a direction the branch profiler records).
CONDITIONAL_BRANCHES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE}
)

#: Every control-flow opcode.
BRANCH_OPCODES = CONDITIONAL_BRANCHES | {Opcode.BR, Opcode.JMP}

#: Three-operand integer ALU opcodes (rd <- ra op rb/imm).
INT_ALU_OPCODES = frozenset(
    {
        Opcode.ADDQ,
        Opcode.SUBQ,
        Opcode.MULQ,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SLL,
        Opcode.SRL,
        Opcode.CMPEQ,
        Opcode.CMPLT,
        Opcode.CMPLE,
    }
)

#: Floating-point ALU opcodes.
FP_ALU_OPCODES = frozenset(
    {Opcode.ADDF, Opcode.SUBF, Opcode.MULF, Opcode.DIVF}
)

#: "Simple arithmetic" opcodes for the stride-recurrence test of section
#: 3.4.1: a load is a stride load if the recurrence between instances of its
#: base register is a single one of these with a constant argument.
SIMPLE_RECURRENCE_OPCODES = frozenset({Opcode.LDA, Opcode.ADDQ, Opcode.SUBQ})

#: Opcodes that define (write) their ``rd`` register.
REG_WRITING_OPCODES = (
    INT_ALU_OPCODES
    | FP_ALU_OPCODES
    | LOAD_OPCODES
    | {Opcode.LDA, Opcode.MOVE}
)


def writes_register(opcode: Opcode) -> bool:
    """Return True when ``opcode`` writes its destination register."""
    return opcode in REG_WRITING_OPCODES


def is_load(opcode: Opcode) -> bool:
    """Return True when ``opcode`` reads data memory into a register."""
    return opcode in LOAD_OPCODES


def is_store(opcode: Opcode) -> bool:
    """Return True when ``opcode`` writes data memory."""
    return opcode in STORE_OPCODES


def is_branch(opcode: Opcode) -> bool:
    """Return True when ``opcode`` may redirect control flow."""
    return opcode in BRANCH_OPCODES


def is_conditional_branch(opcode: Opcode) -> bool:
    """Return True for branches with a runtime-determined direction."""
    return opcode in CONDITIONAL_BRANCHES
