"""Register-file conventions for the reproduction ISA.

There are 32 integer registers ``r0`` .. ``r31``.  ``r31`` is hard-wired to
zero, as on Alpha.  Registers ``r28`` .. ``r30`` are *reserved for the
dynamic optimizer*: the pointer-prefetch transformation needs scratch
registers for its inserted non-faulting dereference loads, and reserving a
small set (rather than doing liveness analysis over arbitrary traces) mirrors
how Trident's runtime claims Alpha's assembler temporaries.

Workload programs assembled through :class:`repro.isa.assembler.Assembler`
are rejected if they write a reserved register, which guarantees the
optimizer can clobber them freely.
"""

from __future__ import annotations

from typing import Iterable

#: Total number of architectural integer registers.
NUM_REGISTERS = 32

#: Index of the hard-wired zero register.
ZERO_REGISTER = 31

#: Registers the dynamic optimizer may clobber in any hot trace.
OPTIMIZER_SCRATCH_REGISTERS = (28, 29, 30)

#: Registers a workload program may freely use.
PROGRAM_REGISTERS = tuple(
    r
    for r in range(NUM_REGISTERS)
    if r not in OPTIMIZER_SCRATCH_REGISTERS and r != ZERO_REGISTER
)


def register_name(index: int) -> str:
    """Return the canonical name (``r<n>``) for a register index."""
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"register index out of range: {index}")
    return f"r{index}"


def parse_register(name: str) -> int:
    """Parse a register name like ``r7`` (or ``R7``) into its index.

    Raises ``ValueError`` for anything that is not a valid register name.
    """
    text = name.strip().lower()
    if not text.startswith("r"):
        raise ValueError(f"not a register name: {name!r}")
    try:
        index = int(text[1:])
    except ValueError as exc:
        raise ValueError(f"not a register name: {name!r}") from exc
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"register index out of range: {name!r}")
    return index


def check_program_register(index: int) -> int:
    """Validate that a workload program may write register ``index``.

    Returns the index unchanged so callers can use it inline.  Writing the
    zero register is silently permitted (it is simply discarded, as on
    Alpha); writing an optimizer scratch register is an error because the
    dynamic optimizer assumes it owns those.
    """
    if index in OPTIMIZER_SCRATCH_REGISTERS:
        raise ValueError(
            f"r{index} is reserved for the dynamic optimizer; "
            f"workloads must use r0..r27"
        )
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"register index out of range: {index}")
    return index


def fresh_register_pool(exclude: Iterable[int] = ()) -> list[int]:
    """Return program-usable registers not present in ``exclude``.

    Convenience for workload builders that allocate registers by name.
    """
    used = set(exclude)
    return [r for r in PROGRAM_REGISTERS if r not in used]
