"""Program container: a flat instruction list with symbolic labels.

PCs are instruction indices (each instruction occupies one PC slot).  Data
addresses are a separate byte-addressed space held by
:class:`repro.memory.mainmem.DataMemory`; the two never alias.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .instruction import Instruction


@dataclass
class Program:
    """An assembled program.

    Attributes:
        instructions: the instruction stream; PC ``i`` is ``instructions[i]``.
        labels: label name -> PC index.
        entry: PC at which execution starts.
        name: human-readable workload name.
    """

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    entry: int = 0
    name: str = "program"

    def __len__(self) -> int:
        return len(self.instructions)

    def fetch(self, pc: int) -> Instruction:
        """Return the instruction at ``pc``.

        Raises ``IndexError`` when the PC runs off the end of the program —
        a workload bug, surfaced loudly rather than silently halting.
        """
        if 0 <= pc < len(self.instructions):
            return self.instructions[pc]
        raise IndexError(f"PC {pc} outside program '{self.name}'")

    def label_pc(self, label: str) -> int:
        """Return the PC a label points at."""
        return self.labels[label]

    def pc_label(self, pc: int) -> Optional[str]:
        """Return a label naming ``pc``, if any (first match wins)."""
        for name, target in self.labels.items():
            if target == pc:
                return name
        return None

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation.

        * every branch has a resolved in-range target (JMP excepted),
        * the entry PC is in range,
        * the program contains at least one ``HALT`` (so bounded workloads
          terminate even without an instruction budget).
        """
        from .opcodes import Opcode

        n = len(self.instructions)
        if not 0 <= self.entry < max(n, 1):
            raise ValueError(f"entry PC {self.entry} out of range")
        has_halt = False
        for pc, inst in enumerate(self.instructions):
            if inst.opcode is Opcode.HALT:
                has_halt = True
            if inst.is_branch and inst.opcode is not Opcode.JMP:
                if inst.target is None:
                    raise ValueError(
                        f"unresolved branch at PC {pc} (label={inst.label!r})"
                    )
                if not 0 <= inst.target < n:
                    raise ValueError(
                        f"branch at PC {pc} targets out-of-range PC "
                        f"{inst.target}"
                    )
        if n and not has_halt:
            raise ValueError(f"program '{self.name}' has no HALT")
