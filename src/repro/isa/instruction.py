"""Instruction representation.

An :class:`Instruction` is a mutable record — mutability is deliberate: the
self-repairing optimizer *patches prefetch instruction bits in place*
(paper section 3.5.1), which we model by rewriting the ``disp`` field of a
``PREFETCH`` instruction that already sits inside a linked hot trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .opcodes import (
    Opcode,
    is_branch,
    is_conditional_branch,
    is_load,
    is_store,
    writes_register,
)


@dataclass
class Instruction:
    """One machine instruction.

    Fields are used according to the opcode:

    * ALU three-operand: ``rd <- ra op (rb | imm)`` — exactly one of ``rb``
      or ``imm`` is set.
    * ``LDA``: ``rd <- ra + disp``.
    * Loads: ``rd <- mem[ra + disp]``; stores: ``mem[ra + disp] <- rd``.
    * ``PREFETCH``: prefetch ``mem[ra + disp]``.
    * Conditional branches: test ``ra``, jump to ``target`` (a PC index).
    * ``BR``: jump to ``target``; ``JMP``: jump to address in ``ra``.
    * ``MOVE``: ``rd <- ra``.
    """

    opcode: Opcode
    rd: Optional[int] = None
    ra: Optional[int] = None
    rb: Optional[int] = None
    imm: Optional[int] = None
    disp: int = 0
    target: Optional[int] = None
    #: Unresolved label for the branch target; resolved by the assembler.
    label: Optional[str] = None
    #: Metadata attached by the optimizer (e.g. prefetch bookkeeping).
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Classification helpers (thin wrappers so call sites read naturally).
    # ------------------------------------------------------------------
    @property
    def is_load(self) -> bool:
        return is_load(self.opcode)

    @property
    def is_store(self) -> bool:
        return is_store(self.opcode)

    @property
    def is_branch(self) -> bool:
        return is_branch(self.opcode)

    @property
    def is_conditional_branch(self) -> bool:
        return is_conditional_branch(self.opcode)

    @property
    def is_prefetch(self) -> bool:
        return self.opcode is Opcode.PREFETCH

    @property
    def writes_rd(self) -> bool:
        return writes_register(self.opcode) and self.rd is not None

    def source_registers(self) -> tuple:
        """Return the register indices this instruction reads."""
        sources = []
        if self.ra is not None:
            sources.append(self.ra)
        if self.rb is not None:
            sources.append(self.rb)
        if self.opcode is Opcode.STQ and self.rd is not None:
            # A store reads the register it names as "rd" (the value).
            sources.append(self.rd)
        return tuple(sources)

    def destination_register(self) -> Optional[int]:
        """Return the register this instruction writes, or None."""
        if self.writes_rd:
            return self.rd
        return None

    def copy(self) -> "Instruction":
        """Return an independent copy (meta is shallow-copied)."""
        return Instruction(
            opcode=self.opcode,
            rd=self.rd,
            ra=self.ra,
            rb=self.rb,
            imm=self.imm,
            disp=self.disp,
            target=self.target,
            label=self.label,
            meta=dict(self.meta),
        )
