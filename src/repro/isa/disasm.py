"""Textual disassembly, for debugging traces and optimizer output."""

from __future__ import annotations

from typing import Iterable, Optional

from .instruction import Instruction
from .opcodes import (
    CONDITIONAL_BRANCHES,
    FP_ALU_OPCODES,
    INT_ALU_OPCODES,
    Opcode,
)
from .program import Program
from .registers import register_name


def format_instruction(inst: Instruction) -> str:
    """Render one instruction in a readable Alpha-ish syntax."""
    op = inst.opcode
    if op in (Opcode.LDQ, Opcode.LDQ_NF, Opcode.STQ):
        return (
            f"{op.value} {register_name(inst.rd)}, "
            f"{inst.disp}({register_name(inst.ra)})"
        )
    if op is Opcode.PREFETCH:
        return f"{op.value} {inst.disp}({register_name(inst.ra)})"
    if op is Opcode.LDA:
        return (
            f"lda {register_name(inst.rd)}, "
            f"{inst.disp}({register_name(inst.ra)})"
        )
    if op in INT_ALU_OPCODES or op in FP_ALU_OPCODES:
        rhs = register_name(inst.rb) if inst.rb is not None else f"#{inst.imm}"
        return (
            f"{op.value} {register_name(inst.rd)}, "
            f"{register_name(inst.ra)}, {rhs}"
        )
    if op in CONDITIONAL_BRANCHES:
        target = inst.label if inst.target is None else inst.target
        return f"{op.value} {register_name(inst.ra)}, {target}"
    if op is Opcode.BR:
        target = inst.label if inst.target is None else inst.target
        return f"br {target}"
    if op is Opcode.JMP:
        return f"jmp ({register_name(inst.ra)})"
    if op is Opcode.MOVE:
        return f"move {register_name(inst.rd)}, {register_name(inst.ra)}"
    return op.value


def disassemble(
    program: Program, start: int = 0, end: Optional[int] = None
) -> str:
    """Render a PC range of ``program`` with labels and PC numbers."""
    end = len(program) if end is None else end
    pc_to_label = {pc: name for name, pc in program.labels.items()}
    lines = []
    for pc in range(start, min(end, len(program))):
        if pc in pc_to_label:
            lines.append(f"{pc_to_label[pc]}:")
        lines.append(f"  {pc:5d}  {format_instruction(program.instructions[pc])}")
    return "\n".join(lines)


def format_instructions(instructions: Iterable[Instruction]) -> str:
    """Render a bare instruction sequence (e.g. a hot trace body)."""
    return "\n".join(
        f"  {i:5d}  {format_instruction(inst)}"
        for i, inst in enumerate(instructions)
    )
