"""A small assembler DSL for building workload programs.

Workloads construct programs through method calls rather than parsing text::

    asm = Assembler("mcf")
    asm.lda("r1", "r31", HEAD_ADDR)      # r1 = &head
    asm.label("loop")
    asm.ldq("r2", "r1", 0)               # r2 = node->next
    asm.ldq("r3", "r1", 8)               # r3 = node->value
    asm.addq("r4", "r4", rb="r3")
    asm.move("r1", "r2")
    asm.bne("r2", "loop")
    asm.halt()
    program = asm.build()

Register operands are names (``"r5"``) or raw indices.  Branch targets are
label strings, resolved (forward references included) by :meth:`build`.
Writes to optimizer-reserved registers are rejected at assembly time — see
:mod:`repro.isa.registers`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from .instruction import Instruction
from .opcodes import Opcode
from .program import Program
from .registers import check_program_register, parse_register

RegOperand = Union[str, int]


def _reg(operand: RegOperand) -> int:
    """Normalise a register operand (name or index) to an index."""
    if isinstance(operand, str):
        return parse_register(operand)
    if isinstance(operand, int):
        if not 0 <= operand < 32:
            raise ValueError(f"register index out of range: {operand}")
        return operand
    raise TypeError(f"bad register operand: {operand!r}")


class Assembler:
    """Incrementally builds a :class:`repro.isa.program.Program`."""

    def __init__(self, name: str = "program", allow_reserved: bool = False):
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        #: True when assembling optimizer-inserted code, which is allowed to
        #: use the reserved scratch registers.
        self._allow_reserved = allow_reserved

    # ------------------------------------------------------------------
    # Structure.
    # ------------------------------------------------------------------
    @property
    def here(self) -> int:
        """PC of the next instruction to be emitted."""
        return len(self._instructions)

    def label(self, name: str) -> int:
        """Define ``name`` at the current PC and return that PC."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = self.here
        return self.here

    def emit(self, inst: Instruction) -> Instruction:
        """Append a pre-built instruction (checked for reserved registers)."""
        dest = inst.destination_register()
        if dest is not None and not self._allow_reserved:
            check_program_register(dest)
        self._instructions.append(inst)
        return inst

    def build(self) -> Program:
        """Resolve labels and return the finished, validated program."""
        for pc, inst in enumerate(self._instructions):
            if inst.label is not None and inst.target is None:
                if inst.label not in self._labels:
                    raise ValueError(
                        f"undefined label {inst.label!r} at PC {pc}"
                    )
                inst.target = self._labels[inst.label]
        program = Program(
            instructions=self._instructions,
            labels=dict(self._labels),
            entry=0,
            name=self.name,
        )
        program.validate()
        return program

    # ------------------------------------------------------------------
    # Memory.
    # ------------------------------------------------------------------
    def ldq(self, rd: RegOperand, ra: RegOperand, disp: int = 0) -> Instruction:
        return self.emit(
            Instruction(Opcode.LDQ, rd=_reg(rd), ra=_reg(ra), disp=disp)
        )

    def ldq_nf(
        self, rd: RegOperand, ra: RegOperand, disp: int = 0
    ) -> Instruction:
        return self.emit(
            Instruction(Opcode.LDQ_NF, rd=_reg(rd), ra=_reg(ra), disp=disp)
        )

    def stq(self, rd: RegOperand, ra: RegOperand, disp: int = 0) -> Instruction:
        return self.emit(
            Instruction(Opcode.STQ, rd=_reg(rd), ra=_reg(ra), disp=disp)
        )

    def prefetch(self, ra: RegOperand, disp: int = 0) -> Instruction:
        return self.emit(Instruction(Opcode.PREFETCH, ra=_reg(ra), disp=disp))

    def lda(self, rd: RegOperand, ra: RegOperand, disp: int = 0) -> Instruction:
        return self.emit(
            Instruction(Opcode.LDA, rd=_reg(rd), ra=_reg(ra), disp=disp)
        )

    # ------------------------------------------------------------------
    # ALU.  Exactly one of ``rb`` / ``imm`` must be given.
    # ------------------------------------------------------------------
    def _alu(
        self,
        opcode: Opcode,
        rd: RegOperand,
        ra: RegOperand,
        rb: Optional[RegOperand],
        imm: Optional[int],
    ) -> Instruction:
        if (rb is None) == (imm is None):
            raise ValueError(
                f"{opcode.value}: exactly one of rb/imm must be given"
            )
        return self.emit(
            Instruction(
                opcode,
                rd=_reg(rd),
                ra=_reg(ra),
                rb=None if rb is None else _reg(rb),
                imm=imm,
            )
        )

    def addq(self, rd, ra, rb=None, imm=None) -> Instruction:
        return self._alu(Opcode.ADDQ, rd, ra, rb, imm)

    def subq(self, rd, ra, rb=None, imm=None) -> Instruction:
        return self._alu(Opcode.SUBQ, rd, ra, rb, imm)

    def mulq(self, rd, ra, rb=None, imm=None) -> Instruction:
        return self._alu(Opcode.MULQ, rd, ra, rb, imm)

    def and_(self, rd, ra, rb=None, imm=None) -> Instruction:
        return self._alu(Opcode.AND, rd, ra, rb, imm)

    def or_(self, rd, ra, rb=None, imm=None) -> Instruction:
        return self._alu(Opcode.OR, rd, ra, rb, imm)

    def xor(self, rd, ra, rb=None, imm=None) -> Instruction:
        return self._alu(Opcode.XOR, rd, ra, rb, imm)

    def sll(self, rd, ra, rb=None, imm=None) -> Instruction:
        return self._alu(Opcode.SLL, rd, ra, rb, imm)

    def srl(self, rd, ra, rb=None, imm=None) -> Instruction:
        return self._alu(Opcode.SRL, rd, ra, rb, imm)

    def addf(self, rd, ra, rb=None, imm=None) -> Instruction:
        return self._alu(Opcode.ADDF, rd, ra, rb, imm)

    def subf(self, rd, ra, rb=None, imm=None) -> Instruction:
        return self._alu(Opcode.SUBF, rd, ra, rb, imm)

    def mulf(self, rd, ra, rb=None, imm=None) -> Instruction:
        return self._alu(Opcode.MULF, rd, ra, rb, imm)

    def divf(self, rd, ra, rb=None, imm=None) -> Instruction:
        return self._alu(Opcode.DIVF, rd, ra, rb, imm)

    def cmpeq(self, rd, ra, rb=None, imm=None) -> Instruction:
        return self._alu(Opcode.CMPEQ, rd, ra, rb, imm)

    def cmplt(self, rd, ra, rb=None, imm=None) -> Instruction:
        return self._alu(Opcode.CMPLT, rd, ra, rb, imm)

    def cmple(self, rd, ra, rb=None, imm=None) -> Instruction:
        return self._alu(Opcode.CMPLE, rd, ra, rb, imm)

    # ------------------------------------------------------------------
    # Control flow.
    # ------------------------------------------------------------------
    def br(self, label: str) -> Instruction:
        return self.emit(Instruction(Opcode.BR, label=label))

    def beq(self, ra: RegOperand, label: str) -> Instruction:
        return self.emit(Instruction(Opcode.BEQ, ra=_reg(ra), label=label))

    def bne(self, ra: RegOperand, label: str) -> Instruction:
        return self.emit(Instruction(Opcode.BNE, ra=_reg(ra), label=label))

    def blt(self, ra: RegOperand, label: str) -> Instruction:
        return self.emit(Instruction(Opcode.BLT, ra=_reg(ra), label=label))

    def bge(self, ra: RegOperand, label: str) -> Instruction:
        return self.emit(Instruction(Opcode.BGE, ra=_reg(ra), label=label))

    def jmp(self, ra: RegOperand) -> Instruction:
        return self.emit(Instruction(Opcode.JMP, ra=_reg(ra)))

    # ------------------------------------------------------------------
    # Misc.
    # ------------------------------------------------------------------
    def move(self, rd: RegOperand, ra: RegOperand) -> Instruction:
        return self.emit(Instruction(Opcode.MOVE, rd=_reg(rd), ra=_reg(ra)))

    def li(self, rd: RegOperand, value: int) -> Instruction:
        """Load-immediate pseudo-op: ``lda rd, value(r31)``."""
        return self.lda(rd, "r31", value)

    def nop(self) -> Instruction:
        return self.emit(Instruction(Opcode.NOP))

    def halt(self) -> Instruction:
        return self.emit(Instruction(Opcode.HALT))
