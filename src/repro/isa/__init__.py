"""Instruction-set substrate: opcodes, instructions, programs, assembler."""

from .assembler import Assembler
from .disasm import disassemble, format_instruction, format_instructions
from .instruction import Instruction
from .opcodes import (
    BRANCH_OPCODES,
    CONDITIONAL_BRANCHES,
    LOAD_OPCODES,
    MEMORY_OPCODES,
    Opcode,
    STORE_OPCODES,
    is_branch,
    is_conditional_branch,
    is_load,
    is_store,
)
from .program import Program
from .registers import (
    NUM_REGISTERS,
    OPTIMIZER_SCRATCH_REGISTERS,
    PROGRAM_REGISTERS,
    ZERO_REGISTER,
    parse_register,
    register_name,
)

__all__ = [
    "Assembler",
    "BRANCH_OPCODES",
    "CONDITIONAL_BRANCHES",
    "Instruction",
    "LOAD_OPCODES",
    "MEMORY_OPCODES",
    "NUM_REGISTERS",
    "Opcode",
    "OPTIMIZER_SCRATCH_REGISTERS",
    "PROGRAM_REGISTERS",
    "Program",
    "STORE_OPCODES",
    "ZERO_REGISTER",
    "disassemble",
    "format_instruction",
    "format_instructions",
    "is_branch",
    "is_conditional_branch",
    "is_load",
    "is_store",
    "parse_register",
    "register_name",
]
