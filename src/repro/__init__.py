"""repro — reproduction of "A Self-Repairing Prefetcher in an Event-Driven
Dynamic Optimization Framework" (Zhang, Calder, Tullsen; CGO 2006).

Quickstart::

    from repro import run_simulation, PrefetchPolicy

    baseline = run_simulation("mcf", policy=PrefetchPolicy.HW_ONLY)
    repaired = run_simulation("mcf", policy=PrefetchPolicy.SELF_REPAIRING)
    print(f"speedup: {repaired.speedup_over(baseline):.2f}x")

Package layout (see DESIGN.md for the full inventory):

* :mod:`repro.isa` — the instruction-set substrate;
* :mod:`repro.memory` — caches, hierarchy, Figure-6 accounting;
* :mod:`repro.hwprefetch` — the hardware stream-buffer baseline;
* :mod:`repro.cpu` — the SMT dataflow timing core;
* :mod:`repro.trident` — the event-driven optimization framework;
* :mod:`repro.core` — the paper's contribution: the self-repairing
  dynamic prefetch optimizer;
* :mod:`repro.workloads` — the 14 benchmarks as synthetic equivalents;
* :mod:`repro.harness` — experiments reproducing every figure.
"""

from .config import (
    CacheConfig,
    DLTConfig,
    MachineConfig,
    PrefetchPolicy,
    SimulationConfig,
    StreamBufferConfig,
    TridentConfig,
)
from .errors import ConfigError, ReproError, SimulationStallError
from .faults import FaultEvent, FaultInjector, FaultPlan, Watchdog
from .harness.runner import Simulation, SimulationResult, run_simulation
from .workloads.registry import (
    BENCHMARK_NAMES,
    all_workload_names,
    load_workload,
)

__version__ = "1.1.0"

__all__ = [
    "BENCHMARK_NAMES",
    "CacheConfig",
    "ConfigError",
    "DLTConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "MachineConfig",
    "PrefetchPolicy",
    "ReproError",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "SimulationStallError",
    "StreamBufferConfig",
    "TridentConfig",
    "Watchdog",
    "all_workload_names",
    "load_workload",
    "run_simulation",
    "__version__",
]
