"""Command-line interface: ``python -m repro``.

Subcommands:

* ``list`` — the 14 benchmark workloads and their characters;
* ``run``  — simulate one workload under one prefetching policy;
* ``figure`` — regenerate one of the paper's figures.

Examples::

    python -m repro list
    python -m repro run mcf --policy self_repairing --instructions 100000
    python -m repro run mcf --inject plan.json --wall-time-limit 120
    python -m repro figure 5 --workloads mcf,art --instructions 80000
    python -m repro figure resilience --workloads art,swim
    python -m repro figure 5 --jobs 2 --journal-dir /tmp/j \\
        --chaos seed=7 kill-rate=0.2
    python -m repro resume-sweep --journal-dir /tmp/j

A SIGINT (ctrl-C) or SIGTERM lands cleanly: in-flight futures are
cancelled, everything already simulated is committed to the result
cache and journal, and the process exits with ``128 + signum`` (130 or
143) after a one-line notice — never a traceback.  ``resume-sweep``
picks the interrupted sweep back up from its journal.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from typing import List, Optional

from .errors import ReproError
from .faults.plan import FaultPlan
from .harness import experiments
from .harness.engine import ExperimentEngine, make_job
from .harness.report import render_mapping, render_timeline
from .harness.runner import run_simulation
from .hwprefetch.zoo import all_policy_names
from .logutil import configure_logging
from .obs import Observer, write_chrome_trace, write_jsonl, write_metrics
from .workloads.registry import BENCHMARK_NAMES, load_workload

_FIGURES = {
    "2": experiments.fig2_hw_baseline,
    "3": experiments.fig3_overhead,
    "4": experiments.fig4_coverage,
    "5": experiments.fig5_policies,
    "6": experiments.fig6_breakdown,
    "7": experiments.fig7_threshold_sweep,
    "8": experiments.fig8_dlt_sweep,
    "9": experiments.fig9_sw_vs_hw,
    "cache": experiments.cache_equivalent_area,
    "resilience": experiments.resilience,
    "scaling": experiments.scaling_curve,
    "tournament": experiments.tournament,
}


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    """The experiment-engine knobs shared by run/figure/timeline."""
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=1,
        help=(
            "fan simulations out over N worker processes "
            "(results are re-ordered into submission order, so the "
            "output is identical to --jobs 1)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=(
            "bypass the content-addressed result cache "
            "(REPRO_CACHE_DIR, default ~/.cache/repro) entirely"
        ),
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="re-simulate every job and overwrite its cache entry",
    )
    parser.add_argument(
        "--fast",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "use the pre-decoded fast interpreter (default; --no-fast "
            "selects the reference step loop — byte-identical results, "
            "distinct cache entries)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help=(
            "root of the snapshot store used to resume longer budgets "
            "from shorter ones (default: alongside the result cache; "
            "with --no-cache, checkpoints are off unless this is given)"
        ),
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        default=None,
        help=(
            "also capture a mid-run snapshot every N committed "
            "instructions (run subcommand; end-of-run snapshots are "
            "always captured when a checkpoint store is active)"
        ),
    )
    parser.add_argument(
        "--journal-dir",
        metavar="DIR",
        default=None,
        help=(
            "append every job transition to a durable journal under "
            "DIR; an interrupted sweep can then be picked back up with "
            "'repro resume-sweep --journal-dir DIR'"
        ),
    )
    parser.add_argument(
        "--chaos",
        nargs="+",
        metavar="K=V",
        default=None,
        help=(
            "inject seeded fleet-level faults (worker kills, hangs, "
            "torn journal writes, cache corruption) and prove the "
            "output identical anyway; tokens: seed=N kill-rate=F "
            "hang-rate=F hang-s=F max-kills=N torn-journal=N "
            "corrupt-cache-rate=F — e.g. --chaos seed=7 kill-rate=0.2"
        ),
    )


def _engine_from_args(
    args: argparse.Namespace, want_telemetry: bool = False
) -> ExperimentEngine:
    kwargs = {"workers": args.jobs, "refresh": args.refresh}
    if args.no_cache:
        kwargs["cache"] = None
    if args.checkpoint_dir:
        from .checkpoint import CheckpointStore

        kwargs["checkpoints"] = CheckpointStore(args.checkpoint_dir)
    journal_dir = getattr(args, "journal_dir", None)
    hub = None
    if want_telemetry or journal_dir:
        # A journalled sweep always gets a TelemetryHub: the hub's live
        # feed lands beside the journal, which is exactly where `repro
        # fleet status --journal-dir DIR` looks for it.
        from .obs.telemetry import TelemetryHub

        hub = TelemetryHub(out_dir=journal_dir)
        kwargs["telemetry"] = hub
    if journal_dir:
        from .harness.journal import JobJournal

        journal = JobJournal(journal_dir)
        journal.append(
            "sweep", argv=sys.argv[1:], sweep_id=hub.sweep_id
        )
        kwargs["journal"] = journal
    if getattr(args, "chaos", None):
        from .faults.chaos import ChaosPlan

        kwargs["chaos"] = ChaosPlan.parse(args.chaos)
    return ExperimentEngine(**kwargs)


def _print_fleet_summary(
    engine: ExperimentEngine, args: argparse.Namespace
) -> None:
    """The per-invocation engine (and chaos) counters, on stderr.

    With a telemetry hub the line is rendered from the fleet gauges —
    the same numbers `repro fleet status` shows — and with --quiet it is
    suppressed entirely.
    """
    if getattr(args, "quiet", False):
        return
    if engine.telemetry is not None:
        print(engine.telemetry.summary(), file=sys.stderr)
    else:
        print(engine.stats.summary(), file=sys.stderr)
    if engine.chaos is not None:
        print(engine.chaos.summary(), file=sys.stderr)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Self-Repairing Prefetcher in an "
            "Event-Driven Dynamic Optimization Framework' (CGO 2006)"
        ),
    )
    parser.add_argument(
        "--log-level",
        default="warning",
        choices=["debug", "info", "warning", "error"],
        help="verbosity of the repro.* loggers (stderr)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress all diagnostics below errors",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark workloads")

    run = sub.add_parser("run", help="simulate one workload")
    run.add_argument(
        "workload",
        nargs="?",
        default=None,
        help=(
            "a builtin benchmark name, 'scenario:<catalog-name or "
            "spec.json>', or 'trace:<file.champsim.gz>' (see 'repro "
            "scenarios'); omit when using --scenario/--trace"
        ),
    )
    run.add_argument(
        "--scenario",
        metavar="NAME_OR_FILE",
        default=None,
        help=(
            "simulate a DSL scenario: a catalog name ('repro scenarios "
            "list') or a ScenarioSpec JSON file"
        ),
    )
    run.add_argument(
        "--trace",
        metavar="TRACE.champsim.gz",
        default=None,
        help=(
            "replay a ChampSim-format memory-access trace as the "
            "workload (gzip'd 64-byte records)"
        ),
    )
    run.add_argument(
        "--policy",
        default="self_repairing",
        choices=all_policy_names(),
        help=(
            "a paper policy or a hardware-prefetcher zoo name "
            "(zoo names run hw-only with that engine)"
        ),
    )
    run.add_argument("--instructions", type=int, default=100_000)
    run.add_argument("--warmup", type=int, default=200_000)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument(
        "--json", action="store_true", help="emit the result as JSON"
    )
    run.add_argument(
        "--inject",
        metavar="FAULT_PLAN.json",
        default=None,
        help=(
            "inject faults from a JSON fault plan mid-run "
            "(see repro.faults.plan for the schema: DRAM latency "
            "spikes, bus contention, cache flushes, DLT corruption, "
            "helper-thread stalls ...)"
        ),
    )
    run.add_argument(
        "--wall-time-limit",
        type=float,
        metavar="SECONDS",
        default=None,
        help=(
            "watchdog: abort with SimulationStallError when the run "
            "uses more than this much host wall time"
        ),
    )
    run.add_argument(
        "--max-cycles",
        type=float,
        metavar="CYCLES",
        default=None,
        help=(
            "watchdog: abort with SimulationStallError past this many "
            "simulated cycles"
        ),
    )
    run.add_argument(
        "--resume-from",
        metavar="SNAPSHOT.ckpt",
        default=None,
        help=(
            "restore this checkpoint file and continue it to "
            "--instructions, bypassing the engine and cache (workload/"
            "policy/warmup come from the snapshot; the positional "
            "workload must match the snapshot's)"
        ),
    )
    run.add_argument(
        "--trace-out",
        metavar="TRACE.json",
        default=None,
        help=(
            "export the run's cycle-stamped event stream; a .jsonl "
            "suffix writes JSONL (one event per line), anything else "
            "writes Chrome trace-event JSON loadable in Perfetto "
            "(https://ui.perfetto.dev)"
        ),
    )
    run.add_argument(
        "--metrics-out",
        metavar="METRICS.json",
        default=None,
        help=(
            "write the consolidated observer snapshot (metrics "
            "registry, ring summary, repair timelines, samples) as JSON"
        ),
    )
    run.add_argument(
        "--sample-interval",
        type=int,
        metavar="N",
        default=None,
        help=(
            "close a windowed IPC/miss-rate/latency sample every N "
            "committed instructions (implies observation)"
        ),
    )
    _add_engine_args(run)

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("figure", choices=sorted(_FIGURES))
    fig.add_argument(
        "--workloads",
        default=None,
        help=(
            "comma-separated subset (default: all 14); entries may be "
            "builtin names, 'scenario:<name-or-file>', or "
            "'trace:<file>' references"
        ),
    )
    fig.add_argument("--instructions", type=int, default=None)
    fig.add_argument("--warmup", type=int, default=None)
    fig.add_argument(
        "--trace-out",
        metavar="TRACE.json",
        default=None,
        help=(
            "export a Perfetto-loadable Chrome trace: the resilience "
            "figure writes its instrumented single run's event stream; "
            "every other figure writes the stitched *fleet* trace — "
            "engine and worker processes on one wall-clock timeline"
        ),
    )
    _add_engine_args(fig)

    timeline = sub.add_parser(
        "timeline",
        help=(
            "run a workload and print each delinquent PC's repair "
            "timeline (the section-3.5.2 distance search, step by step)"
        ),
    )
    timeline.add_argument("workload", choices=BENCHMARK_NAMES)
    timeline.add_argument(
        "--policy",
        default="self_repairing",
        choices=all_policy_names(),
    )
    timeline.add_argument("--instructions", type=int, default=100_000)
    timeline.add_argument("--warmup", type=int, default=200_000)
    timeline.add_argument("--seed", type=int, default=1)
    timeline.add_argument(
        "--json-out",
        metavar="TIMELINES.jsonl",
        default=None,
        help="also write the timelines as JSONL (one record per PC)",
    )
    # Accepted for CLI symmetry: a timeline needs the live observer's
    # repair-timeline tracker, so the single run stays in-process and
    # --jobs/--no-cache/--refresh change nothing.
    _add_engine_args(timeline)

    traces = sub.add_parser(
        "traces",
        help="run a workload and dump its linked hot traces",
    )
    traces.add_argument("workload", choices=BENCHMARK_NAMES)
    traces.add_argument("--instructions", type=int, default=80_000)
    traces.add_argument(
        "--policy",
        default="self_repairing",
        choices=all_policy_names(),
    )

    scen = sub.add_parser(
        "scenarios",
        help="list, inspect, or generate DSL workload scenarios",
    )
    scen_sub = scen.add_subparsers(dest="scenarios_command", required=True)
    scen_sub.add_parser(
        "list", help="the curated scenario catalog"
    )
    scen_show = scen_sub.add_parser(
        "show", help="print a scenario's JSON spec"
    )
    scen_show.add_argument(
        "scenario",
        help="a catalog name or a ScenarioSpec JSON file",
    )
    scen_gen = scen_sub.add_parser(
        "generate",
        help=(
            "deterministically generate random-but-valid scenario "
            "specs from a seed (the fuzzer's generator)"
        ),
    )
    scen_gen.add_argument("--seed", type=int, default=1)
    scen_gen.add_argument(
        "--count", type=int, default=1, metavar="N",
        help="generate N specs (seeds seed, seed+1, ...)",
    )
    scen_gen.add_argument(
        "--out-dir",
        metavar="DIR",
        default=None,
        help=(
            "write each spec to DIR/<name>.json instead of stdout "
            "(runnable via 'run --scenario DIR/<name>.json')"
        ),
    )

    compare = sub.add_parser(
        "compare", help="run two policies side by side"
    )
    compare.add_argument("workload", choices=BENCHMARK_NAMES)
    compare.add_argument(
        "--baseline", default="hw_only", choices=all_policy_names()
    )
    compare.add_argument(
        "--candidate", default="self_repairing", choices=all_policy_names()
    )
    compare.add_argument("--instructions", type=int, default=100_000)
    compare.add_argument("--warmup", type=int, default=200_000)

    claims = sub.add_parser(
        "claims", help="grade the paper's claims against this build"
    )
    claims.add_argument("--workloads", default=None)
    claims.add_argument("--instructions", type=int, default=None)
    claims.add_argument("--warmup", type=int, default=None)
    _add_engine_args(claims)

    fleet = sub.add_parser(
        "fleet",
        help="watch or inspect a fleet sweep's live telemetry",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    status = fleet_sub.add_parser(
        "status",
        help=(
            "tail a sweep's telemetry feed (written next to its "
            "journal): worker occupancy, queue depth, cache hit rate, "
            "throughput, freshest IPC samples"
        ),
    )
    status.add_argument(
        "--journal-dir",
        metavar="DIR",
        required=True,
        help="the sweep's --journal-dir (telemetry feed lives beside it)",
    )
    status.add_argument(
        "--watch",
        type=float,
        metavar="SECONDS",
        default=None,
        help="re-render every SECONDS until interrupted",
    )

    resume = sub.add_parser(
        "resume-sweep",
        help=(
            "pick an interrupted sweep back up from its job journal: "
            "finished jobs replay from the result cache, unfinished "
            "ones re-run"
        ),
    )
    _add_engine_args(resume)

    cache = sub.add_parser(
        "cache",
        help="inspect or prune the result/checkpoint cache",
    )
    cache.add_argument(
        "--dir",
        metavar="DIR",
        default=None,
        help="cache root (default: REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser(
        "stats",
        help="entry counts and byte totals per cache section",
    )
    cache_prune = cache_sub.add_parser(
        "prune",
        help="delete oldest entries until the cache fits a byte budget",
    )
    cache_prune.add_argument(
        "--max-bytes",
        type=int,
        required=True,
        metavar="BYTES",
        help="target total size; oldest result/checkpoint files go first",
    )
    return parser


def _cmd_list() -> int:
    for name in BENCHMARK_NAMES:
        workload = load_workload(name)
        print(f"{name:10s} [{workload.kind:9s}] {workload.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    given = sum(
        1 for source in (args.workload, args.scenario, args.trace) if source
    )
    if given != 1:
        print(
            "error: give exactly one workload source — a positional "
            "name/reference, --scenario, or --trace",
            file=sys.stderr,
        )
        return 2
    ref = args.workload
    if args.scenario:
        ref = f"scenario:{args.scenario}"
    elif args.trace:
        ref = f"trace:{args.trace}"
    fault_plan = None
    if args.inject:
        fault_plan = FaultPlan.load(args.inject)
    if args.resume_from:
        incompatible = (
            args.inject
            or args.trace_out
            or args.metrics_out
            or args.sample_interval
        )
        if incompatible:
            print(
                "error: --resume-from restores a complete captured run "
                "and cannot be combined with --inject/--trace-out/"
                "--metrics-out/--sample-interval",
                file=sys.stderr,
            )
            return 2
        from .checkpoint import Snapshot, restore

        try:
            with open(args.resume_from, "rb") as fh:
                snapshot = Snapshot.from_bytes(fh.read())
        except OSError as exc:
            print(f"error: cannot read snapshot: {exc}", file=sys.stderr)
            return 2
        sim = restore(snapshot)
        expected = ref
        if ":" in ref:
            from .scenarios import resolve_job_source

            expected = resolve_job_source(ref)[0]
        if sim.workload.name != expected:
            print(
                f"error: snapshot holds workload "
                f"{sim.workload.name!r}, not {expected!r}",
                file=sys.stderr,
            )
            return 2
        print(
            f"resumed from {args.resume_from} at "
            f"{snapshot.committed} committed instructions",
            file=sys.stderr,
        )
        result = sim.resume(args.instructions)
    elif args.trace_out or args.metrics_out or args.sample_interval:
        # Trace/metrics export needs the live observer object, which a
        # cached replay or pool worker cannot provide: run in-process,
        # bypassing the engine (identical results either way).
        workload_arg = ref
        if ":" in ref:
            # External sources become Workload objects here: the
            # in-process export path bypasses the engine, so the job
            # fields never exist to be materialized downstream.
            from .scenarios import materialize_workload, resolve_job_source

            name, scenario, trace = resolve_job_source(ref)
            workload_arg = materialize_workload(scenario, trace, args.seed)
        observer = Observer(sample_interval=args.sample_interval)
        result = run_simulation(
            workload_arg,
            policy=args.policy,
            max_instructions=args.instructions,
            warmup_instructions=args.warmup,
            seed=args.seed,
            fault_plan=fault_plan,
            max_cycles=args.max_cycles,
            wall_time_limit=args.wall_time_limit,
            observer=observer,
            fast=args.fast,
        )
        _export_observer(observer, args, workload=result.workload)
    else:
        engine = _engine_from_args(args)
        job = make_job(
            ref,
            policy=args.policy,
            max_instructions=args.instructions,
            warmup_instructions=args.warmup,
            seed=args.seed,
            fault_plan=fault_plan,
            max_cycles=args.max_cycles,
            wall_time_limit=args.wall_time_limit,
            fast=args.fast,
            checkpoint_every=args.checkpoint_every,
        )
        outcome = engine.run([job], isolate=False)[0]
        result = outcome.result
        if outcome.cached:
            print(
                "result replayed from cache (--refresh to re-simulate)",
                file=sys.stderr,
            )
        elif outcome.resumed_from is not None:
            print(
                f"resumed from a checkpoint at {outcome.resumed_from} "
                "committed instructions",
                file=sys.stderr,
            )
    if args.json:
        import json

        print(json.dumps(result.to_dict(), indent=2))
        return 0
    summary = {
        "workload": result.workload,
        "policy": result.policy.value,
        "instructions": result.instructions,
        "cycles": int(result.cycles),
        "IPC": round(result.ipc, 4),
        "traces linked": result.traces_linked,
        "prefetches (stride)": result.prefetches_inserted,
        "prefetches (pointer)": result.pointer_prefetches_inserted,
        "distance repairs": result.repairs_applied,
        "helper active": f"{result.helper_active_fraction:.1%}",
    }
    if fault_plan is not None:
        summary["faults applied"] = result.faults_applied
    print(render_mapping("simulation result", summary))
    if result.fault_log:
        print()
        print("fault log")
        print("=========")
        for entry in result.fault_log:
            status = " (skipped)" if entry.get("skipped") else ""
            label = f" [{entry['label']}]" if entry.get("label") else ""
            detail = entry.get("detail", "")
            print(
                f"cycle {entry['cycle']:>10d}  inst {entry['instruction']:>9d}"
                f"  {entry['kind']}{label}{status}  {detail}"
            )
    print()
    print(render_mapping(
        "load outcomes",
        {k: f"{v:.2%}" for k, v in result.breakdown().items()},
    ))
    return 0


def _export_observer(
    observer: Observer, args: argparse.Namespace, workload: str
) -> None:
    """Write the run subcommand's --trace-out / --metrics-out files."""
    if args.trace_out:
        if args.trace_out.endswith(".jsonl"):
            count = write_jsonl(observer.events(), args.trace_out)
        else:
            count = write_chrome_trace(
                observer.events(),
                args.trace_out,
                metadata={"workload": workload, "policy": args.policy},
            )
        print(
            f"wrote {count} trace events to {args.trace_out}",
            file=sys.stderr,
        )
    if args.metrics_out:
        write_metrics(observer.snapshot(), args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)


def _cmd_figure(args: argparse.Namespace) -> int:
    workloads = None
    if args.workloads:
        workloads = [w.strip() for w in args.workloads.split(",")]
    kwargs = {"workloads": workloads, "fast": args.fast}
    if args.instructions is not None:
        kwargs["max_instructions"] = args.instructions
    if args.warmup is not None:
        kwargs["warmup"] = args.warmup
    fleet_trace = None
    if args.trace_out is not None:
        if args.figure == "resilience":
            # The resilience figure runs one instrumented simulation
            # in-process and exports its cycle-stamped event stream.
            kwargs["trace_out"] = args.trace_out
        else:
            # Every other figure is a fleet of jobs: export the
            # stitched cross-process span trace instead.
            fleet_trace = args.trace_out
    engine = _engine_from_args(args, want_telemetry=fleet_trace is not None)
    kwargs["engine"] = engine
    result = _FIGURES[args.figure](**kwargs)
    print(result.render())
    if fleet_trace is not None and engine.telemetry is not None:
        count = engine.telemetry.write_trace(
            fleet_trace, metadata={"figure": args.figure}
        )
        if not args.quiet:
            print(
                f"wrote {count} fleet trace events to {fleet_trace}",
                file=sys.stderr,
            )
    _print_fleet_summary(engine, args)
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    import json

    observer = Observer()
    run_simulation(
        args.workload,
        policy=args.policy,
        max_instructions=args.instructions,
        warmup_instructions=args.warmup,
        seed=args.seed,
        observer=observer,
        fast=args.fast,
    )
    timelines = observer.timelines.to_dicts()
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            for record in timelines:
                fh.write(json.dumps(record, sort_keys=True))
                fh.write("\n")
        print(
            f"wrote {len(timelines)} timelines to {args.json_out}",
            file=sys.stderr,
        )
    print(render_timeline(timelines))
    return 0


def _cmd_traces(args: argparse.Namespace) -> int:
    from .config import SimulationConfig
    from .harness.runner import Simulation
    from .hwprefetch.zoo import resolve_policy
    from .isa.disasm import format_instruction

    policy, hw_prefetcher = resolve_policy(args.policy)
    sim = Simulation(
        args.workload,
        SimulationConfig(
            policy=policy,
            hw_prefetcher=hw_prefetcher,
            max_instructions=args.instructions,
        ),
    )
    sim.run()
    if sim.runtime is None:
        print("policy has no Trident runtime (no traces)")
        return 0
    traces = sim.runtime.code_cache.linked_traces()
    if not traces:
        print("no traces linked")
        return 0
    for trace in sorted(traces, key=lambda t: t.head_pc):
        print(
            f"trace {trace.trace_id} @ pc {trace.head_pc} "
            f"(version {trace.version}, {len(trace.body)} instructions, "
            f"fallthrough {trace.fallthrough_pc})"
        )
        for tinst in trace.body:
            marker = "+" if tinst.synthetic else " "
            expect = ""
            if tinst.expected_taken is not None:
                expect = f"   ; expect {'T' if tinst.expected_taken else 'NT'}"
            print(
                f"  {marker} [{tinst.orig_pc:5d}] "
                f"{format_instruction(tinst.inst)}{expect}"
            )
        records = trace.meta.get("records", {})
        seen = set()
        for record in records.values():
            if id(record) in seen:
                continue
            seen.add(id(record))
            print(
                f"  record loads={record.load_pcs} kind={record.kind} "
                f"stride={record.stride} distance={record.distance}"
                f"{' (mature)' if record.mature else ''}"
            )
        print()
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from .scenarios import CATALOG, generate_scenario, resolve_scenario

    if args.scenarios_command == "list":
        for name, spec in CATALOG.items():
            phases = len(spec.phases)
            prims = sum(len(p.primitives) for p in spec.phases)
            print(
                f"{name:12s} [{phases} phase(s), {prims} primitive(s)] "
                f"{spec.description}"
            )
        print(
            "\nrun one with: repro run --scenario <name> "
            "(or scenario:<name> anywhere a workload is accepted)"
        )
        return 0
    if args.scenarios_command == "show":
        spec = resolve_scenario(args.scenario)
        print(json.dumps(spec.to_dict(), indent=1, sort_keys=True))
        return 0
    # generate
    out_dir = pathlib.Path(args.out_dir) if args.out_dir else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    for offset in range(max(1, args.count)):
        spec = generate_scenario(args.seed + offset)
        if out_dir is None:
            print(json.dumps(spec.to_dict(), indent=1, sort_keys=True))
        else:
            path = out_dir / f"{spec.name}.json"
            spec.save(path)
            print(path)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .harness.charts import bar_chart

    results = {}
    for role, policy in (
        ("baseline", args.baseline),
        ("candidate", args.candidate),
    ):
        results[role] = run_simulation(
            args.workload,
            policy=policy,
            max_instructions=args.instructions,
            warmup_instructions=args.warmup,
        )
    base, cand = results["baseline"], results["candidate"]
    print(
        bar_chart(
            f"{args.workload}: IPC",
            [
                (f"{args.baseline}", base.ipc),
                (f"{args.candidate}", cand.ipc),
            ],
        )
    )
    print()
    speedup = cand.speedup_over(base)
    print(f"speedup: {speedup:.3f}x ({(speedup - 1) * 100:+.1f}%)")
    return 0


def _cmd_claims(args: argparse.Namespace) -> int:
    from .harness.claims import evaluate_claims, render_verdicts

    workloads = None
    if args.workloads:
        workloads = [w.strip() for w in args.workloads.split(",")]
    engine = _engine_from_args(args)
    verdicts = evaluate_claims(
        workloads=workloads,
        max_instructions=args.instructions,
        warmup=args.warmup,
        engine=engine,
        fast=args.fast,
    )
    print(render_verdicts(verdicts))
    _print_fleet_summary(engine, args)
    return 0 if all(v.ok for v in verdicts) else 1


def _cmd_resume_sweep(args: argparse.Namespace) -> int:
    from .harness.engine import SimJob
    from .harness.journal import JobJournal

    if not args.journal_dir:
        print(
            "error: resume-sweep requires --journal-dir (the directory "
            "an interrupted sweep journalled into)",
            file=sys.stderr,
        )
        return 2
    state = JobJournal(args.journal_dir).recover()
    if not state.jobs:
        print(
            f"error: no recoverable journal under {args.journal_dir}",
            file=sys.stderr,
        )
        return 2
    jobs = []
    unreadable = 0
    for record in state.jobs.values():
        if record.job is None:
            unreadable += 1
            continue
        try:
            jobs.append(SimJob.from_dict(record.job))
        except ReproError:
            unreadable += 1
    unfinished = len(state.unfinished())
    print(
        f"journal holds {len(state.jobs)} jobs "
        f"({len(state.jobs) - unfinished} finished, "
        f"{unfinished} unfinished"
        + (
            f", {state.skipped} torn records skipped "
            f"(first at byte {state.first_skipped_offset})"
            if state.skipped
            else ""
        )
        + ")",
        file=sys.stderr,
    )
    if unreadable:
        print(
            f"warning: {unreadable} journalled jobs have no readable "
            "spec and cannot be resumed",
            file=sys.stderr,
        )
    if not jobs:
        print("error: nothing resumable", file=sys.stderr)
        return 2
    engine = _engine_from_args(args)
    outcomes = engine.run(jobs)
    failed = sum(1 for outcome in outcomes if not outcome.ok)
    print(render_mapping(
        "resume-sweep",
        {
            "jobs": len(jobs),
            "replayed from cache": sum(1 for o in outcomes if o.cached),
            "re-simulated": sum(
                1 for o in outcomes if o.ok and not o.cached
            ),
            "failed": failed,
        },
    ))
    _print_fleet_summary(engine, args)
    return 0 if failed == 0 else 1


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    import time as _time

    from .harness.journal import JobJournal
    from .obs.telemetry import (
        SUMMARY_GAUGES,
        format_engine_summary,
        read_snapshot,
    )

    def render_once() -> bool:
        snapshot = read_snapshot(args.journal_dir)
        try:
            state = JobJournal(args.journal_dir).recover()
        except (OSError, ReproError):
            state = None
        if snapshot is None and (state is None or not state.jobs):
            print(
                "error: no telemetry feed or journal under "
                f"{args.journal_dir} (start the sweep with "
                "--journal-dir to produce one)",
                file=sys.stderr,
            )
            return False
        rows: dict = {}
        if snapshot is not None:
            rows["sweep"] = snapshot.get("sweep_id", "?")
            age = max(0.0, _time.time() - snapshot.get("updated_at", 0.0))
            rows["feed age"] = f"{age:.1f}s"
        if state is not None and state.jobs:
            by_state: dict = {}
            for record in state.jobs.values():
                by_state[record.state] = by_state.get(record.state, 0) + 1
            rows["jobs"] = " ".join(
                f"{name}={count}"
                for name, count in sorted(by_state.items())
            )
            terminal = sum(
                by_state.get(s, 0)
                for s in ("done", "failed", "quarantined")
            )
            rows["progress"] = f"{terminal}/{len(state.jobs)} terminal"
            if state.skipped:
                rows["journal"] = (
                    f"{state.skipped} torn record(s) skipped"
                )
        if snapshot is not None:
            gauges = snapshot.get("gauges", {})
            rows["workers"] = (
                f"{int(gauges.get('fleet.workers_busy', 0))} busy / "
                f"{int(gauges.get('fleet.workers_idle', 0))} idle of "
                f"{int(gauges.get('fleet.workers', 0))}"
            )
            rows["queue depth"] = snapshot.get("queue_depth", 0)
            rows["cache hit rate"] = (
                f"{gauges.get('fleet.cache_hit_rate', 0.0):.1%}"
            )
            rows["throughput"] = (
                f"{gauges.get('fleet.sim_cycles_per_s', 0.0):,.0f} "
                "simulated cycles/s"
            )
            values = {
                label: gauges.get(gauge, 0)
                for label, gauge in SUMMARY_GAUGES
            }
            values["spent"] = gauges.get("engine.wall_time_spent_s", 0.0)
            values["saved"] = gauges.get("engine.wall_time_saved_s", 0.0)
            rows["engine"] = format_engine_summary(values)
            samples = snapshot.get("samples_tail") or []
            if samples:
                latest = samples[-1]
                ipc = latest.get("ipc")
                if isinstance(ipc, (int, float)):
                    key = str(latest.get("job_key") or "?")[:12]
                    rows["latest sample"] = f"job {key} IPC={ipc:.3f}"
        print(render_mapping(
            f"fleet status: {args.journal_dir}", rows
        ))
        return True

    if args.watch is None:
        return 0 if render_once() else 2
    try:
        while True:
            if not render_once():
                return 2
            _time.sleep(max(0.1, args.watch))
            print()
    except KeyboardInterrupt:
        return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import pathlib

    from .checkpoint import prune, scan_usage
    from .harness.cache import default_cache_dir

    root = pathlib.Path(args.dir) if args.dir else default_cache_dir()
    if args.cache_command == "prune":
        deleted, freed = prune(root, args.max_bytes)
        print(
            f"pruned {deleted} files ({freed} bytes) from {root}"
        )
    usage = scan_usage(root)
    rows = {
        f"{section} ({counts['entries']} entries)": f"{counts['bytes']} bytes"
        for section, counts in usage.items()
    }
    rows["total"] = (
        f"{sum(c['bytes'] for c in usage.values())} bytes "
        f"({sum(c['entries'] for c in usage.values())} entries)"
    )
    print(render_mapping(f"cache usage: {root}", rows))
    print(
        "hit/miss/resume counters are per-invocation: see the "
        "'engine: run=... cached=... resumed=...' summary each "
        "figure/claims command prints to stderr",
        file=sys.stderr,
    )
    return 0


class _SignalExit(KeyboardInterrupt):
    """KeyboardInterrupt that remembers which signal raised it."""

    def __init__(self, signum: int) -> None:
        super().__init__()
        self.signum = signum


def _install_signal_handlers():
    """Route SIGINT/SIGTERM through one exception; returns a restorer.

    Both signals become a :class:`_SignalExit` so every cleanup path —
    pool/supervisor shutdown, the engine's ``interrupted`` journal
    record, incremental cache commits — runs exactly as it does for a
    plain ctrl-C, and ``main`` can still exit ``128 + signum``.
    """
    previous = {}

    def handler(signum, frame):
        raise _SignalExit(signum)

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, handler)
        except (ValueError, OSError):
            # Not the main thread (embedded use): signals stay as-is.
            pass

    def restore() -> None:
        for sig, old in previous.items():
            try:
                signal.signal(sig, old)
            except (ValueError, OSError):
                pass

    return restore


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    configure_logging(level=args.log_level, quiet=args.quiet)
    restore_signals = _install_signal_handlers()
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "timeline":
            return _cmd_timeline(args)
        if args.command == "traces":
            return _cmd_traces(args)
        if args.command == "scenarios":
            return _cmd_scenarios(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "claims":
            return _cmd_claims(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "fleet":
            return _cmd_fleet_status(args)
        if args.command == "resume-sweep":
            return _cmd_resume_sweep(args)
        return _cmd_figure(args)
    except KeyboardInterrupt as exc:
        # Every finished job is already durable (the engine commits
        # results as they complete and journals the interruption);
        # report that and exit with the conventional signal code.
        signum = getattr(exc, "signum", signal.SIGINT)
        name = signal.Signals(signum).name
        print(
            f"interrupted ({name}); completed jobs are committed — "
            "rerun the same command or 'repro resume-sweep' to continue",
            file=sys.stderr,
        )
        return 128 + signum
    except ReproError as exc:
        # Structured errors are user errors or stalled runs, not bugs:
        # report them cleanly instead of dumping a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout went away (`repro … | head`); exit with the
        # conventional SIGPIPE code, and point stdout at devnull so the
        # interpreter's shutdown flush cannot raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 128 + signal.SIGPIPE
    finally:
        restore_signals()


if __name__ == "__main__":
    sys.exit(main())
