"""Three-level cache hierarchy with in-flight fill tracking.

The hierarchy is the timing oracle of the simulation: for every demand load
it answers "how many cycles until the data is here", and it classifies each
access in the paper's Figure-6 vocabulary (hit / hit-prefetched / partial
hit / miss / miss-due-to-prefetch).

Fills (demand misses, software prefetches, and stream-buffer prefetches)
are all modelled uniformly as *pending fills*: a block plus the cycle its
data arrives.  A demand load that finds its block's fill in flight pays the
remaining latency — that is exactly the paper's *partial prefetch hit*, and
it is what the self-repairing optimizer's distance search reduces.  Fills
serialise on a shared bus (``bus_transfer_cycles`` apart), so prefetching
too aggressively delays demand traffic — one of the two costs (with cache
displacement) that make over-long prefetch distances lose.

The optional ``stream_prefetcher`` (see :mod:`repro.hwprefetch`) is invoked
on every demand load; it may start further fills through
:meth:`MemoryHierarchy.start_fill`.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..config import MachineConfig
from .cache import SetAssociativeCache
from .stats import LoadOutcome, MemoryStats, OutcomeKind, PrefetchSource


class _PendingFill:
    """One in-flight cache-line fill."""

    __slots__ = ("block", "ready", "prefetched", "source", "touched")

    def __init__(
        self,
        block: int,
        ready: int,
        prefetched: bool,
        source: Optional[PrefetchSource],
    ) -> None:
        self.block = block
        self.ready = ready
        self.prefetched = prefetched
        self.source = source
        #: A demand access already consumed the "first touch" while the
        #: fill was in flight (so the installed line is no longer counted
        #: as an untouched prefetch).
        self.touched = False


class MemoryHierarchy:
    """L1/L2/L3 + DRAM with pending-fill timing and Figure-6 accounting."""

    def __init__(
        self,
        config: MachineConfig,
        stream_prefetcher: Optional[object] = None,
    ) -> None:
        self.config = config
        self.l1 = SetAssociativeCache(config.l1, "l1")
        self.l2 = SetAssociativeCache(config.l2, "l2")
        self.l3 = SetAssociativeCache(config.l3, "l3")
        self.stats = MemoryStats()
        #: Injected by the simulation when the policy enables hardware
        #: prefetching; duck-typed (see repro.hwprefetch.stream_buffer).
        self.stream_prefetcher = stream_prefetcher

        self._pending: Dict[int, _PendingFill] = {}
        self._pending_heap: List[Tuple[int, int]] = []
        self._bus_free = 0

        # Block arithmetic, precomputed from the L1 geometry so the hot
        # paths don't bounce through two method calls per access.
        line = config.l1.line_size
        self._line_size = line
        self._pow2 = line > 0 and (line & (line - 1)) == 0
        self._block_mask = ~(line - 1)

        # L1-hit outcomes are value objects with a handful of distinct
        # values; interning them saves a frozen-dataclass construction
        # (four object.__setattr__ calls) on the most common load path.
        l1_latency = config.l1.latency
        self._outcome_hit = LoadOutcome(OutcomeKind.HIT, l1_latency, "l1")
        self._outcome_hit_pf = {
            src: LoadOutcome(OutcomeKind.HIT_PREFETCHED, l1_latency, "l1", src)
            for src in PrefetchSource
        }
        self._outcome_hit_pf[None] = LoadOutcome(
            OutcomeKind.HIT_PREFETCHED, l1_latency, "l1"
        )

        # Observability hook (repro.obs): None costs one attribute check
        # on the hot paths; attach_observer wires the emit sites.
        self.obs = None
        self._m_load_latency = None
        self._m_fills = None

        # Fault-injection hooks (see repro.faults.injector): extra cycles
        # charged to every DRAM-sourced fill, and a multiplier on fill-bus
        # occupancy.  Both are neutral by default and only ever set by a
        # FaultInjector.
        self.dram_latency_extra = 0
        self.bus_occupancy_scale = 1.0
        self.lines_flushed = 0

    # ------------------------------------------------------------------
    # Observability.
    # ------------------------------------------------------------------
    def attach_observer(self, obs) -> None:
        """Wire the emit hooks; instruments are cached so the enabled
        hot path pays one dict-free method call per event."""
        from ..obs.metrics import LOAD_LATENCY_BUCKETS

        self.obs = obs
        self._m_load_latency = obs.metrics.histogram(
            "memory.load_latency", LOAD_LATENCY_BUCKETS
        )
        self._m_fills = obs.metrics.counter("memory.fills_started")

    # ------------------------------------------------------------------
    # Fill plumbing.
    # ------------------------------------------------------------------
    def block_of(self, addr: int) -> int:
        if self._pow2:
            return addr & self._block_mask
        return addr - (addr % self._line_size)

    def _fill_source_latency(self, addr: int) -> int:
        """Latency for a fill of ``addr``: where does the data come from?

        Touch-free probes: the LRU update happens when the fill installs.
        """
        if self.l2.contains(addr):
            return self.config.l2.latency
        if self.l3.contains(addr):
            return self.config.l3.latency
        return self.config.memory_latency + self.dram_latency_extra

    def start_fill(
        self,
        addr: int,
        cycle: int,
        prefetched: bool,
        source: Optional[PrefetchSource] = None,
    ) -> _PendingFill:
        """Begin fetching the block containing ``addr``.

        Returns the (possibly pre-existing) pending fill.  A second request
        for an in-flight block merges into the first (MSHR behaviour); a
        demand request upgrades a prefetch fill's priority only in the
        sense that classification later sees ``prefetched`` of the original
        fill, which is what the paper's partial-hit accounting wants.
        """
        block = self.block_of(addr)
        existing = self._pending.get(block)
        if existing is not None:
            return existing
        latency = self._fill_source_latency(addr)
        # Only fills sourced from DRAM occupy the shared memory bus
        # (Table 1's bus occupancy); on-chip L2/L3 transfers do not.
        if latency >= self.config.memory_latency:
            issue = max(cycle, self._bus_free)
            occupancy = self.config.bus_transfer_cycles
            if self.bus_occupancy_scale != 1.0:
                occupancy = max(1, round(occupancy * self.bus_occupancy_scale))
            self._bus_free = issue + occupancy
        else:
            issue = cycle
        fill = _PendingFill(block, issue + latency, prefetched, source)
        self._pending[block] = fill
        heapq.heappush(self._pending_heap, (fill.ready, block))
        obs = self.obs
        if obs is not None:
            self._m_fills.inc()
            if latency >= self.config.memory_latency:
                level = "mem"
            elif latency == self.config.l3.latency:
                level = "l3"
            else:
                level = "l2"
            obs.emit(
                "fill",
                cycle,
                block=block,
                level=level,
                ready=fill.ready,
                prefetched=prefetched,
                source=source.value if source is not None else None,
            )
        return fill

    def drain(self, cycle: int) -> None:
        """Install every fill whose data has arrived by ``cycle``."""
        heap = self._pending_heap
        while heap and heap[0][0] <= cycle:
            ready, block = heapq.heappop(heap)
            fill = self._pending.get(block)
            if fill is None or fill.ready != ready:
                continue  # stale heap entry
            del self._pending[block]
            self._install(fill)

    def _install(self, fill: _PendingFill) -> None:
        """Install a completed fill into all levels (inclusive)."""
        self.l3.install(fill.block)
        self.l2.install(fill.block)
        untouched_prefetch = fill.prefetched and not fill.touched
        self.l1.install(
            fill.block,
            prefetched=untouched_prefetch,
            source=fill.source if untouched_prefetch else None,
        )

    def flush_pending(self) -> None:
        """Complete every outstanding fill (end-of-simulation cleanup)."""
        for fill in list(self._pending.values()):
            self._install(fill)
        self._pending.clear()
        self._pending_heap.clear()

    @property
    def outstanding_fills(self) -> int:
        return len(self._pending)

    def flush_caches(self, levels: Tuple[str, ...] = ("l1", "l2", "l3")) -> int:
        """Invalidate every line in the named levels (fault injection's
        context-switch model); returns the number of lines dropped.

        In-flight fills are untouched — they were requested before the
        switch and still install when their data arrives.
        """
        flushed = 0
        for name in levels:
            if name not in ("l1", "l2", "l3"):
                raise ValueError(f"unknown cache level {name!r}")
            flushed += getattr(self, name).flush()
        self.lines_flushed += flushed
        return flushed

    # ------------------------------------------------------------------
    # Demand accesses.
    # ------------------------------------------------------------------
    def load(self, pc: int, addr: int, cycle: int) -> LoadOutcome:
        """Perform a demand load; classify it and return its timing."""
        heap = self._pending_heap
        if heap and heap[0][0] <= cycle:
            self.drain(cycle)
        outcome = self._classify_load(addr, cycle)
        self.stats.record(outcome)
        if self.obs is not None:
            self._m_load_latency.observe(outcome.latency)
        prefetcher = self.stream_prefetcher
        if prefetcher is not None:
            kind = outcome.kind
            prefetcher.on_demand_load(
                pc,
                addr,
                kind is OutcomeKind.HIT or kind is OutcomeKind.HIT_PREFETCHED,
                cycle,
            )
        return outcome

    def _classify_load(self, addr: int, cycle: int) -> LoadOutcome:
        l1_latency = self.config.l1.latency
        line = self.l1.lookup(addr)
        if line is not None:
            if line.prefetched:
                source = line.prefetch_source
                line.prefetched = False
                line.prefetch_source = None
                return self._outcome_hit_pf[source]
            return self._outcome_hit

        block = self.block_of(addr)
        fill = self._pending.get(block)
        if fill is not None:
            remaining = max(l1_latency, fill.ready - cycle)
            if fill.prefetched and not fill.touched:
                fill.touched = True
                if remaining <= l1_latency:
                    # The prefetch fully covered the latency: the data is
                    # effectively here — a prefetched hit, not a partial.
                    return self._outcome_hit_pf[fill.source]
                return LoadOutcome(
                    OutcomeKind.PARTIAL_HIT, remaining, "inflight",
                    fill.source,
                )
            # Merge with an earlier access to the same in-flight line
            # (MSHR behaviour).  A near-complete fill is an effective hit.
            if remaining <= l1_latency:
                return self._outcome_hit
            return LoadOutcome(OutcomeKind.MISS, remaining, "inflight")

        # Full miss: find the supplying level and start the fill.
        if self.l2.lookup(addr) is not None:
            level, latency = "l2", self.config.l2.latency
        elif self.l3.lookup(addr) is not None:
            level, latency = "l3", self.config.l3.latency
        else:
            level, latency = "mem", self.config.memory_latency
        fill = self.start_fill(addr, cycle, prefetched=False)
        latency = max(latency, fill.ready - cycle)
        if self.l1.consume_displaced_tag(addr):
            return LoadOutcome(
                OutcomeKind.MISS_DUE_TO_PREFETCH, latency, level
            )
        return LoadOutcome(OutcomeKind.MISS, latency, level)

    def load_synthetic(self, addr: int, cycle: int) -> LoadOutcome:
        """A load inserted by the optimizer (the non-faulting dereference
        of section 3.4.3).

        It has real timing and moves real lines, but it is not a program
        load: it is excluded from Figure-6 statistics and does not train
        the hardware prefetcher.
        """
        heap = self._pending_heap
        if heap and heap[0][0] <= cycle:
            self.drain(cycle)
        return self._classify_load(addr, cycle)

    def store(self, addr: int, cycle: int) -> None:
        """Perform a demand store.

        Stores retire through a store buffer and never stall the model; a
        store miss allocates the line (write-allocate) without timing.
        """
        heap = self._pending_heap
        if heap and heap[0][0] <= cycle:
            self.drain(cycle)
        self.stats.stores += 1
        if self.l1.lookup(addr) is None and self.block_of(addr) not in self._pending:
            self.l3.install(addr)
            self.l2.install(addr)
            self.l1.install(addr)

    # ------------------------------------------------------------------
    # Prefetch entry points.
    # ------------------------------------------------------------------
    def software_prefetch(self, addr: int, cycle: int) -> bool:
        """Issue a software prefetch; True when a new fill was started."""
        heap = self._pending_heap
        if heap and heap[0][0] <= cycle:
            self.drain(cycle)
        self.stats.software_prefetches_issued += 1
        if self.l1.contains(addr) or self.block_of(addr) in self._pending:
            self.stats.software_prefetches_useless += 1
            return False
        self.start_fill(
            addr, cycle, prefetched=True, source=PrefetchSource.SOFTWARE
        )
        return True

    def hardware_prefetch(self, addr: int, cycle: int) -> bool:
        """Issue a stream-buffer prefetch; True when a fill was started."""
        return self.hardware_prefetch_block(addr, self.block_of(addr), cycle)

    def hardware_prefetch_block(
        self, addr: int, block: int, cycle: int
    ) -> bool:
        """`hardware_prefetch` for a caller that already aligned ``addr``
        to ``block`` with this hierarchy's geometry (the stream buffers
        walk block-aligned candidates, so the skip-search probes here
        without redoing the alignment arithmetic per probe)."""
        if block in self._pending or self.l1.contains_block(block):
            return False
        self.stats.hardware_prefetches_issued += 1
        self.start_fill(
            addr, cycle, prefetched=True, source=PrefetchSource.STREAM_BUFFER
        )
        return True
