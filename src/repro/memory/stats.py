"""Load-outcome accounting for Figure 6 and general memory statistics.

The paper's Figure 6 breaks all dynamic loads into:

* plain hits ("Hits-none"),
* first touches of prefetched lines ("Hit-prefetched"),
* partial prefetch hits (the fill was still in flight),
* misses,
* misses caused by prefetch displacement ("Miss due to prefetching").

:class:`LoadOutcome` is the per-access classification the hierarchy
returns; :class:`MemoryStats` aggregates them, separately for software-
and hardware-initiated prefetches so the harness can report either view.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class PrefetchSource(enum.Enum):
    """Who initiated a prefetch fill."""

    SOFTWARE = "software"
    STREAM_BUFFER = "stream_buffer"


class OutcomeKind(enum.Enum):
    """Figure-6 classification of one demand load."""

    HIT = "hit"
    HIT_PREFETCHED = "hit_prefetched"
    PARTIAL_HIT = "partial_hit"
    MISS = "miss"
    MISS_DUE_TO_PREFETCH = "miss_due_to_prefetch"


@dataclass(frozen=True)
class LoadOutcome:
    """What happened to one demand load.

    ``latency`` is the full cycles-until-data (the L1 hit latency for
    hits); ``level`` names where data was found (``"l1"``, ``"l2"``,
    ``"l3"``, ``"mem"``, ``"stream"``, ``"inflight"``).  ``miss_latency``
    is what the DLT should accumulate: 0 for an L1 hit, otherwise the
    observed latency (this is the "miss latency" of section 3.3).
    """

    kind: OutcomeKind
    latency: int
    level: str
    prefetch_source: "PrefetchSource | None" = None

    @property
    def is_miss(self) -> bool:
        """True when the access did not hit in the L1 (DLT's notion):
        every kind except the two L1-hit classifications."""
        kind = self.kind
        return (
            kind is not OutcomeKind.HIT
            and kind is not OutcomeKind.HIT_PREFETCHED
        )

    @property
    def miss_latency(self) -> int:
        return self.latency if self.is_miss else 0


@dataclass
class MemoryStats:
    """Aggregated load outcomes plus prefetch-traffic counters."""

    outcomes: Dict[OutcomeKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in OutcomeKind}
    )
    level_hits: Dict[str, int] = field(default_factory=dict)
    #: HIT_PREFETCHED / PARTIAL_HIT split by who prefetched.
    prefetched_hits_by_source: Dict[PrefetchSource, int] = field(
        default_factory=lambda: {src: 0 for src in PrefetchSource}
    )
    software_prefetches_issued: int = 0
    software_prefetches_useless: int = 0  # line already present/in flight
    hardware_prefetches_issued: int = 0
    stores: int = 0
    #: Sum of every demand load's cycles-until-data (windowed average
    #: access latency for the interval sampler).
    total_load_latency: int = 0

    def record(self, outcome: LoadOutcome) -> None:
        self.outcomes[outcome.kind] += 1
        self.total_load_latency += outcome.latency
        self.level_hits[outcome.level] = (
            self.level_hits.get(outcome.level, 0) + 1
        )
        if outcome.prefetch_source is not None and outcome.kind in (
            OutcomeKind.HIT_PREFETCHED,
            OutcomeKind.PARTIAL_HIT,
        ):
            self.prefetched_hits_by_source[outcome.prefetch_source] += 1

    @property
    def total_loads(self) -> int:
        return sum(self.outcomes.values())

    @property
    def total_misses(self) -> int:
        return (
            self.outcomes[OutcomeKind.MISS]
            + self.outcomes[OutcomeKind.MISS_DUE_TO_PREFETCH]
        )

    def reset_measurement(self) -> None:
        """Zero every counter in place at the end of warmup.

        Part of the measurement-reset protocol all stat holders
        implement (see :meth:`repro.harness.runner.Simulation.run`):
        resetting mutates the existing object so components holding a
        reference (the hierarchy, an attached observer) keep seeing the
        live stats.
        """
        for kind in self.outcomes:
            self.outcomes[kind] = 0
        self.level_hits.clear()
        for source in self.prefetched_hits_by_source:
            self.prefetched_hits_by_source[source] = 0
        self.software_prefetches_issued = 0
        self.software_prefetches_useless = 0
        self.hardware_prefetches_issued = 0
        self.stores = 0
        self.total_load_latency = 0

    def fraction(self, kind: OutcomeKind) -> float:
        """Fraction of all loads with this outcome (0 when no loads ran)."""
        total = self.total_loads
        return self.outcomes[kind] / total if total else 0.0

    def breakdown(self) -> Dict[str, float]:
        """Figure-6 style breakdown as fractions of all dynamic loads."""
        return {kind.value: self.fraction(kind) for kind in OutcomeKind}
