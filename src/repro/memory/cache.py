"""Set-associative cache with LRU replacement and prefetch metadata.

Two pieces of metadata exist purely for the paper's Figure 6 accounting:

* each line remembers whether it was installed by a prefetch and has not
  yet been demand-referenced (``prefetched`` + ``prefetch_source``), so the
  first demand touch can be classified *Hit-prefetched*;
* when a prefetch install evicts a line, the victim's block address is
  logged, so a later miss on that block can be classified *Miss due to
  prefetching*.
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from ..config import CacheConfig
from .stats import PrefetchSource


@dataclass
class CacheLine:
    """Per-line metadata (the data itself lives in DataMemory)."""

    block: int
    prefetched: bool = False
    prefetch_source: Optional[PrefetchSource] = None


#: Per-line metadata byte for the packed pickle form (__getstate__):
#: bit 2 = prefetched, bits 0-1 = prefetch source.
_SOURCE_CODE = {None: 0, PrefetchSource.SOFTWARE: 1,
                PrefetchSource.STREAM_BUFFER: 2}
_SOURCE_DECODE = {code: source for source, code in _SOURCE_CODE.items()}


class SetAssociativeCache:
    """One cache level.  Addresses are byte addresses; state is per-block."""

    #: How many prefetch-displaced victim tags to remember.
    DISPLACED_LOG_LIMIT = 4096

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.line_size = config.line_size
        # Power-of-two geometry (the common case) lets the hot paths use
        # mask/shift arithmetic — identical values to the %-based math
        # for every int, including negatives (Python's // and % floor,
        # and so do >> and &-with-mask on two's-complement bigints).
        line = self.line_size
        nsets = self.num_sets
        self._pow2 = (
            line > 0 and (line & (line - 1)) == 0
            and nsets > 0 and (nsets & (nsets - 1)) == 0
        )
        self._block_mask = ~(line - 1)
        self._line_shift = line.bit_length() - 1
        self._set_mask = nsets - 1
        # set index -> OrderedDict[block -> CacheLine]; last item is MRU.
        self._sets: Dict[int, OrderedDict] = {}
        #: Block addresses evicted by a prefetch install, awaiting a
        #: possible re-miss (bounded FIFO via OrderedDict).
        self._displaced_by_prefetch: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Pickle support.  A populated cache holds tens of thousands of
    # CacheLine objects; serialised generically they dominate snapshot
    # capture time.  The packed form stores each set as (index, block
    # array, metadata bytes) — value-deterministic, LRU order preserved
    # by column position.  Empty buckets are dropped and sets are sorted
    # by index: both are behaviourally invisible (``_set_for`` recreates
    # buckets on demand, nothing iterates ``_sets`` in an order-sensitive
    # way) and make the bytes canonical across different histories.
    # ------------------------------------------------------------------
    def __getstate__(self):
        state = dict(self.__dict__)
        packed = []
        for index in sorted(self._sets):
            bucket = self._sets[index]
            if not bucket:
                continue
            blocks = array("q", bucket.keys()).tobytes()
            metas = bytes(
                (line.prefetched << 2) | _SOURCE_CODE[line.prefetch_source]
                for line in bucket.values()
            )
            packed.append((index, blocks, metas))
        state["_sets"] = packed
        state["_displaced_by_prefetch"] = array(
            "q", self._displaced_by_prefetch.keys()
        ).tobytes()
        return state

    def __setstate__(self, state):
        # Replace the packed entries in place (not pop-and-reassign):
        # the instance-dict key order is part of the canonical snapshot
        # bytes and must survive a restore round trip unchanged.
        sets: Dict[int, OrderedDict] = {}
        for index, blocks, metas in state["_sets"]:
            bucket = OrderedDict()
            for block, meta in zip(array("q", blocks), metas):
                bucket[block] = CacheLine(
                    block=block,
                    prefetched=bool(meta & 4),
                    prefetch_source=_SOURCE_DECODE[meta & 3],
                )
            sets[index] = bucket
        state["_sets"] = sets
        state["_displaced_by_prefetch"] = OrderedDict(
            (block, True)
            for block in array("q", state["_displaced_by_prefetch"])
        )
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    def block_of(self, addr: int) -> int:
        if self._pow2:
            return addr & self._block_mask
        return addr - (addr % self.line_size)

    def _set_index(self, block: int) -> int:
        if self._pow2:
            return (block >> self._line_shift) & self._set_mask
        return (block // self.line_size) % self.num_sets

    def _set_for(self, block: int) -> OrderedDict:
        index = self._set_index(block)
        bucket = self._sets.get(index)
        if bucket is None:
            bucket = OrderedDict()
            self._sets[index] = bucket
        return bucket

    # ------------------------------------------------------------------
    def lookup(self, addr: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the line holding ``addr``, updating LRU and hit counters.

        With ``touch=False`` the lookup is a pure probe: no LRU update, no
        counter change (used by the hierarchy when classifying).
        """
        if self._pow2:
            block = addr & self._block_mask
            index = (block >> self._line_shift) & self._set_mask
        else:
            block = addr - (addr % self.line_size)
            index = (block // self.line_size) % self.num_sets
        bucket = self._sets.get(index)
        line = bucket.get(block) if bucket is not None else None
        if line is None:
            if touch:
                self.misses += 1
            return None
        if touch:
            self.hits += 1
            bucket.move_to_end(block)
        return line

    def contains(self, addr: int) -> bool:
        """Pure membership probe, no side effects."""
        if self._pow2:
            block = addr & self._block_mask
            index = (block >> self._line_shift) & self._set_mask
        else:
            block = addr - (addr % self.line_size)
            index = (block // self.line_size) % self.num_sets
        bucket = self._sets.get(index)
        return bucket is not None and block in bucket

    def contains_block(self, block: int) -> bool:
        """`contains` for an already line-aligned block address (skips
        the alignment step for callers that precomputed it)."""
        if self._pow2:
            index = (block >> self._line_shift) & self._set_mask
        else:
            index = (block // self.line_size) % self.num_sets
        bucket = self._sets.get(index)
        return bucket is not None and block in bucket

    def install(
        self,
        addr: int,
        prefetched: bool = False,
        source: Optional[PrefetchSource] = None,
    ) -> Optional[int]:
        """Bring the block containing ``addr`` in; return any victim block.

        When the block is already present, its prefetch metadata is left
        alone (a prefetch of a resident line is useless and changes
        nothing).
        """
        block = self.block_of(addr)
        bucket = self._set_for(block)
        if block in bucket:
            bucket.move_to_end(block)
            return None
        victim_block = None
        if len(bucket) >= self.config.associativity:
            victim_block, _victim_line = bucket.popitem(last=False)
            self.evictions += 1
            if prefetched:
                self._log_displacement(victim_block)
        bucket[block] = CacheLine(
            block=block, prefetched=prefetched, prefetch_source=source
        )
        return victim_block

    def flush(self) -> int:
        """Drop every resident line (context-switch / fault injection);
        returns how many lines were dropped.  Statistics survive; the
        prefetch-displacement log does not (its tags are meaningless once
        the whole cache has turned over)."""
        dropped = self.resident_blocks
        self._sets.clear()
        self._displaced_by_prefetch.clear()
        return dropped

    def invalidate(self, addr: int) -> bool:
        """Drop the block containing ``addr``; True if it was present."""
        block = self.block_of(addr)
        bucket = self._set_for(block)
        return bucket.pop(block, None) is not None

    # ------------------------------------------------------------------
    # Figure-6 displacement bookkeeping.
    # ------------------------------------------------------------------
    def _log_displacement(self, block: int) -> None:
        log = self._displaced_by_prefetch
        log[block] = True
        log.move_to_end(block)
        while len(log) > self.DISPLACED_LOG_LIMIT:
            log.popitem(last=False)

    def consume_displaced_tag(self, addr: int) -> bool:
        """True when a miss on ``addr`` matches a prefetch-displaced tag.

        The tag is consumed: each displacement explains at most one miss,
        matching the paper's "record the tag so that we can identify a
        *Miss due to prefetching* if a subsequent miss matches".
        """
        return (
            self._displaced_by_prefetch.pop(self.block_of(addr), None)
            is not None
        )

    # ------------------------------------------------------------------
    @property
    def resident_blocks(self) -> int:
        return sum(len(bucket) for bucket in self._sets.values())

    def clear_statistics(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
