"""Simulated data memory and a heap allocator for workload data.

Data memory is a sparse, word-granular store: addresses are byte addresses,
values live at 8-byte-aligned words.  Workloads populate it through
:class:`HeapAllocator` before simulation starts, which mimics how a real
allocator lays objects out — sequential bump allocation produces the
"pointer loads that turn out to have stride access patterns" the paper's
DLT exploits (section 3.3), while scrambled allocation produces genuinely
irregular pointer chains.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Union

Number = Union[int, float]

#: Where the simulated heap begins.  Anything below is unmapped.
HEAP_BASE = 0x1_0000

WORD_SIZE = 8


class DataMemory:
    """Sparse word-addressed data memory.

    Reads of unmapped addresses return 0 (the behaviour the non-faulting
    load relies on); plain loads to unmapped addresses also read 0 but the
    event is counted so tests can assert a workload never does it by
    accident.
    """

    def __init__(self) -> None:
        self._words: Dict[int, Number] = {}
        self.unmapped_reads = 0

    @staticmethod
    def _align(addr: int) -> int:
        return addr & ~(WORD_SIZE - 1)

    def read(self, addr: int) -> Number:
        """Read the word containing byte address ``addr``."""
        word = self._words.get(self._align(addr))
        if word is None:
            self.unmapped_reads += 1
            return 0
        return word

    def read_quiet(self, addr: int) -> Number:
        """Read without counting unmapped accesses (non-faulting load)."""
        return self._words.get(self._align(addr), 0)

    def write(self, addr: int, value: Number) -> None:
        """Write the word containing byte address ``addr``."""
        self._words[self._align(addr)] = value

    def is_mapped(self, addr: int) -> bool:
        return self._align(addr) in self._words

    def __len__(self) -> int:
        return len(self._words)

    def write_array(self, base: int, values: Iterable[Number]) -> None:
        """Write consecutive words starting at ``base``."""
        addr = self._align(base)
        for value in values:
            self._words[addr] = value
            addr += WORD_SIZE


class HeapAllocator:
    """Bump allocator over a :class:`DataMemory`.

    ``sequential`` allocation returns monotonically increasing addresses
    (real-allocator behaviour for a burst of same-sized allocations), so a
    linked list built with it has a *constant pointer stride* — exactly the
    property that lets the paper's DLT stride-predict pointer loads.
    ``scramble_chunks`` can then be used to destroy that property for
    workloads that need irregular chains.
    """

    #: Stagger period: large allocations are offset by multiples of 101
    #: cache lines so co-advancing arrays never share L1/L2 set phase.
    STAGGER_STEP = 101 * 64
    STAGGER_PERIOD = 32 * 1024

    def __init__(
        self, memory: DataMemory, base: int = HEAP_BASE,
        stagger: bool = True,
    ) -> None:
        self.memory = memory
        self._next = base
        #: Real allocators do not hand out set-aligned bases for every
        #: large request; without this, co-advancing arrays in the
        #: workloads would thrash the same L1 sets in lock-step.
        self.stagger = stagger
        self._large_allocs = 0

    @property
    def brk(self) -> int:
        """One past the highest address handed out so far."""
        return self._next

    def alloc(self, nbytes: int, align: int = WORD_SIZE) -> int:
        """Reserve ``nbytes`` and return the base address.

        The memory is zero-filled lazily (sparse store); callers write what
        they need.
        """
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        if align & (align - 1):
            raise ValueError("alignment must be a power of two")
        if self.stagger and nbytes >= 64 * 1024:
            self._large_allocs += 1
            pad = (
                self._large_allocs * self.STAGGER_STEP
            ) % self.STAGGER_PERIOD
            self._next += pad
        self._next = (self._next + align - 1) & ~(align - 1)
        base = self._next
        self._next += nbytes
        return base

    def alloc_array(
        self, count: int, init: Optional[Iterable[Number]] = None,
        align: int = WORD_SIZE,
    ) -> int:
        """Allocate ``count`` words; optionally initialise them."""
        base = self.alloc(count * WORD_SIZE, align=align)
        if init is not None:
            self.memory.write_array(base, init)
        return base

    def alloc_nodes(
        self,
        count: int,
        node_words: int,
        rng: Optional[random.Random] = None,
        scramble: bool = False,
        pad_words: int = 0,
    ) -> List[int]:
        """Allocate ``count`` objects of ``node_words`` words each.

        Returns the object base addresses in allocation order.  With
        ``scramble`` the *placement* order is permuted, so consecutive
        logical nodes are far apart in memory (irregular pointer chains);
        without it, consecutive nodes sit at a constant stride.
        ``pad_words`` adds dead words between objects to control density.
        """
        stride_words = node_words + pad_words
        block = self.alloc(count * stride_words * WORD_SIZE)
        slots = list(range(count))
        if scramble:
            if rng is None:
                raise ValueError("scramble requires an rng")
            rng.shuffle(slots)
        return [block + slot * stride_words * WORD_SIZE for slot in slots]
