"""Memory-system substrate: data memory, caches, hierarchy, statistics."""

from .cache import CacheLine, SetAssociativeCache
from .hierarchy import MemoryHierarchy
from .mainmem import HEAP_BASE, WORD_SIZE, DataMemory, HeapAllocator
from .stats import (
    LoadOutcome,
    MemoryStats,
    OutcomeKind,
    PrefetchSource,
)

__all__ = [
    "CacheLine",
    "DataMemory",
    "HEAP_BASE",
    "HeapAllocator",
    "LoadOutcome",
    "MemoryHierarchy",
    "MemoryStats",
    "OutcomeKind",
    "PrefetchSource",
    "SetAssociativeCache",
    "WORD_SIZE",
]
