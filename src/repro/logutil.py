"""Structured logging for the simulator (stdlib ``logging``).

Every subsystem logs through a child of the ``repro`` logger —
``repro.harness``, ``repro.trident``, ``repro.faults``, ``repro.obs`` —
so one CLI flag (``--log-level``) or one ``logging.getLogger("repro")``
call controls everything, and library users embedding the simulator can
route or silence it with standard handler configuration.

The loggers carry diagnostics (trace links, fault applications, watchdog
trips); CLI *result* formatting stays on stdout via the report helpers.
By default the ``repro`` tree propagates to the root logger with no
handler of its own, so importing the package never configures logging
behind an embedding application's back.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

_ROOT_NAME = "repro"

#: Accepted ``--log-level`` spellings.
LEVELS = ("debug", "info", "warning", "error", "critical")


def get_logger(subsystem: str) -> logging.Logger:
    """The logger for one subsystem (``get_logger("trident")``)."""
    if subsystem.startswith(_ROOT_NAME):
        return logging.getLogger(subsystem)
    return logging.getLogger(f"{_ROOT_NAME}.{subsystem}")


def configure_logging(
    level: str = "warning",
    quiet: bool = False,
    stream=None,
) -> logging.Logger:
    """Configure the ``repro`` logger tree for CLI use.

    ``quiet`` wins over ``level`` and silences everything below ERROR.
    Replaces any handler a previous call installed (idempotent across
    repeated CLI invocations in one process, e.g. the test suite).
    """
    name = level.lower()
    if name not in LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {', '.join(LEVELS)}"
        )
    numeric = logging.ERROR if quiet else getattr(logging, name.upper())
    root = logging.getLogger(_ROOT_NAME)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    root.addHandler(handler)
    root.setLevel(numeric)
    root.propagate = False
    return root


def reset_logging() -> None:
    """Undo :func:`configure_logging` (tests)."""
    root = logging.getLogger(_ROOT_NAME)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    root.setLevel(logging.NOTSET)
    root.propagate = True


def level_of(logger: Optional[logging.Logger] = None) -> int:
    """Effective level of the repro tree (diagnostics)."""
    return (logger or logging.getLogger(_ROOT_NAME)).getEffectiveLevel()
