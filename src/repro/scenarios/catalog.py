"""Named, curated scenarios shipped with the repo.

Four compositions chosen to stress distinct DLT behaviours beyond the
paper's 14 fixed benchmarks — each is a golden-fixture subject, so their
specs are part of the repo's reproducibility surface: edit one and
``tools/update_golden.py`` must be re-run.
"""

from __future__ import annotations

from typing import Dict, List

from .dsl import Phase, Primitive, ScenarioSpec


def _build_catalog() -> Dict[str, ScenarioSpec]:
    specs: List[ScenarioSpec] = [
        # Phase change between two strides: the DLT's distance tuned for
        # phase A is wrong for phase B — repair has to re-converge each
        # time the working pattern flips.
        ScenarioSpec(
            name="stride-flip",
            repeats=100_000,
            description=(
                "alternating dense/sparse strided phases; stresses "
                "distance re-repair across phase boundaries"
            ),
            phases=[
                Phase(
                    repeats=2,
                    primitives=[
                        Primitive("stride", {
                            "iters": 384, "stride": 1, "loads": 2,
                        }),
                    ],
                ),
                Phase(
                    repeats=2,
                    primitives=[
                        Primitive("stride", {
                            "iters": 384, "stride": 16, "loads": 1,
                        }),
                    ],
                ),
            ],
        ),
        # Irregular hash probing interleaved with a same-object field
        # walk: the hash load never classifies, the field group should.
        ScenarioSpec(
            name="hash-churn",
            repeats=100_000,
            description=(
                "multiplicative hash-walk probes against a same-object "
                "field walk; irregular loads beside same-object locality"
            ),
            phases=[
                Phase(
                    repeats=1,
                    primitives=[
                        Primitive("hash_walk", {
                            "iters": 256, "table_words": 1 << 15,
                        }),
                        Primitive("same_object", {
                            "iters": 256, "nodes": 1024,
                            "node_words": 8, "layout": "scramble",
                        }),
                    ],
                ),
            ],
        ),
        # A footprint ramp feeding a bump-allocated pointer chase: the
        # growing stream evicts the chase's working set at each step.
        ScenarioSpec(
            name="ramp-chase",
            repeats=100_000,
            description=(
                "doubling footprint ramp beside a sequential-layout "
                "pointer chase; cache pressure against a stride-"
                "predictable chase"
            ),
            phases=[
                Phase(
                    repeats=1,
                    primitives=[
                        Primitive("footprint_ramp", {
                            "steps": 4, "start_words": 1024,
                            "stride": 8, "iters": 192,
                        }),
                        Primitive("pointer_chase", {
                            "iters": 256, "nodes": 2048,
                            "node_words": 8, "layout": "seq",
                            "field_loads": 1,
                        }),
                    ],
                ),
            ],
        ),
        # Segmented chase with heavy per-node field traffic: mcf-like
        # stride-with-breaks next to pure same-object access.
        ScenarioSpec(
            name="object-walk",
            repeats=100_000,
            description=(
                "segment-layout pointer chase with per-node field "
                "loads, then a same-object sweep of the same arena "
                "geometry"
            ),
            phases=[
                Phase(
                    repeats=1,
                    primitives=[
                        Primitive("pointer_chase", {
                            "iters": 320, "nodes": 4096,
                            "node_words": 8, "layout": "segment",
                            "field_loads": 2,
                        }),
                    ],
                ),
                Phase(
                    repeats=1,
                    primitives=[
                        Primitive("same_object", {
                            "iters": 320, "nodes": 4096,
                            "node_words": 8, "layout": "segment",
                        }),
                    ],
                ),
            ],
        ),
    ]
    return {spec.name: spec for spec in specs}


#: Name -> spec for every curated scenario.
CATALOG: Dict[str, ScenarioSpec] = _build_catalog()

#: Catalog order, fixed (dicts preserve insertion order; this is the
#: golden-fixture and CLI listing order).
CATALOG_NAMES = tuple(CATALOG)
