"""Externally-fed workload sources: the scenario DSL and trace frontend.

Two ways to run something other than the 14 built-in benchmarks:

* ``scenario:<name-or-file.json>`` — a :class:`ScenarioSpec` from the
  curated catalog or a JSON file, compiled to a program through the
  ordinary workload builder;
* ``trace:<file.champsim.gz>`` — a ChampSim-format memory-access trace,
  lowered to a replay program.

:func:`resolve_job_source` turns any workload reference — builtin name,
prefixed string, or spec object — into the ``(name, scenario_dict,
trace_dict)`` triple :func:`repro.harness.engine.make_job` stores on the
job, and :func:`materialize_workload` rebuilds the runnable
:class:`~repro.workloads.base.Workload` from those dicts inside whatever
process executes the job.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple, Union

from ..errors import ConfigError
from ..workloads.base import Workload
from ..workloads.registry import BENCHMARK_NAMES
from .catalog import CATALOG, CATALOG_NAMES
from .dsl import (
    PRIMITIVE_PARAMS,
    Phase,
    Primitive,
    ScenarioSpec,
    generate_scenario,
)
from .trace import TraceSpec, lower_trace, read_trace

__all__ = [
    "CATALOG",
    "CATALOG_NAMES",
    "PRIMITIVE_PARAMS",
    "Phase",
    "Primitive",
    "ScenarioSpec",
    "TraceSpec",
    "generate_scenario",
    "lower_trace",
    "materialize_workload",
    "read_trace",
    "resolve_job_source",
    "resolve_scenario",
]

#: Workload-reference prefixes understood by the CLI and ``make_job``.
SCENARIO_PREFIX = "scenario:"
TRACE_PREFIX = "trace:"


def resolve_scenario(ref: str) -> ScenarioSpec:
    """Resolve a scenario reference: catalog name, or path to a JSON
    spec file (anything containing a path separator or ending in
    ``.json`` is read as a file)."""
    if ref in CATALOG:
        return CATALOG[ref]
    if os.sep in ref or ref.endswith(".json") or os.path.exists(ref):
        return ScenarioSpec.load(ref)
    known = ", ".join(CATALOG_NAMES)
    raise ConfigError(
        f"unknown scenario {ref!r}: not in the catalog ({known}) and "
        "not a readable spec file"
    )


def resolve_job_source(
    workload: Union[str, ScenarioSpec, TraceSpec],
) -> Tuple[str, Optional[Dict], Optional[Dict]]:
    """Normalise a workload reference for :func:`make_job`.

    Returns ``(name, scenario_dict, trace_dict)``; at most one of the
    dicts is non-None.  Plain builtin names pass through untouched.
    """
    if isinstance(workload, ScenarioSpec):
        return workload.name, workload.to_dict(), None
    if isinstance(workload, TraceSpec):
        return workload.name, None, workload.to_dict()
    if not isinstance(workload, str):
        raise ConfigError(
            f"workload must be a name, ScenarioSpec, or TraceSpec; "
            f"got {workload!r}"
        )
    if workload.startswith(SCENARIO_PREFIX):
        spec = resolve_scenario(workload[len(SCENARIO_PREFIX):])
        return spec.name, spec.to_dict(), None
    if workload.startswith(TRACE_PREFIX):
        spec = TraceSpec.for_file(workload[len(TRACE_PREFIX):])
        return spec.name, None, spec.to_dict()
    return workload, None, None


def materialize_workload(
    scenario: Optional[Dict], trace: Optional[Dict], seed: int = 1
) -> Workload:
    """Rebuild the runnable workload a job's source dicts describe.

    The single seam the engine uses in whatever process runs the job —
    both dicts travel with the pickled :class:`SimJob`, so pool and
    supervised workers rebuild identically to the in-process path.
    """
    if (scenario is None) == (trace is None):
        raise ConfigError(
            "exactly one of scenario/trace must be given to materialize"
        )
    if scenario is not None:
        return ScenarioSpec.from_dict(scenario).build(seed)
    return TraceSpec.from_dict(trace).build(seed)


def workload_display_names() -> Tuple[str, ...]:
    """Builtin benchmarks plus catalog scenarios (CLI listings)."""
    return tuple(BENCHMARK_NAMES) + CATALOG_NAMES
