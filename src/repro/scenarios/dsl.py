"""Workload-generator DSL: access-pattern primitives composed into
parameterized scenarios.

The paper's evaluation is 14 fixed synthetic programs.  A
:class:`ScenarioSpec` opens that space: it composes *access-pattern
primitives* — strided streams, pointer chases over the three allocator
layouts, same-object field groups, irregular hash walks, footprint
ramps — into phases, and compiles the composition to a real
:class:`~repro.workloads.base.Workload` through the same assembler and
heap builders the built-in benchmarks use.  A compiled scenario is a
first-class workload: it runs under either interpreter, snapshots and
resumes, lands in the content-addressed result cache (the spec dict is
part of the job spec), and renders in every figure.

Specs are plain data.  ``to_dict``/``from_dict`` round-trip exactly
(the property suite holds them to that), validation raises
:class:`~repro.errors.ConfigError` at the surface, and a spec's name
may never collide with a built-in benchmark — the registry owns those
names.

Grammar (JSON form)::

    {"version": 1, "name": "ramp-chase", "repeats": 100000,
     "phases": [
       {"repeats": 4, "primitives": [
         {"kind": "stride", "iters": 256, "stride": 8, "loads": 1},
         {"kind": "pointer_chase", "iters": 128, "nodes": 2048,
          "node_words": 8, "layout": "scramble", "field_loads": 1},
       ]},
     ]}

Phases execute in order inside one outer loop, so a multi-phase spec
*is* a phase-changing workload; ``footprint_ramp`` grows its working
set across steps inside a phase.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import ConfigError
from ..isa.assembler import Assembler
from ..workloads.base import Workload, counted_loop, new_parts
from ..workloads.data import build_array, build_linked_list
from ..workloads.registry import BENCHMARK_NAMES

#: Spec schema version (part of the serialised form and the job spec).
SPEC_VERSION = 1

#: Scenario names: short kebab/snake identifiers.  The pattern excludes
#: ``:`` so a scenario can never masquerade as a ``trace:...`` workload.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_-]{0,63}$")

#: Multiplicative hash constant (Knuth), as the gap workload uses.
_HASH_MULT = 2654435761

_LAYOUTS = ("seq", "segment", "scramble")

#: Per-primitive parameter schema: name -> (default, lo, hi) for ints,
#: or a tuple of allowed strings.  Validation is table-driven so the
#: fuzzer's generator and ``from_dict`` can never disagree.
PRIMITIVE_PARAMS: Dict[str, Dict[str, tuple]] = {
    "stride": {
        "iters": (256, 1, 65536),
        "stride": (8, 1, 64),        # words between consecutive loads
        "loads": (1, 1, 3),          # loads per iteration (offsets 0,8,16)
    },
    "pointer_chase": {
        "iters": (256, 1, 65536),
        "nodes": (2048, 8, 65536),
        "node_words": (8, 2, 16),
        "layout": _LAYOUTS,
        "field_loads": (1, 0, 2),
    },
    "same_object": {
        "iters": (256, 1, 65536),
        "nodes": (2048, 8, 65536),
        "node_words": (8, 4, 16),
        "layout": _LAYOUTS,
    },
    "hash_walk": {
        "iters": (256, 1, 65536),
        "table_words": (65536, 1024, 1 << 21),  # must be a power of two
    },
    "footprint_ramp": {
        "steps": (4, 1, 6),          # footprint doubles each step
        "start_words": (512, 64, 8192),
        "stride": (8, 1, 16),
        "iters": (128, 1, 8192),     # iterations per step
    },
}

#: Cursor/state registers handed to primitive instances round-robin.
_CURSOR_REGS = tuple(f"r{i}" for i in range(1, 9))
#: Accumulators shared by every primitive body (never reset).
_ACC_REGS = ("r11", "r12")
#: Scratch registers for address arithmetic inside one body.
_TMP_REGS = ("r17", "r18", "r19")
#: Loop counters: outer scenario loop, phase loop, primitive loop.
_OUTER_REG, _PHASE_REG, _PRIM_REG = "r27", "r26", "r25"


def _check_int(kind: str, name: str, value, lo: int, hi: int) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigError(
            f"scenario primitive {kind!r}: {name} must be an int, "
            f"got {value!r}"
        )
    if not lo <= value <= hi:
        raise ConfigError(
            f"scenario primitive {kind!r}: {name}={value} out of range "
            f"[{lo}, {hi}]"
        )
    return value


@dataclass
class Primitive:
    """One access-pattern building block (validated against its schema)."""

    kind: str
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        schema = PRIMITIVE_PARAMS.get(self.kind)
        if schema is None:
            known = ", ".join(sorted(PRIMITIVE_PARAMS))
            raise ConfigError(
                f"unknown scenario primitive {self.kind!r}; known: {known}"
            )
        unknown = set(self.params) - set(schema)
        if unknown:
            raise ConfigError(
                f"scenario primitive {self.kind!r}: unknown parameter(s) "
                f"{sorted(unknown)}"
            )
        full: Dict[str, object] = {}
        for name, spec in schema.items():
            value = self.params.get(name, None)
            if all(isinstance(choice, str) for choice in spec):
                value = spec[0] if value is None else value
                if value not in spec:
                    raise ConfigError(
                        f"scenario primitive {self.kind!r}: {name} must be "
                        f"one of {spec}, got {value!r}"
                    )
            else:
                default, lo, hi = spec
                value = default if value is None else value
                value = _check_int(self.kind, name, value, lo, hi)
            full[name] = value
        if self.kind == "hash_walk":
            words = full["table_words"]
            if words & (words - 1):
                raise ConfigError(
                    "scenario primitive 'hash_walk': table_words must be "
                    f"a power of two, got {words}"
                )
        self.params = full

    def to_dict(self) -> Dict:
        payload: Dict[str, object] = {"kind": self.kind}
        payload.update(self.params)
        return payload

    @staticmethod
    def from_dict(raw: Dict) -> "Primitive":
        if not isinstance(raw, dict) or "kind" not in raw:
            raise ConfigError(
                f"scenario primitive must be a dict with a 'kind', "
                f"got {raw!r}"
            )
        params = {k: v for k, v in raw.items() if k != "kind"}
        return Primitive(kind=raw["kind"], params=params)


@dataclass
class Phase:
    """An ordered group of primitives repeated ``repeats`` times."""

    primitives: List[Primitive]
    repeats: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.repeats, int) or isinstance(self.repeats, bool):
            raise ConfigError(
                f"scenario phase: repeats must be an int, got {self.repeats!r}"
            )
        if not 1 <= self.repeats <= 1 << 20:
            raise ConfigError(
                f"scenario phase: repeats={self.repeats} out of range "
                f"[1, {1 << 20}]"
            )
        if not self.primitives:
            raise ConfigError("scenario phase needs at least one primitive")
        if len(self.primitives) > 4:
            raise ConfigError(
                f"scenario phase holds {len(self.primitives)} primitives; "
                "the limit is 4"
            )

    def to_dict(self) -> Dict:
        return {
            "repeats": self.repeats,
            "primitives": [p.to_dict() for p in self.primitives],
        }

    @staticmethod
    def from_dict(raw: Dict) -> "Phase":
        if not isinstance(raw, dict) or "primitives" not in raw:
            raise ConfigError(
                f"scenario phase must be a dict with 'primitives', got {raw!r}"
            )
        return Phase(
            primitives=[
                Primitive.from_dict(p) for p in raw["primitives"]
            ],
            repeats=raw.get("repeats", 1),
        )


@dataclass
class ScenarioSpec:
    """A full scenario: named, validated, serialisable, compilable."""

    name: str
    phases: List[Phase]
    repeats: int = 100_000
    description: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not _NAME_RE.match(self.name):
            raise ConfigError(
                f"scenario name {self.name!r} is invalid: must match "
                f"{_NAME_RE.pattern}"
            )
        if self.name in BENCHMARK_NAMES:
            raise ConfigError(
                f"scenario name {self.name!r} collides with a built-in "
                "benchmark workload; pick another name"
            )
        if not isinstance(self.repeats, int) or isinstance(self.repeats, bool):
            raise ConfigError(
                f"scenario repeats must be an int, got {self.repeats!r}"
            )
        if not 1 <= self.repeats <= 1 << 20:
            raise ConfigError(
                f"scenario repeats={self.repeats} out of range [1, {1 << 20}]"
            )
        if not self.phases:
            raise ConfigError("scenario needs at least one phase")
        if len(self.phases) > 4:
            raise ConfigError(
                f"scenario holds {len(self.phases)} phases; the limit is 4"
            )
        if not isinstance(self.description, str):
            raise ConfigError(
                f"scenario description must be a string, "
                f"got {self.description!r}"
            )

    # ------------------------------------------------------------------
    # Serialisation.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        payload: Dict[str, object] = {
            "version": SPEC_VERSION,
            "name": self.name,
            "repeats": self.repeats,
            "phases": [phase.to_dict() for phase in self.phases],
        }
        if self.description:
            payload["description"] = self.description
        return payload

    @staticmethod
    def from_dict(raw: Dict) -> "ScenarioSpec":
        if not isinstance(raw, dict):
            raise ConfigError(f"scenario spec must be a dict, got {raw!r}")
        version = raw.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ConfigError(
                f"unsupported scenario spec version {version!r} "
                f"(this build reads version {SPEC_VERSION})"
            )
        unknown = set(raw) - {
            "version", "name", "repeats", "phases", "description"
        }
        if unknown:
            raise ConfigError(
                f"scenario spec has unknown key(s) {sorted(unknown)}"
            )
        if "name" not in raw or "phases" not in raw:
            raise ConfigError(
                "scenario spec needs 'name' and 'phases' keys"
            )
        if not isinstance(raw["phases"], list):
            raise ConfigError(
                f"scenario phases must be a list, got {raw['phases']!r}"
            )
        return ScenarioSpec(
            name=raw["name"],
            phases=[Phase.from_dict(p) for p in raw["phases"]],
            repeats=raw.get("repeats", 100_000),
            description=raw.get("description", ""),
        )

    def canonical_json(self) -> str:
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    @staticmethod
    def load(path) -> "ScenarioSpec":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                raw = json.load(fh)
        except OSError as exc:
            raise ConfigError(f"cannot read scenario file {path}: {exc}")
        except ValueError as exc:
            raise ConfigError(
                f"scenario file {path} is not valid JSON: {exc}"
            )
        return ScenarioSpec.from_dict(raw)

    # ------------------------------------------------------------------
    # Compilation to a Workload.
    # ------------------------------------------------------------------
    def build(self, seed: int = 1) -> Workload:
        """Compile to a runnable workload.

        Deterministic for a given (spec, seed): the layout RNG is seeded
        from the seed *and* the canonical spec JSON, so two distinct
        specs never alias layouts and the same spec always rebuilds the
        same program and memory image — the property the result cache,
        checkpoint prefixes, and golden fixtures all rest on.
        """
        digest = hashlib.sha256(self.canonical_json().encode()).hexdigest()
        parts = new_parts(self.name, seed ^ int(digest[:12], 16))
        asm = parts.asm
        emitters = []
        for phase_idx, phase in enumerate(self.phases):
            for prim_idx, prim in enumerate(phase.primitives):
                emitters.append(_make_emitter(
                    prim,
                    parts,
                    tag=f"p{phase_idx}_{prim_idx}",
                    cursor=_CURSOR_REGS[
                        len(emitters) % len(_CURSOR_REGS)
                    ],
                ))
        close_outer = counted_loop(asm, _OUTER_REG, self.repeats, "scenario")
        cursor_iter = iter(emitters)
        for phase_idx, phase in enumerate(self.phases):
            close_phase = counted_loop(
                asm, _PHASE_REG, phase.repeats, f"phase{phase_idx}"
            )
            for _ in phase.primitives:
                next(cursor_iter)(asm)
            close_phase()
        close_outer()
        asm.halt()
        return Workload(
            name=self.name,
            program=asm.build(),
            memory=parts.memory,
            description=self.description or (
                f"DSL scenario: {len(self.phases)} phase(s), "
                f"{sum(len(p.primitives) for p in self.phases)} primitive(s)"
            ),
            kind="scenario",
            paper_notes="generated by repro.scenarios.dsl",
        )


# ----------------------------------------------------------------------
# Primitive code emitters.  Each returns a closure emitting the
# primitive's inner loop; data structures are allocated eagerly (before
# any code runs) so layout order is independent of phase structure.
# ----------------------------------------------------------------------
def _make_emitter(prim: Primitive, parts, tag: str, cursor: str):
    p = prim.params
    asm_alloc, rng = parts.alloc, parts.rng
    t0, t1, _t2 = _TMP_REGS
    acc0, acc1 = _ACC_REGS

    if prim.kind == "stride":
        words = p["iters"] * p["stride"] + 3
        base = build_array(asm_alloc, words)
        stride_bytes = p["stride"] * 8

        def emit(asm: Assembler) -> None:
            asm.li(cursor, base)
            close = counted_loop(asm, _PRIM_REG, p["iters"], f"{tag}_stride")
            for slot in range(p["loads"]):
                asm.ldq(t0, cursor, slot * 8)
                asm.addq(acc0, acc0, rb=t0)
            asm.lda(cursor, cursor, stride_bytes)
            close()

        return emit

    if prim.kind in ("pointer_chase", "same_object"):
        layout = p["layout"]
        head, _nodes = build_linked_list(
            asm_alloc,
            node_words=p["node_words"],
            count=p["nodes"],
            rng=rng,
            scramble=(layout == "scramble"),
            segment=(64 if layout == "segment" else None),
        )
        if prim.kind == "same_object":
            field_loads = min(3, p["node_words"] - 1)
        else:
            field_loads = min(p["field_loads"], p["node_words"] - 1)

        def emit(asm: Assembler) -> None:
            asm.li(cursor, head)
            close = counted_loop(asm, _PRIM_REG, p["iters"], f"{tag}_chase")
            for slot in range(field_loads):
                asm.ldq(t0, cursor, (slot + 1) * 8)
                asm.addq(acc0, acc0, rb=t0)
            asm.ldq(cursor, cursor, 0)
            close()

        return emit

    if prim.kind == "hash_walk":
        table_words = p["table_words"]
        base = build_array(asm_alloc, table_words)
        mask = (table_words * 8 - 1) & ~63

        def emit(asm: Assembler) -> None:
            asm.li(cursor, 88172645463325252 & 0xFFFF)
            close = counted_loop(asm, _PRIM_REG, p["iters"], f"{tag}_hash")
            asm.mulq(cursor, cursor, imm=_HASH_MULT)
            asm.addq(cursor, cursor, imm=12345)
            asm.and_(t0, cursor, imm=mask)
            asm.addq(t0, t0, imm=base)
            asm.ldq(t1, t0, 0)
            asm.addq(acc1, acc1, rb=t1)
            close()

        return emit

    if prim.kind == "footprint_ramp":
        max_words = p["start_words"] << (p["steps"] - 1)
        base = build_array(asm_alloc, max_words + p["stride"] * 2)
        stride_bytes = p["stride"] * 8

        def emit(asm: Assembler) -> None:
            for step in range(p["steps"]):
                footprint = p["start_words"] << step
                span = max(1, footprint // p["stride"])
                iters = min(p["iters"], span)
                asm.li(cursor, base)
                close = counted_loop(
                    asm, _PRIM_REG, iters, f"{tag}_ramp{step}"
                )
                asm.ldq(t0, cursor, 0)
                asm.addq(acc0, acc0, rb=t0)
                asm.lda(cursor, cursor, stride_bytes)
                close()

        return emit

    raise ConfigError(f"unknown scenario primitive {prim.kind!r}")


# ----------------------------------------------------------------------
# Seeded random scenario generation (the fuzzer's and the CLI's source).
# ----------------------------------------------------------------------
def generate_scenario(
    seed: int, name: str | None = None, budget_hint: int = 50_000
) -> ScenarioSpec:
    """Deterministically generate a random-but-valid scenario.

    ``budget_hint`` loosely caps per-phase work so tiny-budget fuzz runs
    still cross phase boundaries.  Identical seeds yield identical
    specs in every process (the RNG is ``random.Random(seed)``, no
    ambient state).
    """
    import random

    rng = random.Random(seed)
    phases: List[Phase] = []
    iters_cap = max(8, min(2048, budget_hint // 10))
    for _ in range(rng.randint(1, 3)):
        primitives: List[Primitive] = []
        for _ in range(rng.randint(1, 3)):
            kind = rng.choice(sorted(PRIMITIVE_PARAMS))
            params: Dict[str, object] = {}
            if kind == "stride":
                params = {
                    "iters": rng.randint(8, iters_cap),
                    "stride": rng.choice((1, 2, 4, 8, 16, 32)),
                    "loads": rng.randint(1, 3),
                }
            elif kind == "pointer_chase":
                params = {
                    "iters": rng.randint(8, iters_cap),
                    "nodes": rng.randint(64, 4096),
                    "node_words": rng.choice((2, 4, 8, 16)),
                    "layout": rng.choice(_LAYOUTS),
                    "field_loads": rng.randint(0, 2),
                }
            elif kind == "same_object":
                params = {
                    "iters": rng.randint(8, iters_cap),
                    "nodes": rng.randint(64, 4096),
                    "node_words": rng.choice((4, 8, 16)),
                    "layout": rng.choice(_LAYOUTS),
                }
            elif kind == "hash_walk":
                params = {
                    "iters": rng.randint(8, iters_cap),
                    "table_words": 1 << rng.randint(10, 18),
                }
            elif kind == "footprint_ramp":
                params = {
                    "steps": rng.randint(1, 5),
                    "start_words": rng.choice((64, 256, 1024, 4096)),
                    "stride": rng.choice((1, 2, 4, 8, 16)),
                    "iters": rng.randint(8, max(8, iters_cap // 4)),
                }
            primitives.append(Primitive(kind, params))
        phases.append(Phase(primitives, repeats=rng.randint(1, 4)))
    return ScenarioSpec(
        name=name or f"gen-{seed & 0xFFFFFFFF:08x}",
        phases=phases,
        repeats=100_000,
        description=f"generated scenario (seed {seed})",
    )
