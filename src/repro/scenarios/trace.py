"""ChampSim-format trace ingestion: external traces as workloads.

ChampSim input traces are gzip'd streams of fixed 64-byte records::

    u64 ip;            // PC of the retired instruction
    u8  is_branch;     // 1 when the instruction is a branch
    u8  branch_taken;  // 1 when that branch was taken
    u8  dest_regs[2];  // architectural destinations (0 = unused)
    u8  src_regs[4];   // architectural sources (0 = unused)
    u64 dest_mem[2];   // store addresses (0 = unused)
    u64 src_mem[4];    // load addresses (0 = unused)

We cannot execute the traced program — we never saw its instructions —
but the prefetcher only reacts to the *memory reference stream*, so a
trace lowers to a synthetic program that replays exactly that stream,
PC-structure intact, through the ordinary ISA.  Both interpreters, the
checkpoint machinery, the result cache, and every figure then work on a
trace workload unchanged, because it *is* an ordinary workload.

Lowering
--------
Records are split into basic blocks at branch boundaries.  If the block
sequence is periodic (the common case for any loopy region of interest)
the trace lowers to a **real counted loop**: one load/store instruction
per static access slot, whose per-iteration addresses are read from a
per-slot address table indexed by the loop counter.  Each traced static
access keeps its own PC, so the DLT sees each slot's genuine address
sequence — a strided slot classifies Stride, an irregular one Pointer —
and the loop back-edge is the taken backward branch the trace-formation
heuristic keys on.  A partial trailing cycle is dropped (clamp, never
stall).  Non-periodic traces lower to straight-line replay: no loops in
the trace means no hot traces to form, and the budget clamps the run.

Trace addresses are remapped into a reserved high window
(``TRACE_BASE``) preserving their low 32 bits — cache-set, line, and
page geometry survive; collisions with the lowered program's own
address tables (bump-allocated at the ordinary heap base) cannot occur.
"""

from __future__ import annotations

import gzip
import hashlib
import os
import re
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..memory.mainmem import WORD_SIZE
from ..workloads.base import Workload, counted_loop, new_parts
from ..workloads.registry import BENCHMARK_NAMES

#: One ChampSim input-trace record (little-endian, 64 bytes).
RECORD = struct.Struct("<QBB2B4B2Q4Q")
RECORD_SIZE = RECORD.size
assert RECORD_SIZE == 64

#: Base of the reserved address window trace references are mapped into.
TRACE_BASE = 1 << 40
#: Low bits preserved by the mapping (cache/page geometry intact).
TRACE_MASK = (1 << 32) - 1

#: Default cap on records read from a trace file.
DEFAULT_LIMIT = 65_536

_NAME_RE = re.compile(r"^[a-z][a-z0-9_-]{0,63}$")

#: Registers used by lowered code: loop index, accumulator, temps.
_IDX_REG, _ACC_REG = "r9", "r11"
_T0, _T1, _T2 = "r17", "r18", "r19"


class TraceRecord(NamedTuple):
    """One decoded record: PC, branch flags, and its memory references."""

    ip: int
    is_branch: bool
    taken: bool
    loads: Tuple[int, ...]
    stores: Tuple[int, ...]


def map_address(addr: int) -> int:
    """Remap a traced address into the reserved trace window."""
    return TRACE_BASE | (addr & TRACE_MASK)


def read_trace(path, limit: int = DEFAULT_LIMIT) -> List[TraceRecord]:
    """Decode up to ``limit`` records from a gzip'd ChampSim trace.

    Raises :class:`ConfigError` for a missing file, corrupt or truncated
    gzip stream, a final partial record, or an empty trace.  A trace
    longer than ``limit`` is clamped, never an error.
    """
    if not isinstance(limit, int) or limit < 1:
        raise ConfigError(f"trace record limit must be >= 1, got {limit!r}")
    records: List[TraceRecord] = []
    try:
        with gzip.open(path, "rb") as fh:
            tail = b""
            while len(records) < limit:
                chunk = fh.read(RECORD_SIZE * 1024)
                if not chunk:
                    break
                data = tail + chunk
                usable = len(data) - (len(data) % RECORD_SIZE)
                for offset in range(0, usable, RECORD_SIZE):
                    fields = RECORD.unpack_from(data, offset)
                    records.append(
                        TraceRecord(
                            ip=fields[0],
                            is_branch=bool(fields[1]),
                            taken=bool(fields[2]),
                            loads=tuple(a for a in fields[9:13] if a),
                            stores=tuple(a for a in fields[7:9] if a),
                        )
                    )
                    if len(records) >= limit:
                        break
                tail = data[usable:]
    except (OSError, EOFError, zlib.error) as exc:
        raise ConfigError(f"cannot read trace {path}: {exc}")
    if tail and len(records) < limit:
        raise ConfigError(
            f"trace {path} is truncated: {len(tail)} stray byte(s) after "
            f"{len(records)} complete record(s)"
        )
    if not records:
        raise ConfigError(f"trace {path} holds no records")
    return records


# ----------------------------------------------------------------------
# Block structure and periodicity.
# ----------------------------------------------------------------------
def split_blocks(
    records: Sequence[TraceRecord],
) -> List[List[TraceRecord]]:
    """Split the record stream into basic blocks ending at branches."""
    blocks: List[List[TraceRecord]] = []
    current: List[TraceRecord] = []
    for record in records:
        current.append(record)
        if record.is_branch:
            blocks.append(current)
            current = []
    if current:
        blocks.append(current)
    return blocks


def find_period(signatures: Sequence[Tuple]) -> Optional[int]:
    """Smallest period of the block-signature sequence, requiring at
    least two complete cycles; None when the sequence is aperiodic."""
    n = len(signatures)
    for period in range(1, n // 2 + 1):
        cycles = n // period
        if cycles < 2:
            break
        body = signatures[:period]
        if all(
            signatures[i] == body[i % period]
            for i in range(period * cycles)
        ):
            return period
    return None


# ----------------------------------------------------------------------
# Lowering.
# ----------------------------------------------------------------------
def lower_trace(records: Sequence[TraceRecord], name: str) -> Workload:
    """Lower decoded records to a runnable :class:`Workload`."""
    blocks = split_blocks(records)
    signatures = [tuple(r.ip for r in block) for block in blocks]
    period = find_period(signatures)
    parts = new_parts(name, 1)
    if period is not None:
        cycles = len(blocks) // period
        description = _lower_loop(parts, blocks, period, cycles)
    else:
        description = _lower_straight(parts, records)
    parts.asm.halt()
    return Workload(
        name=name,
        program=parts.asm.build(),
        memory=parts.memory,
        description=description,
        kind="trace",
        paper_notes="lowered from a ChampSim-format input trace",
    )


def _seed_window(memory, addrs) -> None:
    """Give every replayed reference a resident value (no unmapped-read
    noise in the memory stats)."""
    for addr in addrs:
        memory.write(addr, addr & 0xFFFF)


def _lower_loop(parts, blocks, period: int, cycles: int) -> str:
    """Periodic trace: one counted loop, per-slot address tables."""
    asm, alloc, memory = parts.asm, parts.alloc, parts.memory
    # Static access slots: (block-in-body, record-in-block, kind, slot).
    # Per slot, the number of references must agree across cycles for the
    # tables to stay aligned; extra references in some occurrences are
    # dropped (counted below).
    slots: List[Tuple[int, int, str, int, int]] = []  # + table base
    dropped = 0
    touched: List[int] = []
    for b in range(period):
        body_block = blocks[b]
        for r in range(len(body_block)):
            occurrences = [blocks[c * period + b][r] for c in range(cycles)]
            for kind in ("loads", "stores"):
                counts = [len(getattr(o, kind)) for o in occurrences]
                keep = min(counts)
                dropped += sum(counts) - keep * cycles
                for slot in range(keep):
                    table = alloc.alloc_array(cycles)
                    for c, occ in enumerate(occurrences):
                        mapped = map_address(getattr(occ, kind)[slot])
                        memory.write(table + c * WORD_SIZE, mapped)
                        touched.append(mapped)
                    slots.append((b, r, kind, slot, table))
    _seed_window(memory, touched)
    asm.li(_IDX_REG, 0)
    close = counted_loop(asm, "r27", cycles, "trace_body")
    for _b, _r, kind, _slot, table in slots:
        asm.addq(_T0, _IDX_REG, imm=table)
        asm.ldq(_T1, _T0, 0)
        if kind == "loads":
            asm.ldq(_T2, _T1, 0)
            asm.addq(_ACC_REG, _ACC_REG, rb=_T2)
        else:
            asm.stq(_ACC_REG, _T1, 0)
    asm.lda(_IDX_REG, _IDX_REG, WORD_SIZE)
    close()
    return (
        f"trace replay: periodic, {period} block(s)/cycle x {cycles} "
        f"cycle(s), {len(slots)} access slot(s), {dropped} dropped "
        "ragged reference(s)"
    )


def _lower_straight(parts, records: Sequence[TraceRecord]) -> str:
    """Aperiodic trace: straight-line replay of every reference."""
    asm, memory = parts.asm, parts.memory
    touched: List[int] = []
    count = 0
    for record in records:
        for addr in record.loads:
            mapped = map_address(addr)
            touched.append(mapped)
            asm.li(_T0, mapped)
            asm.ldq(_T1, _T0, 0)
            count += 1
        for addr in record.stores:
            mapped = map_address(addr)
            touched.append(mapped)
            asm.li(_T0, mapped)
            asm.stq(_ACC_REG, _T0, 0)
            count += 1
    _seed_window(memory, touched)
    return (
        f"trace replay: aperiodic, straight-line, {count} reference(s) "
        f"over {len(records)} record(s)"
    )


# ----------------------------------------------------------------------
# The job-facing spec.
# ----------------------------------------------------------------------
def _content_hash(path) -> str:
    """sha256 of the *decompressed* record stream: identity follows the
    trace content, not gzip header metadata (filename, mtime) or the
    compression level — re-gzipping the same records keeps the hash."""
    digest = hashlib.sha256()
    try:
        with gzip.open(path, "rb") as fh:
            for chunk in iter(lambda: fh.read(1 << 20), b""):
                digest.update(chunk)
    except (OSError, EOFError, zlib.error) as exc:
        raise ConfigError(f"cannot read trace {path}: {exc}")
    return digest.hexdigest()


def _name_from_path(path: str) -> str:
    stem = os.path.basename(path)
    for suffix in (".gz", ".champsim", ".xz", ".trace"):
        if stem.endswith(suffix):
            stem = stem[: -len(suffix)]
    cleaned = re.sub(r"[^a-z0-9_-]+", "-", stem.lower()).strip("-")
    if not cleaned or not cleaned[0].isalpha():
        cleaned = f"t-{cleaned}" if cleaned else "t"
    return cleaned[:64].rstrip("-")


@dataclass(frozen=True)
class TraceSpec:
    """An external trace as job input: identity travels by content hash.

    ``path`` tells a worker where to read the bytes; the *hashed* spec
    (:meth:`spec_dict`) carries only name, sha256, and limit — two jobs
    reading identical trace content from different paths share one
    cache entry, and a file edited in place can never replay a stale
    result (the hash is re-verified at build time).
    """

    path: str
    sha256: str
    limit: int = DEFAULT_LIMIT
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.limit, int) or self.limit < 1:
            raise ConfigError(
                f"trace record limit must be >= 1, got {self.limit!r}"
            )
        if not self.name or not _NAME_RE.match(self.name):
            raise ConfigError(
                f"trace workload name {self.name!r} is invalid: must "
                f"match {_NAME_RE.pattern}"
            )
        if self.name in BENCHMARK_NAMES:
            raise ConfigError(
                f"trace workload name {self.name!r} collides with a "
                "built-in benchmark workload"
            )

    @staticmethod
    def for_file(
        path, limit: int = DEFAULT_LIMIT, name: Optional[str] = None
    ) -> "TraceSpec":
        """Build a spec for a trace file, hashing its decoded content."""
        return TraceSpec(
            path=str(path),
            sha256=_content_hash(path),
            limit=limit,
            name=name or _name_from_path(str(path)),
        )

    def spec_dict(self) -> Dict:
        """The content-addressed identity (no path)."""
        return {"name": self.name, "sha256": self.sha256, "limit": self.limit}

    def to_dict(self) -> Dict:
        payload = self.spec_dict()
        payload["path"] = self.path
        return payload

    @staticmethod
    def from_dict(raw: Dict) -> "TraceSpec":
        if not isinstance(raw, dict) or "path" not in raw:
            raise ConfigError(f"not a serialised TraceSpec: {raw!r}")
        return TraceSpec(
            path=raw["path"],
            sha256=raw.get("sha256", ""),
            limit=raw.get("limit", DEFAULT_LIMIT),
            name=raw.get("name", ""),
        )

    def build(self, seed: int = 1) -> Workload:
        """Read, verify, and lower the trace.  ``seed`` is accepted for
        interface parity with scenario builds; lowering is seed-free."""
        del seed
        digest = _content_hash(self.path)
        if digest != self.sha256:
            raise ConfigError(
                f"trace {self.path} content hash {digest[:12]}... does "
                f"not match the job spec's {self.sha256[:12]}...; the "
                "file changed since the job was built"
            )
        return lower_trace(read_trace(self.path, self.limit), self.name)
