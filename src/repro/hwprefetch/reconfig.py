"""POWER7-style runtime prefetcher reconfiguration.

POWER7 exposes its hardware prefetcher's aggressiveness as a software-
visible setting (the DSCR depth field) that runtimes tune per program
phase.  This policy models the *tuned engine*: a stride-directed
sequential prefetcher whose depth is not fixed but selected by a phase
controller.

Every epoch of demand loads the controller measures the miss rate,
maps it onto a depth ladder (hot miss phases earn deep prefetching,
cache-resident phases switch the engine nearly off), and — when the
miss rate shifts sharply between epochs — declares a phase change and
retrains the stride tables from scratch, because stride history
learned in the old phase misdirects the new one.

The inner engine reuses the repo's :class:`StridePredictor` (the same
Farkas-style table the stream buffers allocate from), so its corner
cases — negative-stride learning, direct-mapped aliasing — are shared,
tested substrate, not new code.
"""

from __future__ import annotations

from .stride_predictor import StridePredictor

#: Demand loads per phase-evaluation epoch.
EPOCH_LOADS = 1024
#: The depth ladder (POWER7's DSCR depth field, abstracted): the phase
#: controller picks one rung per epoch from the measured miss rate.
DEPTHS = (0, 1, 2, 4, 6)
#: Miss-rate band edges separating the ladder's rungs.
MISS_RATE_BANDS = (0.01, 0.05, 0.15, 0.30)
#: Relative miss-rate shift between epochs that declares a phase change.
PHASE_SHIFT = 0.5
#: Stride-predictor table size for the inner engine.
STRIDE_ENTRIES = 256


class PhaseReconfigPrefetcher:
    """Stride-directed prefetching under per-phase depth reconfiguration."""

    def __init__(
        self,
        hierarchy,
        line_size: int = 64,
        epoch_loads: int = EPOCH_LOADS,
        depths: tuple = DEPTHS,
        stride_entries: int = STRIDE_ENTRIES,
    ) -> None:
        self.hierarchy = hierarchy
        self.line_size = line_size
        self.epoch_loads = epoch_loads
        self.depths = tuple(depths)

        self.strides = StridePredictor(entries=stride_entries)
        #: Start mid-ladder: the first epoch has no measurement yet.
        self.depth = self.depths[len(self.depths) // 2]

        self._epoch_loads_seen = 0
        self._epoch_misses = 0
        self._last_miss_rate = None

        self.prefetches_issued = 0
        self.reconfigurations = 0
        self.phase_switches = 0

    # ------------------------------------------------------------------
    def on_demand_load(
        self, pc: int, addr: int, l1_hit: bool, cycle: int
    ) -> None:
        self._epoch_loads_seen += 1
        if not l1_hit:
            self._epoch_misses += 1
            self.strides.update(pc, addr)
            depth = self.depth
            if depth > 0:
                stride = self.strides.predict(pc)
                if stride is not None:
                    target = addr
                    for _step in range(depth):
                        target += stride
                        if target < 0:
                            break
                        if self.hierarchy.hardware_prefetch(target, cycle):
                            self.prefetches_issued += 1
        if self._epoch_loads_seen >= self.epoch_loads:
            self._reconfigure()

    # ------------------------------------------------------------------
    def _depth_for(self, miss_rate: float) -> int:
        for rung, edge in enumerate(MISS_RATE_BANDS):
            if miss_rate < edge:
                return self.depths[min(rung, len(self.depths) - 1)]
        return self.depths[-1]

    def _reconfigure(self) -> None:
        """Close the epoch: pick a depth, detect phase changes."""
        miss_rate = self._epoch_misses / self._epoch_loads_seen
        self._epoch_loads_seen = 0
        self._epoch_misses = 0
        new_depth = self._depth_for(miss_rate)
        if new_depth != self.depth:
            self.depth = new_depth
            self.reconfigurations += 1
        last = self._last_miss_rate
        self._last_miss_rate = miss_rate
        if last is None:
            return
        shift = abs(miss_rate - last)
        if shift > PHASE_SHIFT * max(last, 0.005):
            # Sharp shift: the working set changed, old stride history
            # misleads — retrain from empty, exactly what a runtime
            # rewriting the DSCR on a phase boundary achieves.
            self.phase_switches += 1
            self.strides = StridePredictor(entries=self.strides.entries)
