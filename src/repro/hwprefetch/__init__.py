"""Hardware prefetching substrate: stride predictor and stream buffers."""

from .markov import MarkovPredictor
from .stream_buffer import StreamBufferPrefetcher
from .stride_predictor import StridePredictor

__all__ = ["MarkovPredictor", "StreamBufferPrefetcher", "StridePredictor"]
