"""Hardware prefetching substrate: stride predictor, stream buffers,
and the pluggable prefetcher zoo (:mod:`repro.hwprefetch.zoo`)."""

from .adaptive_nextline import AdaptiveNextLinePrefetcher
from .ghb import GHBPrefetcher
from .markov import MarkovPredictor
from .reconfig import PhaseReconfigPrefetcher
from .stream_buffer import StreamBufferPrefetcher
from .stride_predictor import StridePredictor
from .triangel import TriangelPrefetcher
from .zoo import (
    ZooEntry,
    all_policy_names,
    build_prefetcher,
    get_entry,
    policy_label,
    register,
    resolve_policy,
    zoo_names,
)

__all__ = [
    "AdaptiveNextLinePrefetcher",
    "GHBPrefetcher",
    "MarkovPredictor",
    "PhaseReconfigPrefetcher",
    "StreamBufferPrefetcher",
    "StridePredictor",
    "TriangelPrefetcher",
    "ZooEntry",
    "all_policy_names",
    "build_prefetcher",
    "get_entry",
    "policy_label",
    "register",
    "resolve_policy",
    "zoo_names",
]
