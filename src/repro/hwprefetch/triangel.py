"""Triangel-style temporal/correlation prefetcher.

A temporal prefetcher in the Triangel mold: a metadata table records,
per cache block, which block the miss stream visited *next* the last
time it was here, guarded by a saturating confidence counter.  Training
is PC-localised (each load PC contributes its own miss sequence, so
interleaved data structures don't scramble each other's successor
links), and prediction is confidence-filtered — an entry must prove
itself repeatedly before it is allowed to prefetch, and chained lookups
extend the prefetch depth only while every hop on the chain stays
confident.

This is the table-based subset of Triangel (metadata table + confidence
filtering); the paper's Markov-filter sizing machinery is out of scope.
Bounded LRU tables, plain-attribute state, no clocks: deterministic and
snapshot-safe like every zoo policy.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

#: Metadata-table entries (successor links).  Triangel keeps its
#: metadata in DRAM, so the table is generously sized; the LRU bound
#: exists to keep snapshots small, not to model SRAM.
TABLE_ENTRIES = 8192
#: Per-PC training contexts (last block seen by each load PC).
TRAINING_ENTRIES = 512
#: Saturating confidence bounds and the prefetch-issue threshold.  A
#: freshly trained link (confidence 1) may prefetch — the classic
#: temporal-streaming behaviour — but a link that *disagreed* decays to
#: 0 and must re-prove itself before issuing again; that decay gate is
#: the Triangel filtering discipline in miniature.
CONFIDENCE_MAX = 3
CONFIDENCE_THRESHOLD = 1
#: Maximum chained prefetch depth while hops stay confident.
CHAIN_DEPTH = 2


class TriangelPrefetcher:
    """Confidence-filtered temporal prefetching over a metadata table."""

    def __init__(
        self,
        hierarchy,
        line_size: int = 64,
        table_entries: int = TABLE_ENTRIES,
        training_entries: int = TRAINING_ENTRIES,
        chain_depth: int = CHAIN_DEPTH,
    ) -> None:
        self.hierarchy = hierarchy
        self.line_size = line_size
        self.table_entries = table_entries
        self.training_entries = training_entries
        self.chain_depth = chain_depth

        #: block -> [successor block, confidence]; LRU eviction.
        self._table: "OrderedDict[int, list]" = OrderedDict()
        #: pc -> last miss block observed by that pc; LRU eviction.
        self._last_by_pc: "OrderedDict[int, int]" = OrderedDict()

        self.prefetches_issued = 0
        self.entries_trained = 0
        self.predictions_filtered = 0

    # ------------------------------------------------------------------
    def _block(self, addr: int) -> int:
        return addr - (addr % self.line_size)

    def on_demand_load(
        self, pc: int, addr: int, l1_hit: bool, cycle: int
    ) -> None:
        if l1_hit:
            return  # temporal tables train and predict on the miss stream
        block = self._block(addr)
        self._train(pc, block)
        self._predict(block, cycle)

    # ------------------------------------------------------------------
    def _train(self, pc: int, block: int) -> None:
        last_by_pc = self._last_by_pc
        prev = last_by_pc.get(pc)
        last_by_pc[pc] = block
        last_by_pc.move_to_end(pc)
        if len(last_by_pc) > self.training_entries:
            last_by_pc.popitem(last=False)
        if prev is None or prev == block:
            return
        table = self._table
        entry = table.get(prev)
        if entry is None:
            table[prev] = [block, 1]
            self.entries_trained += 1
            if len(table) > self.table_entries:
                table.popitem(last=False)
            return
        table.move_to_end(prev)
        if entry[0] == block:
            if entry[1] < CONFIDENCE_MAX:
                entry[1] += 1
        elif entry[1] > 0:
            # Disagreement decays confidence before the link is allowed
            # to be retargeted — the Triangel filtering discipline.
            entry[1] -= 1
        else:
            entry[0] = block
            entry[1] = 1

    def _predict(self, block: int, cycle: int) -> None:
        table = self._table
        current: Optional[int] = block
        for _hop in range(self.chain_depth):
            entry = table.get(current)
            if entry is None:
                return
            table.move_to_end(current)
            if entry[1] < CONFIDENCE_THRESHOLD:
                self.predictions_filtered += 1
                return
            target = entry[0]
            if self.hierarchy.hardware_prefetch(target, cycle):
                self.prefetches_issued += 1
            current = target
