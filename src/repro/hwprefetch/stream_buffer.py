"""Stride-predictor-guided stream buffers (the paper's hardware baseline).

Architecture follows Sherwood et al.'s predictor-directed stream buffers as
summarised in the paper's Table 1: N buffers of M entries each, allocated
on misses when a PC-indexed stride predictor is confident, each buffer
running ahead of the demand stream by up to M cache blocks.

We model buffer storage by routing prefetched blocks through the shared
:class:`~repro.memory.hierarchy.MemoryHierarchy` fill machinery: a block a
buffer has requested is a pending fill until it arrives, then sits in the
L1 with its prefetched bit set.  A demand load that catches up with the
stream therefore sees either a prefetched hit or a partial hit with the
remaining latency — the same timing a hardware buffer hit would give,
without a second storage pool.  DESIGN.md records this simplification.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..config import StreamBufferConfig
from .markov import MarkovPredictor
from .stride_predictor import StridePredictor


class _StreamBuffer:
    """One stream: a stride (or Markov walk), pending blocks."""

    __slots__ = ("pc", "stride", "next_addr", "blocks", "last_use", "markov")

    def __init__(
        self, pc: int, stride: int, next_addr: int, markov: bool = False
    ) -> None:
        self.pc = pc
        self.stride = stride
        self.next_addr = next_addr
        #: Blocks requested and not yet consumed, oldest first.
        self.blocks: List[int] = []
        self.last_use = 0
        #: True when the stream follows Markov transitions, not a stride.
        self.markov = markov


class StreamBufferPrefetcher:
    """N×M stream buffers with confidence-gated allocation."""

    def __init__(
        self,
        config: StreamBufferConfig,
        hierarchy,
        line_size: int = 64,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.line_size = line_size
        self.predictor = StridePredictor(config.history_table_entries)
        self.markov: Optional[MarkovPredictor] = (
            MarkovPredictor(config.markov_entries)
            if config.markov_entries > 0
            else None
        )
        self._buffers: List[Optional[_StreamBuffer]] = [
            None for _ in range(config.num_buffers)
        ]
        # Power-of-two line sizes (the common case) get mask arithmetic
        # on the per-load hot path; identical values to the %-based form.
        self._pow2 = line_size > 0 and (line_size & (line_size - 1)) == 0
        self._block_mask = ~(line_size - 1)
        # When our line geometry matches the hierarchy's (always true in
        # the harness, which passes machine.line_size for both), the
        # skip-search can hand the hierarchy its own block address and
        # skip the per-probe realignment.
        self._blocks_shared = (
            getattr(hierarchy, "_line_size", None) == line_size
            and hasattr(hierarchy, "hardware_prefetch_block")
        )
        #: block address -> owning buffer, for O(1) demand probes.
        self._block_map: Dict[int, _StreamBuffer] = {}
        self._clock = 0
        self.allocations = 0
        self.stream_hits = 0
        self.prefetches_issued = 0

    # ------------------------------------------------------------------
    def _block_of(self, addr: int) -> int:
        if self._pow2:
            return addr & self._block_mask
        return addr - (addr % self.line_size)

    def _issue_next(self, buffer: _StreamBuffer, cycle: int) -> None:
        """Request the next block of the stream.

        Steps that land in the current block (tiny strides), in another
        buffer, or on a line that is already resident or in flight
        (e.g. a software prefetch got there first) are skipped — an entry
        is only spent on a real outstanding fetch, so the buffer extends
        its lead *beyond* whatever is already covered.
        """
        blocks_shared = self._blocks_shared
        for _ in range(8):  # bound the skip search
            addr = buffer.next_addr
            if addr is None:
                return  # a Markov walk ran out of recorded transitions
            if buffer.markov:
                assert self.markov is not None
                buffer.next_addr = self.markov.predict(self._block_of(addr))
            else:
                buffer.next_addr += buffer.stride
            block = self._block_of(addr)
            if block in buffer.blocks or block in self._block_map:
                continue
            if blocks_shared:
                issued = self.hierarchy.hardware_prefetch_block(
                    addr, block, cycle
                )
            else:
                issued = self.hierarchy.hardware_prefetch(addr, cycle)
            if not issued:
                continue  # resident or pending already: nothing to track
            self.prefetches_issued += 1
            buffer.blocks.append(block)
            self._block_map[block] = buffer
            return

    def _top_up(self, buffer: _StreamBuffer, cycle: int) -> None:
        while len(buffer.blocks) < self.config.entries_per_buffer:
            before = len(buffer.blocks)
            self._issue_next(buffer, cycle)
            if len(buffer.blocks) == before:
                break

    # ------------------------------------------------------------------
    def on_demand_load(
        self, pc: int, addr: int, l1_hit: bool, cycle: int
    ) -> None:
        """Hook invoked by the hierarchy on every demand load."""
        self._clock += 1
        self.predictor.update(pc, addr)
        block = self._block_of(addr)
        buffer = self._block_map.get(block)
        if buffer is not None:
            # The demand stream caught up with this buffer — whether the
            # prefetched line has already landed (an L1 hit) or is still
            # in flight (a partial hit), the stream advances.
            self.stream_hits += 1
            buffer.last_use = self._clock
            # Consume this block and everything older (skipped entries).
            index = buffer.blocks.index(block)
            for consumed in buffer.blocks[: index + 1]:
                self._block_map.pop(consumed, None)
            del buffer.blocks[: index + 1]
            self._top_up(buffer, cycle)
            return
        if l1_hit:
            return
        # Stride-filtered Markov training: only misses the stride
        # predictor cannot explain feed the transition table.
        if self.markov is not None and self.predictor.predict(pc) is None:
            self.markov.train(block)
        self._maybe_allocate(pc, addr, cycle)

    def _maybe_allocate(self, pc: int, addr: int, cycle: int) -> None:
        stride = self.predictor.predict(
            pc, min_confidence=self.config.allocation_confidence
        )
        markov_next = None
        if stride is None:
            if self.markov is not None:
                markov_next = self.markov.predict(self._block_of(addr))
            if markov_next is None:
                return
        # Replace the LRU buffer (empty slots first).
        slot = None
        for i, buffer in enumerate(self._buffers):
            if buffer is None:
                slot = i
                break
        if slot is None:
            slot, oldest = 0, self._buffers[0].last_use
            for i, buffer in enumerate(self._buffers):
                if buffer.last_use < oldest:
                    slot, oldest = i, buffer.last_use
            for stale in self._buffers[slot].blocks:
                self._block_map.pop(stale, None)
        if stride is not None:
            new = _StreamBuffer(
                pc=pc, stride=stride, next_addr=addr + stride
            )
        else:
            new = _StreamBuffer(
                pc=pc, stride=0, next_addr=markov_next, markov=True
            )
        new.last_use = self._clock
        self._buffers[slot] = new
        self.allocations += 1
        self._top_up(new, cycle)

    # ------------------------------------------------------------------
    @property
    def active_buffers(self) -> int:
        return sum(1 for b in self._buffers if b is not None)
