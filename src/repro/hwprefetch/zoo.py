"""The hardware-prefetcher zoo: a registry of pluggable policies.

The paper compares its self-repairing software prefetcher against one
static stream-buffer baseline — a weak test of the adaptivity claim.
The zoo supplies genuinely adaptive hardware baselines drawn from the
related work, each registered under a stable string name so it is
selectable everywhere a policy is (CLI ``--policy``, ``make_job``, the
result cache key, the tournament experiment):

* ``ghb_delta`` — GHB/delta-correlation with countdown degree
  calibration (:mod:`repro.hwprefetch.ghb`);
* ``adaptive_nextline`` — ChampSim-style STATISTICS/BEST_DEGREE
  feedback next-line (:mod:`repro.hwprefetch.adaptive_nextline`);
* ``triangel`` — temporal metadata table with confidence filtering
  (:mod:`repro.hwprefetch.triangel`);
* ``power7_reconfig`` — runtime depth reconfiguration per detected
  phase (:mod:`repro.hwprefetch.reconfig`).

A zoo policy runs with the :class:`~repro.config.PrefetchPolicy.HW_ONLY`
base policy — the named engine simply *replaces* the stock stream
buffers as ``MemoryHierarchy.stream_prefetcher``.  The hook lives in the
hierarchy, not the interpreters, so every zoo policy is automatically
interpreter-agnostic; the differential suites still prove each one
byte-identical fast-vs-slow and resume-vs-cold.

Registering a policy (DESIGN.md §5h): implement ``on_demand_load(pc,
addr, l1_hit, cycle)`` issuing fills via ``hierarchy.hardware_prefetch``
with deterministic, picklable, plain-attribute state, then
``register(ZooEntry(name=..., build=...))`` here.  The name must not
collide with a :class:`PrefetchPolicy` value — the resolver accepts
both namespaces in one ``--policy`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..config import MachineConfig, PrefetchPolicy
from ..errors import ConfigError
from .adaptive_nextline import AdaptiveNextLinePrefetcher
from .ghb import GHBPrefetcher
from .reconfig import PhaseReconfigPrefetcher
from .triangel import TriangelPrefetcher


@dataclass(frozen=True)
class ZooEntry:
    """One registered hardware-prefetcher policy."""

    name: str
    family: str
    description: str
    #: One-line CLI recipe (README's per-policy table).
    recipe: str
    #: Tunable -> default value; documentation of the config surface,
    #: asserted against each builder's keyword defaults by the tests.
    schema: Dict[str, object] = field(default_factory=dict)
    #: ``build(machine, hierarchy) -> prefetcher`` (duck-typed; see
    #: module docstring for the required surface).
    build: Callable[[MachineConfig, object], object] = None


_REGISTRY: Dict[str, ZooEntry] = {}


def register(entry: ZooEntry) -> ZooEntry:
    """Add a policy to the zoo; names are unique and enum-disjoint."""
    if not entry.name or not isinstance(entry.name, str):
        raise ConfigError(f"zoo policy needs a string name, got {entry.name!r}")
    if entry.name in _REGISTRY:
        raise ConfigError(f"zoo policy {entry.name!r} already registered")
    if entry.name in set(p.value for p in PrefetchPolicy):
        raise ConfigError(
            f"zoo policy {entry.name!r} collides with a PrefetchPolicy value"
        )
    if entry.build is None:
        raise ConfigError(f"zoo policy {entry.name!r} has no builder")
    _REGISTRY[entry.name] = entry
    return entry


def zoo_names() -> Tuple[str, ...]:
    """Registered policy names, in registration order."""
    return tuple(_REGISTRY)


def get_entry(name: str) -> ZooEntry:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY) or "(none)"
        raise ConfigError(
            f"unknown hardware prefetcher {name!r}; known: {known}"
        ) from None


def build_prefetcher(name: str, machine: MachineConfig, hierarchy):
    """Construct the named engine against a hierarchy (the
    :class:`~repro.harness.runner.Simulation` construction seam)."""
    return get_entry(name).build(machine, hierarchy)


def resolve_policy(value) -> Tuple[PrefetchPolicy, Optional[str]]:
    """Map one ``--policy`` argument onto ``(policy, hw_prefetcher)``.

    Enum members and enum values resolve to ``(policy, None)``; zoo
    names resolve to ``(HW_ONLY, name)`` — the named engine rides the
    hardware-only base policy.  Anything else raises
    :class:`~repro.errors.ConfigError` listing both namespaces.
    """
    if isinstance(value, PrefetchPolicy):
        return value, None
    if isinstance(value, str):
        try:
            return PrefetchPolicy(value), None
        except ValueError:
            pass
        if value in _REGISTRY:
            return PrefetchPolicy.HW_ONLY, value
    known = ", ".join(
        [p.value for p in PrefetchPolicy] + list(_REGISTRY)
    )
    raise ConfigError(f"unknown prefetch policy {value!r}; known: {known}")


def policy_label(policy: PrefetchPolicy, hw_prefetcher: Optional[str]) -> str:
    """The display name a run competes under (tournament tables)."""
    return hw_prefetcher if hw_prefetcher is not None else policy.value


def all_policy_names() -> Tuple[str, ...]:
    """Every name ``resolve_policy`` accepts (CLI ``--policy`` choices)."""
    return tuple(p.value for p in PrefetchPolicy) + zoo_names()


# ---------------------------------------------------------------------------
# The four shipped families.
# ---------------------------------------------------------------------------
register(ZooEntry(
    name="ghb_delta",
    family="ghb",
    description=(
        "GHB delta-correlation with countdown-calibrated degree "
        "(Arsenal-of-Prefetchers family)"
    ),
    recipe="python -m repro run mcf --policy ghb_delta --instructions 50000",
    schema={
        "ghb_size": 1024,
        "degree": 2,
        "calibration_interval": 2048,
    },
    build=lambda machine, hierarchy: GHBPrefetcher(
        hierarchy, line_size=machine.line_size
    ),
))

register(ZooEntry(
    name="adaptive_nextline",
    family="nextline",
    description=(
        "feedback-directed next-line: sweeps degrees, locks the best "
        "(ChampSim STATISTICS/BEST_DEGREE)"
    ),
    recipe=(
        "python -m repro run swim --policy adaptive_nextline "
        "--instructions 50000"
    ),
    schema={
        "stats_window": 256,
        "best_window": 8192,
        "max_degree": 4,
    },
    build=lambda machine, hierarchy: AdaptiveNextLinePrefetcher(
        hierarchy, line_size=machine.line_size
    ),
))

register(ZooEntry(
    name="triangel",
    family="temporal",
    description=(
        "Triangel-style temporal metadata table with confidence-"
        "filtered chained prefetch"
    ),
    recipe="python -m repro run mcf --policy triangel --instructions 50000",
    schema={
        "table_entries": 8192,
        "training_entries": 512,
        "chain_depth": 2,
    },
    build=lambda machine, hierarchy: TriangelPrefetcher(
        hierarchy, line_size=machine.line_size
    ),
))

register(ZooEntry(
    name="power7_reconfig",
    family="reconfig",
    description=(
        "POWER7-style runtime reconfigurator: stride engine whose "
        "depth switches per detected phase"
    ),
    recipe=(
        "python -m repro run art --policy power7_reconfig "
        "--instructions 50000"
    ),
    schema={
        "epoch_loads": 1024,
        "depths": (0, 1, 2, 4, 6),
        "stride_entries": 256,
    },
    build=lambda machine, hierarchy: PhaseReconfigPrefetcher(
        hierarchy, line_size=machine.line_size
    ),
))
