"""GHB/delta-correlation prefetcher with countdown degree calibration.

The classic two-level design from the "Arsenal of Hardware Prefetchers"
family: a Global History Buffer records the block-delta stream of demand
misses, and a delta-pair index finds the last time the current two-delta
pattern occurred.  On a match, the deltas that *followed* the previous
occurrence are replayed forward from the current block — correlation
prefetching that captures repeating irregular walks a stride predictor
cannot.

The prefetch degree is not fixed: a countdown calibrator (the
TDT4260-style CALIBRATION_INTERVAL scheme) measures, per interval, how
many issued prefetches were actually consumed by later demand loads and
walks the degree up on good accuracy (short countdown — react fast to a
prefetchable phase) or down on bad accuracy (long countdown — don't
thrash on noise).

Deterministic and snapshot-safe: plain-attribute state only, no clocks,
no randomness — the differential suites hold every zoo policy to
byte-identical fast-vs-slow and resume-vs-cold runs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

#: Entries in the global (miss) history buffer.
GHB_SIZE = 1024
#: Demand loads per calibration interval.
CALIBRATION_INTERVAL = 2048
#: Degree bounds and start (the calibrator moves within these).
DEGREE_MIN = 0
DEGREE_DEFAULT = 2
DEGREE_MAX = 16
#: Calibration intervals before a degree step is allowed: short on the
#: way up (grab a prefetchable phase quickly), long on the way down.
COUNTDOWN_SHORT = 4
COUNTDOWN_LONG = 16
#: Issued-prefetch accuracy bands steering the degree.
ACCURACY_RAISE = 0.5
ACCURACY_LOWER = 0.2
#: Issued prefetches an interval needs before accuracy is trusted.
MIN_ISSUED_SAMPLE = 8
#: Outstanding prefetched-block tags kept for accuracy accounting.
TAG_LIMIT = 2048


class GHBPrefetcher:
    """Delta-correlation prefetching over a global miss-history buffer."""

    def __init__(
        self,
        hierarchy,
        line_size: int = 64,
        ghb_size: int = GHB_SIZE,
        degree: int = DEGREE_DEFAULT,
        calibration_interval: int = CALIBRATION_INTERVAL,
    ) -> None:
        self.hierarchy = hierarchy
        self.line_size = line_size
        self.ghb_size = ghb_size
        self.degree = degree
        self.calibration_interval = calibration_interval

        #: Circular delta history: slot i holds the block delta (in
        #: lines) between consecutive distinct miss blocks.
        self._deltas = [0] * ghb_size
        #: Monotonic append counter; slot = position % ghb_size.
        self._pos = 0
        #: Delta-pair -> absolute position of its last occurrence.
        self._index: Dict[Tuple[int, int], int] = {}
        self._last_block: Optional[int] = None

        # Countdown calibrator state (interval-local counters reset at
        # each calibration point).
        self._countdown = COUNTDOWN_SHORT
        self._interval_loads = 0
        self._interval_issued_hits = 0
        self._interval_issued = 0
        #: Blocks with an outstanding "was this prefetch consumed?" tag.
        self._tagged: "OrderedDict[int, bool]" = OrderedDict()

        # Lifetime counters (unit-test observability).
        self.prefetches_issued = 0
        self.correlations_matched = 0
        self.calibrations = 0

    # ------------------------------------------------------------------
    def _block(self, addr: int) -> int:
        return addr - (addr % self.line_size)

    def on_demand_load(
        self, pc: int, addr: int, l1_hit: bool, cycle: int
    ) -> None:
        block = self._block(addr)
        tagged = self._tagged
        if block in tagged:
            del tagged[block]
            if l1_hit:
                self._interval_issued_hits += 1
        self._interval_loads += 1
        if not l1_hit:
            self._train_and_prefetch(block, cycle)
        if self._interval_loads >= self.calibration_interval:
            self._calibrate()

    # ------------------------------------------------------------------
    def _train_and_prefetch(self, block: int, cycle: int) -> None:
        last = self._last_block
        self._last_block = block
        if last is None or last == block:
            return
        delta = (block - last) // self.line_size
        pos = self._pos
        self._deltas[pos % self.ghb_size] = delta
        self._pos = pos + 1
        if pos < 1:
            return
        prev_delta = self._deltas[(pos - 1) % self.ghb_size]
        key = (prev_delta, delta)
        match = self._index.get(key)
        self._index[key] = pos
        if len(self._index) > self.ghb_size:
            # The index only ever references live GHB positions; keep it
            # the same order of size by dropping stale pairs wholesale.
            self._index = {
                k: p
                for k, p in self._index.items()
                if self._pos - p < self.ghb_size
            }
        degree = self.degree
        if match is None or degree <= 0:
            return
        # Replay the deltas that followed the previous occurrence of
        # this delta pair, as far as history reaches and degree allows.
        if self._pos - match >= self.ghb_size:
            return  # the match scrolled out of the buffer
        self.correlations_matched += 1
        base = block
        for step in range(1, degree + 1):
            follow = match + step
            if follow >= pos:
                break  # would read deltas that don't exist yet
            base += self._deltas[follow % self.ghb_size] * self.line_size
            if base < 0:
                break
            if self.hierarchy.hardware_prefetch(base, cycle):
                self.prefetches_issued += 1
                self._tag(self._block(base))

    def _tag(self, block: int) -> None:
        tagged = self._tagged
        tagged[block] = True
        self._interval_issued += 1
        if len(tagged) > TAG_LIMIT:
            tagged.popitem(last=False)

    # ------------------------------------------------------------------
    def _calibrate(self) -> None:
        """One calibration point: steer the degree by issued accuracy."""
        issued = self._interval_issued
        hits = self._interval_issued_hits
        self._interval_loads = 0
        self._interval_issued = 0
        self._interval_issued_hits = 0
        self.calibrations += 1
        self._countdown -= 1
        if self._countdown > 0:
            return
        if issued < MIN_ISSUED_SAMPLE:
            # Too few prefetches to judge: at degree 0 (or in a phase
            # with no correlations) probe upward so the prefetcher can
            # re-engage when the pattern returns.
            if self.degree < DEGREE_MAX:
                self.degree += 1
            self._countdown = COUNTDOWN_SHORT
            return
        accuracy = hits / issued
        if accuracy >= ACCURACY_RAISE and self.degree < DEGREE_MAX:
            self.degree += 1
            self._countdown = COUNTDOWN_SHORT
        elif accuracy < ACCURACY_LOWER and self.degree > DEGREE_MIN:
            self.degree -= 1
            self._countdown = COUNTDOWN_LONG
        else:
            self._countdown = COUNTDOWN_SHORT
