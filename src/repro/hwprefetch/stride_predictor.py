"""PC-indexed stride predictor (Farkas et al. style).

Used by the stream-buffer prefetcher to decide *whether* a missing load is
worth a stream buffer (confidence) and *which* stride the stream should
follow.  This is the "stride predictor" row of the paper's Table 1.

Note this is distinct from the DLT's per-load stride tracking (section
3.3): this one is a small direct-mapped hardware table with 2-bit
confidence, the DLT's uses a 4-bit counter with the paper's asymmetric
+1/−7 update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(slots=True)
class _StrideEntry:
    tag: int = -1
    last_addr: int = 0
    stride: int = 0
    confidence: int = 0
    valid: bool = False


class StridePredictor:
    """Direct-mapped stride table with 2-bit saturating confidence."""

    CONFIDENCE_MAX = 3

    def __init__(self, entries: int = 1024) -> None:
        if entries <= 0:
            raise ValueError("predictor needs at least one entry")
        self.entries = entries
        self._table: List[_StrideEntry] = [
            _StrideEntry() for _ in range(entries)
        ]
        self.updates = 0
        self.replacements = 0

    def _entry(self, pc: int) -> _StrideEntry:
        return self._table[pc % self.entries]

    def update(self, pc: int, addr: int) -> None:
        """Train the predictor with one (pc, effective address) pair."""
        self.updates += 1
        entry = self._entry(pc)
        if not entry.valid or entry.tag != pc:
            if entry.valid:
                self.replacements += 1
            entry.tag = pc
            entry.last_addr = addr
            entry.stride = 0
            entry.confidence = 0
            entry.valid = True
            return
        stride = addr - entry.last_addr
        if stride == entry.stride:
            if entry.confidence < self.CONFIDENCE_MAX:
                entry.confidence += 1
        else:
            if entry.confidence > 0:
                entry.confidence -= 1
            else:
                entry.stride = stride
        entry.last_addr = addr

    def predict(self, pc: int, min_confidence: int = 2) -> Optional[int]:
        """Return the predicted stride for ``pc`` when confident enough.

        A zero stride is never returned (nothing to stream)."""
        entry = self._entry(pc)
        if (
            entry.valid
            and entry.tag == pc
            and entry.confidence >= min_confidence
            and entry.stride != 0
        ):
            return entry.stride
        return None

    def confidence_of(self, pc: int) -> int:
        """Current confidence for ``pc`` (0 when untracked)."""
        entry = self._entry(pc)
        if entry.valid and entry.tag == pc:
            return entry.confidence
        return 0
