"""Stride-filtered Markov predictor (the second level of Sherwood et
al.'s predictor-directed stream buffers, the paper's citation [27]).

The paper's baseline description: "The predictor-directed stream buffer
(PSB) can generate the next prefetch address without a fixed stride if a
Markov transition is found."  The stride predictor filters: only misses
the stride predictor cannot explain train the Markov table, which records
block-to-block transitions of the miss stream.  A stream buffer whose
stride prediction runs out can then follow recorded transitions instead.

This extension is **off by default** (``StreamBufferConfig.markov_entries
= 0``): the paper's own software-prefetching results were measured against
the stride-guided configuration of Table 1, and the headline comparison
keeps that baseline.  ``ablation_markov`` measures what the second level
adds.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class MarkovPredictor:
    """Bounded first-order transition table over miss block addresses."""

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ValueError("markov table needs at least one entry")
        self.entries = entries
        # previous block -> next block (LRU-bounded).
        self._table: OrderedDict = OrderedDict()
        self._last_block: Optional[int] = None
        self.trained = 0
        self.predictions = 0

    def train(self, block: int) -> None:
        """Record a miss-stream transition (stride-filtered by caller)."""
        previous = self._last_block
        self._last_block = block
        if previous is None or previous == block:
            return
        self._table[previous] = block
        self._table.move_to_end(previous)
        self.trained += 1
        while len(self._table) > self.entries:
            self._table.popitem(last=False)

    def predict(self, block: int) -> Optional[int]:
        """Next block after ``block``, if a transition was recorded."""
        target = self._table.get(block)
        if target is not None:
            self._table.move_to_end(block)
            self.predictions += 1
        return target

    def __len__(self) -> int:
        return len(self._table)
