"""Feedback-directed adaptive-degree next-line prefetcher.

Models ChampSim's ``next_line_linear`` / ``next_line_v2`` adaptive
prefetchers: a two-state controller (STATISTICS / BEST_DEGREE) that
sweeps every prefetch degree in turn, measures each one over a fixed
demand-load window, locks in the winner for a long exploitation window,
and then re-measures — so the degree tracks the workload's phases
instead of being a compile-time constant.

The ChampSim originals score each degree by core IPC; this hierarchy
hook has no core handle, so the score is the demand-load L1 hit rate
over the window — the component of IPC a prefetch degree actually
moves, and a deterministic function of the load stream (which the
differential suites require).

Prefetches are next-line runs of the current degree, stopped at the
page boundary exactly like the ChampSim code.
"""

from __future__ import annotations

from typing import Dict

PAGE_SIZE = 4096
#: Demand loads measured per candidate degree while in STATISTICS.
STATS_WINDOW = 256
#: Demand loads the winning degree runs before the next measurement.
BEST_WINDOW = 8192
DEGREE_MIN = 0
DEGREE_MAX = 4
INITIAL_DEGREE = 1

_STATE_STATISTICS = 0
_STATE_BEST = 1


class AdaptiveNextLinePrefetcher:
    """Next-line prefetching with a measured, phase-adaptive degree."""

    def __init__(
        self,
        hierarchy,
        line_size: int = 64,
        stats_window: int = STATS_WINDOW,
        best_window: int = BEST_WINDOW,
        max_degree: int = DEGREE_MAX,
    ) -> None:
        self.hierarchy = hierarchy
        self.line_size = line_size
        self.stats_window = stats_window
        self.best_window = best_window
        self.max_degree = max_degree

        self._state = _STATE_STATISTICS
        self.degree = min(INITIAL_DEGREE, max_degree)
        #: The degree currently being measured (STATISTICS only).
        self._probe_degree = self.degree
        self._window_loads = 0
        self._window_hits = 0
        #: degree -> hit rate measured in the current sweep.
        self._scores: Dict[int, float] = {}

        self.prefetches_issued = 0
        self.sweeps_completed = 0
        self.best_degree = self.degree

    # ------------------------------------------------------------------
    def on_demand_load(
        self, pc: int, addr: int, l1_hit: bool, cycle: int
    ) -> None:
        self._window_loads += 1
        if l1_hit:
            self._window_hits += 1
        degree = self.degree
        if degree > 0:
            block = addr - (addr % self.line_size)
            page = addr // PAGE_SIZE
            for step in range(1, degree + 1):
                target = block + step * self.line_size
                if target // PAGE_SIZE != page:
                    break  # never cross the page, as the original does
                if self.hierarchy.hardware_prefetch(target, cycle):
                    self.prefetches_issued += 1
        self._advance()

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Run the STATISTICS / BEST_DEGREE state machine."""
        if self._state == _STATE_STATISTICS:
            if self._window_loads < self.stats_window:
                return
            self._scores[self._probe_degree] = (
                self._window_hits / self._window_loads
            )
            self._window_loads = 0
            self._window_hits = 0
            if self._probe_degree < self.max_degree:
                self._probe_degree += 1
                self.degree = self._probe_degree
                return
            # Sweep complete: lock in the winner (ties prefer the
            # smaller degree — less bus pressure for the same hit rate).
            self.best_degree = min(
                self._scores, key=lambda d: (-self._scores[d], d)
            )
            self.degree = self.best_degree
            self._state = _STATE_BEST
            self.sweeps_completed += 1
        else:
            if self._window_loads < self.best_window:
                return
            # Exploitation window over: measure again from degree 0.
            self._window_loads = 0
            self._window_hits = 0
            self._scores = {}
            self._probe_degree = DEGREE_MIN
            self.degree = DEGREE_MIN
            self._state = _STATE_STATISTICS
