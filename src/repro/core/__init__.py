"""The paper's contribution: the self-repairing dynamic prefetch optimizer.

Pipeline: :func:`~repro.core.classify.classify_loads` partitions a trace's
delinquent loads (Stride / Pointer / Same-Object),
:func:`~repro.core.groups.build_groups` forms same-object groups,
:mod:`~repro.core.insertion` weaves prefetch instructions into the trace,
and :mod:`~repro.core.repair` adapts each group's prefetch distance as
delinquent-load events keep arriving.  :class:`PrefetchOptimizer`
orchestrates all of it as helper-thread jobs.
"""

from .classify import LoadClass, TraceLoad, classify_loads, collect_loads
from .distance import DISTANCE_CAP, estimate_distance, max_distance
from .groups import SameObjectGroup, build_groups
from .insertion import (
    insert_prefetches,
    make_stride_record,
    plan_group_offsets,
)
from .optimizer import OptimizationJob, OptimizerStats, PrefetchOptimizer
from .policy import PrefetchPolicy
from .repair import PrefetchRecord, repair

__all__ = [
    "DISTANCE_CAP",
    "LoadClass",
    "OptimizationJob",
    "OptimizerStats",
    "PrefetchOptimizer",
    "PrefetchPolicy",
    "PrefetchRecord",
    "SameObjectGroup",
    "TraceLoad",
    "build_groups",
    "classify_loads",
    "collect_loads",
    "estimate_distance",
    "insert_prefetches",
    "make_stride_record",
    "max_distance",
    "plan_group_offsets",
    "repair",
]
