"""Prefetch insertion into hot traces (paper sections 3.4.2–3.4.3).

Two transformations:

* **Stride-based same-object prefetching** — per group, emit a prefetch at
  the minimum member offset (plus ``stride × distance``); walk the
  remaining member offsets in ascending order, skipping any within a cache
  line of the previous prefetch; after skipped loads, prefetch one extra
  cache block (the skipped offset may straddle into the next line).
* **Pointer prefetching** — after a delinquent pointer load
  ``ldq p, d(p)``, insert ``ldq_nf s, d(p); prefetch 0(s)``: the
  non-faulting dereference touches the next object's line *and* yields the
  pointer two iterations out for the prefetch.  Scratch registers come
  from the optimizer-reserved set.

Insertion always starts from the trace's *base body* (the original,
prefetch-free instruction sequence), so re-optimization regenerates rather
than stacking prefetch upon prefetch; existing repair state is carried
over by the optimizer through record inheritance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode
from ..isa.registers import OPTIMIZER_SCRATCH_REGISTERS
from ..trident.trace import TraceInstruction
from .classify import TraceLoad
from .groups import SameObjectGroup
from .repair import PrefetchRecord


def plan_group_offsets(
    sorted_offsets: Sequence[int], line_size: int
) -> List[int]:
    """The section-3.4.2 skip algorithm: which offsets get a prefetch.

    Given the group's member displacements in ascending order, returns the
    offsets to prefetch (before the stride×distance displacement is
    added).
    """
    emitted: List[int] = []
    prev: Optional[int] = None
    pending_extra = False
    for disp in sorted_offsets:
        # A pending extra block is flushed before moving on — and the
        # flushed block becomes the new coverage anchor, so an offset
        # falling inside *it* is skipped too (each block prefetched once).
        if pending_extra and prev is not None and disp - prev >= line_size:
            prev = prev + line_size
            emitted.append(prev)
            pending_extra = False
        if prev is None or disp - prev >= line_size:
            emitted.append(disp)
            prev = disp
        else:
            pending_extra = True  # covered by the previous prefetch's line
    if pending_extra and prev is not None:
        emitted.append(prev + line_size)
    return emitted


def make_stride_record(
    group: SameObjectGroup,
    distance: int,
    line_size: int,
) -> PrefetchRecord:
    """Build the repair record (and offsets) for one stride group.

    Only the group members whose displacement falls within a line of a
    planned prefetch are bound to the record (``load_pcs``): a member the
    plan does not cover (it was not delinquent when the plan was made)
    must stay unbound so that, if it later turns delinquent, the
    optimizer regenerates the trace with a wider plan instead of
    pointlessly repairing a prefetch that never touches its line.
    """
    offsets = plan_group_offsets(group.sorted_offsets(), line_size)
    covered = tuple(
        sorted(
            {
                m.orig_pc
                for m in group.members
                if any(0 <= m.disp - o < line_size for o in offsets)
            }
        )
    )
    return PrefetchRecord(
        group_key=group.load_pcs,
        load_pcs=covered or group.load_pcs,
        base_reg=group.base_reg,
        stride=group.stride or 0,
        distance=distance,
        base_offsets=tuple(offsets),
        kind="stride",
    )


def _emit_stride_prefetches(record: PrefetchRecord) -> List[TraceInstruction]:
    """Materialise a record's prefetch instructions."""
    out: List[TraceInstruction] = []
    record.instructions = []
    for offset in record.base_offsets:
        inst = Instruction(
            Opcode.PREFETCH,
            ra=record.base_reg,
            disp=offset + record.stride * record.distance,
            meta={"record": record},
        )
        record.instructions.append(inst)
        out.append(
            TraceInstruction(
                inst=inst,
                orig_pc=record.load_pcs[0],
                synthetic=True,
            )
        )
    return out


def _emit_pointer_prefetch(
    load: TraceLoad, scratch: int
) -> Tuple[List[TraceInstruction], PrefetchRecord]:
    """The section-3.4.3 double dereference for one pointer load."""
    record = PrefetchRecord(
        group_key=(load.orig_pc,),
        load_pcs=(load.orig_pc,),
        base_reg=load.dest_reg if load.dest_reg is not None else load.base_reg,
        stride=0,
        distance=1,
        base_offsets=(0,),
        kind="pointer",
    )
    deref = Instruction(
        Opcode.LDQ_NF,
        rd=scratch,
        ra=load.dest_reg,
        disp=load.disp,
        meta={"record": record},
    )
    prefetch = Instruction(
        Opcode.PREFETCH, ra=scratch, disp=0, meta={"record": record}
    )
    record.instructions = [prefetch]
    body = [
        TraceInstruction(inst=deref, orig_pc=load.orig_pc, synthetic=True),
        TraceInstruction(inst=prefetch, orig_pc=load.orig_pc, synthetic=True),
    ]
    return body, record


def insert_prefetches(
    base_body: List[TraceInstruction],
    stride_records: List[Tuple[SameObjectGroup, PrefetchRecord]],
    pointer_loads: List[TraceLoad],
) -> Tuple[List[TraceInstruction], Dict[int, PrefetchRecord]]:
    """Rebuild a trace body with prefetches woven in.

    * each stride group's prefetches go immediately before its first
      member load (the base register is live there);
    * each pointer load's dereference pair goes immediately after it.

    Returns (new body, load-pc -> record map).
    """
    before: Dict[int, List[TraceInstruction]] = {}
    after: Dict[int, List[TraceInstruction]] = {}
    records: Dict[int, PrefetchRecord] = {}

    for group, record in stride_records:
        emitted = _emit_stride_prefetches(record)
        before.setdefault(group.first_index, []).extend(emitted)
        for pc in record.load_pcs:
            records[pc] = record

    scratch_cycle = 0
    for load in pointer_loads:
        if load.orig_pc in records or load.dest_reg is None:
            continue
        scratch = OPTIMIZER_SCRATCH_REGISTERS[
            scratch_cycle % len(OPTIMIZER_SCRATCH_REGISTERS)
        ]
        scratch_cycle += 1
        emitted, record = _emit_pointer_prefetch(load, scratch)
        after.setdefault(load.index, []).extend(emitted)
        records[load.orig_pc] = record

    new_body: List[TraceInstruction] = []
    for index, tinst in enumerate(base_body):
        if index in before:
            new_body.extend(before[index])
        new_body.append(tinst)
        if index in after:
            new_body.extend(after[index])
    return new_body, records
