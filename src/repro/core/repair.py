"""Self-repair state and the distance-adjustment rule (sections 3.5.1–2).

Every inserted stride prefetch (one per same-object group) owns a
:class:`PrefetchRecord` — the "relevant information from all delinquent
loads ... stored in a memory buffer used by the optimizer" of the paper:
the current distance, the repair budget, and the previous average access
latency.

The repair rule, verbatim from section 3.5.2:

* increase the distance by 1, up to the maximal distance, because more
  lead time should reduce the load's latency;
* but compute the load's average access latency each repair, and when it
  is observed to *increase* (the prefetch now displaces useful data, or
  runs past the stream), step the distance back down by 1;
* budget the search: ``2 × max distance`` repairs, then set the mature
  flag and stop.

Repairing patches the live ``PREFETCH`` instruction objects in place —
``disp = base_offset + stride × distance`` — no trace regeneration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..isa.instruction import Instruction

#: Relative increase in average access latency that counts as "observed to
#: start to increase" (section 3.5.2).  Latency samples are noisy (bus
#: contention, window phase); without a tolerance the search dithers.
LATENCY_INCREASE_TOLERANCE = 1.10

#: Consecutive boundary-pinned repairs before maturing.
PIN_LIMIT = 3

#: Window of recent repairs inspected for a two-distance oscillation.
OSCILLATION_WINDOW = 6

#: Longer horizon: a climb that has bought no improvement across this many
#: repairs is declared done wherever it is.  Must comfortably exceed the
#: stream buffers' 8-entry lead, through which a climb sees flat latency
#: before its gains begin.
STAGNATION_WINDOW = 12


@dataclass
class PrefetchRecord:
    """Repair bookkeeping for one same-object group's prefetches."""

    group_key: Tuple[int, ...]       # the group's load PCs (identity)
    load_pcs: Tuple[int, ...]        # all loads this record serves
    base_reg: int
    stride: int
    distance: int
    #: One entry per emitted PREFETCH: the group-relative offset it covers.
    base_offsets: Tuple[int, ...]
    #: The live instruction objects inside the linked trace.
    instructions: List[Instruction] = field(default_factory=list)
    max_distance: int = 2
    repairs_left: int = 4
    prev_avg_latency: Optional[float] = None
    repairs_done: int = 0
    kind: str = "stride"             # "stride" or "pointer"
    mature: bool = False
    #: Consecutive repairs spent pinned at a search boundary (distance 1
    #: or the maximal distance).
    pinned_repairs: int = 0
    #: Consecutive windows in which the latency rose beyond tolerance.
    consecutive_increases: int = 0
    #: True right after a distance change: the next monitoring window
    #: straddles the transition (prefetches in flight were issued under
    #: the old distance and pace) and must not steer the search.
    settling: bool = False
    #: History of (distance, avg latency) pairs — observability for the
    #: examples and the distance-search ablation.
    history: List[Tuple[int, float]] = field(default_factory=list)

    def apply_distance(self) -> None:
        """Patch the prefetch instruction bits with the current distance."""
        for inst, offset in zip(self.instructions, self.base_offsets):
            inst.disp = offset + self.stride * self.distance

    def set_budget_from_max(
        self, max_distance: int, multiplier: float = 2.0
    ) -> None:
        """Initialise the repair budget to ``multiplier × max distance``
        (section 3.5.2's rule; the paper's multiplier is 2), never
        shrinking an existing budget mid-search."""
        self.max_distance = max_distance
        budget = max(1, int(multiplier * max_distance))
        if budget > self.repairs_left:
            self.repairs_left = budget


def repair(record: PrefetchRecord, current_avg_latency: float) -> bool:
    """One repair step; returns True when the record matured.

    ``current_avg_latency`` is the group's average access latency over the
    DLT window that fired the event.
    """
    if record.mature:
        return True
    prev = record.prev_avg_latency
    old_distance = record.distance
    increased = (
        prev is not None
        and current_avg_latency > prev * LATENCY_INCREASE_TOLERANCE
    )
    if increased:
        record.consecutive_increases += 1
    else:
        record.consecutive_increases = 0
    # Window-to-window latency is noisy (other loads' repairs, stream
    # buffer phase); a single bad sample must not unwind the climb, so
    # the step-back requires two increases in a row.
    if record.consecutive_increases >= 2 and record.distance > 1:
        record.distance -= 1
        record.consecutive_increases = 0
    elif record.distance < record.max_distance:
        record.distance += 1
    # else: at the cap and not regressing — hold position.
    record.prev_avg_latency = current_avg_latency
    record.repairs_done += 1
    record.repairs_left -= 1
    # History pairs each *measured* latency with the distance it was
    # measured at (the distance before this repair's move).
    record.history.append((old_distance, current_avg_latency))
    record.apply_distance()

    # Search-exhaustion detection (engineering additions to section
    # 3.5.2's 2x budget rule; the paper's 100M-instruction runs can
    # afford to burn the budget one window at a time, ours cannot):
    #
    # * a search pinned at a boundary (distance 1, or the maximal
    #   distance, with the latency not moving) is done;
    # * a search ping-ponging between two adjacent distances has found
    #   the knee of the latency curve — settle at the better of the two.
    if record.distance == old_distance and (
        record.distance >= record.max_distance or record.distance <= 1
    ):
        record.pinned_repairs += 1
    else:
        record.pinned_repairs = 0
    if record.pinned_repairs >= PIN_LIMIT:
        record.mature = True
    elif _settle_oscillation(record):
        record.mature = True
    elif _settle_stagnation(record):
        record.mature = True
    if record.repairs_left <= 0:
        record.mature = True
    return record.mature


def _settle_oscillation(record: PrefetchRecord) -> bool:
    """Detect a search that has stopped making progress — circling a
    small set of distances with no latency improvement — and park it at
    the distance with the best observed mean latency.

    This is the practical termination of section 3.5.1's "repeated until
    the prefetch distance causes the load to stop triggering delinquent
    load events": a load that stays delinquent at its best achievable
    distance would otherwise grind through the whole 2x budget.
    """
    recent = record.history[-OSCILLATION_WINDOW:]
    if len(recent) < OSCILLATION_WINDOW:
        return False
    distances = [d for d, _lat in recent]
    if max(distances) - min(distances) > 2:
        return False  # still travelling
    if abs(distances[-1] - distances[0]) > 1:
        return False  # net drift: the climb is still going somewhere
    half = OSCILLATION_WINDOW // 2
    older = [lat for _d, lat in recent[:half]]
    newer = [lat for _d, lat in recent[half:]]
    if sum(newer) / half < 0.98 * (sum(older) / half):
        return False  # still improving
    _park_at_best(record, recent)
    return True


def _settle_stagnation(record: PrefetchRecord) -> bool:
    """A long climb with no latency improvement anywhere in the last
    STAGNATION_WINDOW repairs is not going to find one (the hardware
    prefetcher already covers the load, or the bottleneck is elsewhere).
    Park at the best distance seen in that window."""
    recent = record.history[-STAGNATION_WINDOW:]
    if len(recent) < STAGNATION_WINDOW:
        return False
    half = STAGNATION_WINDOW // 2
    older = [lat for _d, lat in recent[:half]]
    newer = [lat for _d, lat in recent[half:]]
    if sum(newer) / half < 0.98 * (sum(older) / half):
        return False
    _park_at_best(record, recent)
    return True


def _park_at_best(record: PrefetchRecord, samples) -> None:
    """Set the record to the distance with the best mean latency among
    ``samples`` (single samples are too noisy to trust)."""
    means = {}
    for d in {dd for dd, _lat in samples}:
        observed = [lat for dd, lat in samples if dd == d]
        means[d] = sum(observed) / len(observed)
    record.distance = min(means, key=means.get)
    record.apply_distance()
