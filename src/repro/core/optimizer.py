"""The dynamic prefetch optimizer (paper section 3.4–3.5).

This is the code the helper thread runs on a delinquent-load event.  The
decision tree, per the paper:

1. Gather *all* currently delinquent loads in the event's trace (the event
   took thousands of cycles to be serviced; siblings may have crossed the
   threshold meanwhile — partial windows included).
2. If the event's load has **no prefetch yet** → classification →
   same-object grouping → prefetch insertion → a regenerated trace is
   linked in place of the old one.  Initial distances depend on the
   policy: the estimated distance of equation (2) for BASIC/WHOLE_OBJECT,
   1 for the self-repairing policies.
3. If the load **already has a prefetch** and the policy repairs →
   adjust the group's distance by ±1 (see :mod:`repro.core.repair`) and
   patch the live prefetch instructions; no regeneration.
4. Loads that cannot be prefetched or repaired are marked *mature* in the
   DLT so they stop firing events.

The optimizer returns an *apply* closure plus a work-cycle estimate; the
Trident runtime charges the helper thread and applies the effects when the
helper's time is up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..config import MachineConfig, PrefetchPolicy, TridentConfig
from ..trident.code_cache import CodeCache
from ..trident.dlt import DelinquentLoadTable
from ..trident.trace import HotTrace
from ..trident.watch_table import WatchTable
from .classify import LoadClass, TraceLoad, classify_loads, collect_loads
from .distance import estimate_distance, max_distance
from .groups import SameObjectGroup, build_groups
from .insertion import insert_prefetches, make_stride_record
from .repair import PrefetchRecord, repair


@dataclass
class OptimizerStats:
    """What the prefetch optimizer did over a run."""

    insertion_jobs: int = 0
    repair_jobs: int = 0
    traces_regenerated: int = 0
    prefetches_inserted: int = 0
    pointer_prefetches_inserted: int = 0
    loads_targeted: Set[int] = field(default_factory=set)
    loads_matured: int = 0
    repairs_applied: int = 0
    distance_increments: int = 0
    distance_decrements: int = 0


@dataclass
class OptimizationJob:
    """What the runtime schedules on the helper thread."""

    apply: Callable[[], None]
    work_cycles: float
    kind: str


# Helper-job completion actions are *objects*, not closures: an in-flight
# job rides inside simulator snapshots (repro.checkpoint), and pickle can
# serialise an instance-plus-references graph but not a closure.  Every
# field below is part of the simulated object graph already, so the
# snapshot's memo keeps the shared identities (trace, records, optimizer)
# intact across a restore.


@dataclass
class _MatureApply:
    """Completion action: mark loads mature so they stop firing events."""

    opt: "PrefetchOptimizer"
    pcs: List[int]

    def __call__(self) -> None:
        dlt = self.opt.dlt
        for pc in self.pcs:
            dlt.set_mature(pc)
        self.opt.stats.loads_matured += len(self.pcs)


@dataclass
class _RepairApply:
    """Completion action: one repair pass over a trace's records."""

    opt: "PrefetchOptimizer"
    trace: HotTrace
    to_repair: List[PrefetchRecord]

    def __call__(self) -> None:
        self.opt.stats.repair_jobs += 1
        for rec in self.to_repair:
            self.opt._repair_one(self.trace, rec)


@dataclass
class _InsertionApply:
    """Completion action: link a regenerated trace with its prefetches."""

    opt: "PrefetchOptimizer"
    new_trace: HotTrace
    stride_records: List[Tuple[SameObjectGroup, PrefetchRecord]]
    pointer_loads: List[TraceLoad]
    matured: List[int]
    delinquent_pcs: Set[int]
    records: Dict[int, PrefetchRecord]

    def __call__(self) -> None:
        opt = self.opt
        stats = opt.stats
        dlt = opt.dlt
        new_trace = self.new_trace
        stats.insertion_jobs += 1
        stats.traces_regenerated += 1
        stats.prefetches_inserted += sum(
            len(rec.base_offsets)
            for _g, rec in self.stride_records
        )
        stats.pointer_prefetches_inserted += len(self.pointer_loads)
        stats.loads_targeted.update(self.records.keys())
        stats.loads_matured += len(self.matured)
        for pc in self.matured:
            dlt.set_mature(pc)
        for pc in self.delinquent_pcs:
            if pc not in self.matured:
                dlt.clear_window(pc)
        # Initialise repair budgets from the trace's best pass.
        opt._refresh_max_distance(new_trace)
        previous = opt.code_cache.link(new_trace)
        if previous is not None:
            opt.watch_table.remove(previous.trace_id)
        opt.watch_table.register(
            new_trace.trace_id, new_trace.head_pc, len(new_trace.body)
        )
        obs = opt.obs
        if obs is not None:
            opt._m_insertions.inc()
            for _group, rec in self.stride_records:
                opt._h_distance.observe(rec.distance)
                obs.emit(
                    "insert",
                    None,
                    pc=rec.load_pcs[0],
                    load_pcs=list(rec.load_pcs),
                    distance=rec.distance,
                    prefetch_kind="stride",
                    trace_id=new_trace.trace_id,
                )
            for load in self.pointer_loads:
                obs.emit(
                    "insert",
                    None,
                    pc=load.orig_pc,
                    load_pcs=[load.orig_pc],
                    distance=None,
                    prefetch_kind="pointer",
                    trace_id=new_trace.trace_id,
                )
        # Non-adaptive policies never repair: a single shot per load.
        if not opt.policy.adaptive_repair:
            for pc in self.records:
                dlt.set_mature(pc)


class PrefetchOptimizer:
    """Implements prefetch insertion and self-repair over hot traces."""

    def __init__(
        self,
        machine: MachineConfig,
        trident: TridentConfig,
        policy: PrefetchPolicy,
        dlt: DelinquentLoadTable,
        watch_table: WatchTable,
        code_cache: CodeCache,
        initial_distance_mode: Optional[str] = None,
        trace_ids: Optional[object] = None,
    ) -> None:
        self.machine = machine
        self.trident = trident
        self.policy = policy
        self.dlt = dlt
        self.watch_table = watch_table
        self.code_cache = code_cache
        #: Per-runtime trace-id allocator (None -> module-global ids).
        self.trace_ids = trace_ids
        #: "one" (paper default for self-repairing) or "estimate"
        #: (equation 2; also the paper's explored alternative for the
        #: adaptive scheme — the ablation of section 5.3).
        if initial_distance_mode is None:
            initial_distance_mode = (
                "one" if policy.adaptive_repair else "estimate"
            )
        self.initial_distance_mode = initial_distance_mode
        self.stats = OptimizerStats()
        # Observability hook (repro.obs).  All emit sites below run inside
        # helper-job apply closures, so they pass cycle=None and inherit
        # the observer's logical clock (the job's completion cycle).
        self.obs = None
        self._h_distance = None
        self._m_repairs = None
        self._m_insertions = None

    def attach_observer(self, obs) -> None:
        """Wire the emit hooks and cache the instruments."""
        from ..obs.metrics import DISTANCE_BUCKETS

        self.obs = obs
        self._h_distance = obs.metrics.histogram(
            "optimizer.prefetch_distance", DISTANCE_BUCKETS
        )
        self._m_repairs = obs.metrics.counter("optimizer.repairs")
        self._m_insertions = obs.metrics.counter("optimizer.insertions")

    # ------------------------------------------------------------------
    # Entry point.
    # ------------------------------------------------------------------
    def process_delinquent_load(
        self, trace: HotTrace, load_pc: int
    ) -> Optional[OptimizationJob]:
        """Handle one delinquent-load event for ``trace``.

        Returns the job to run on the helper thread, or None when there is
        nothing to do (the runtime still clears the trace's optimization
        flag).
        """
        if not self.policy.inserts_prefetches:
            # Monitoring-only configuration: acknowledge the load so it
            # stops firing, insert nothing.
            return self._make_mature_job([load_pc], cost=0.0)
        records: Dict[int, PrefetchRecord] = trace.meta.get("records", {})
        record = records.get(load_pc)
        if record is not None:
            if self.policy.adaptive_repair and record.kind == "stride":
                return self._make_repair_job(trace, load_pc, record)
            # Fixed-distance policies (and pointer prefetches, which have
            # no distance to tune): one shot, then mature.
            return self._make_mature_job([load_pc], cost=0.0)
        return self._make_insertion_job(trace, load_pc)

    def _delinquent_records(
        self, trace: HotTrace, event_pc: int
    ) -> List[PrefetchRecord]:
        """The event's record plus every other repairable record in the
        trace with a currently-delinquent member.

        Section 3.4.1: by the time the helper runs, "the optimizer first
        checks if there are other loads that need to be prefetched in the
        same hot trace" — the repair path does the same, so one helper
        dispatch (and its 2000-cycle startup) services every group that
        needs adjusting.
        """
        records: Dict[int, PrefetchRecord] = trace.meta.get("records", {})
        ordered: List[PrefetchRecord] = []
        seen = set()
        event_record = records.get(event_pc)
        if event_record is not None:
            ordered.append(event_record)
            seen.add(id(event_record))
        for record in records.values():
            if id(record) in seen or record.kind != "stride":
                continue
            if record.mature:
                continue
            if any(self.dlt.is_delinquent_now(pc) for pc in record.load_pcs):
                ordered.append(record)
                seen.add(id(record))
        return ordered

    # ------------------------------------------------------------------
    # Insertion.
    # ------------------------------------------------------------------
    def _gather_delinquent_pcs(self, body, event_pc: int) -> Set[int]:
        pcs = {event_pc}
        for tinst in body:
            if tinst.inst.is_load and not tinst.synthetic:
                if self.dlt.is_delinquent_now(tinst.orig_pc):
                    pcs.add(tinst.orig_pc)
        return pcs

    def _initial_distance(self, pcs: Tuple[int, ...], trace: HotTrace) -> int:
        if self.initial_distance_mode == "one":
            return 1
        # Equation (2): average miss latency over the group's delinquent
        # loads divided by the trace's average iteration time.
        entry_times = self.watch_table.lookup(trace.trace_id)
        avg_cycles = (
            entry_times.average_execution_time()
            if entry_times is not None
            else None
        )
        latencies = []
        for pc in pcs:
            dlt_entry = self.dlt.lookup(pc)
            if dlt_entry is not None and dlt_entry.miss_counter:
                latencies.append(dlt_entry.average_miss_latency())
        if not latencies:
            return 1
        return estimate_distance(
            sum(latencies) / len(latencies), avg_cycles
        )

    def _make_insertion_job(
        self, trace: HotTrace, event_pc: int
    ) -> Optional[OptimizationJob]:
        base_body = [t.copy() for t in trace.body if not t.synthetic]
        delinquent_pcs = self._gather_delinquent_pcs(base_body, event_pc)
        loads = collect_loads(base_body)
        classify_loads(base_body, loads, delinquent_pcs, self.dlt)

        groups = build_groups(
            loads, grouping=self.policy.same_object_grouping
        )
        old_records: Dict[int, PrefetchRecord] = trace.meta.get("records", {})

        stride_records: List[Tuple[SameObjectGroup, PrefetchRecord]] = []
        pointer_loads: List[TraceLoad] = []
        matured: List[int] = []

        for group in groups:
            if group.stride_predictable:
                record = make_stride_record(
                    group,
                    distance=self._initial_distance(
                        group.delinquent_pcs, trace
                    ),
                    line_size=self.machine.line_size,
                )
                inherited = self._inherit_record(group, old_records)
                if inherited is not None:
                    record.distance = inherited.distance
                    record.prev_avg_latency = inherited.prev_avg_latency
                    record.repairs_left = inherited.repairs_left
                    record.repairs_done = inherited.repairs_done
                    record.max_distance = inherited.max_distance
                    record.history = list(inherited.history)
                stride_records.append((group, record))
            else:
                # Not stride predictable: pointer members get the double
                # dereference; anything else cannot be prefetched.
                for member in group.delinquent_members:
                    if member.load_class is LoadClass.POINTER:
                        pointer_loads.append(member)
                    else:
                        matured.append(member.orig_pc)

        # Delinquent loads outside every group (grouping disabled drops
        # non-delinquent neighbours, so this only catches unclassified
        # singletons under BASIC).
        grouped_pcs = set()
        for group in groups:
            grouped_pcs.update(group.load_pcs)
        for load in loads:
            if load.delinquent and load.orig_pc not in grouped_pcs:
                if load.load_class is LoadClass.POINTER:
                    pointer_loads.append(load)
                else:
                    matured.append(load.orig_pc)

        if not stride_records and not pointer_loads:
            return self._make_mature_job(
                matured or [event_pc],
                cost=len(base_body)
                * self.trident.optimizer_cycles_per_instruction,
            )

        new_body, records = insert_prefetches(
            base_body, stride_records, pointer_loads
        )
        new_trace = trace.derive(new_body, ids=self.trace_ids)
        new_trace.meta["records"] = records

        work = (
            len(new_body) * self.trident.optimizer_cycles_per_instruction
        )
        return OptimizationJob(
            apply=_InsertionApply(
                opt=self,
                new_trace=new_trace,
                stride_records=stride_records,
                pointer_loads=pointer_loads,
                matured=matured,
                delinquent_pcs=delinquent_pcs,
                records=records,
            ),
            work_cycles=work,
            kind="insert",
        )

    @staticmethod
    def _inherit_record(
        group: SameObjectGroup, old_records: Dict[int, PrefetchRecord]
    ) -> Optional[PrefetchRecord]:
        """Carry repair state across a trace regeneration."""
        for pc in group.load_pcs:
            record = old_records.get(pc)
            if record is not None and record.kind == "stride":
                return record
        return None

    # ------------------------------------------------------------------
    # Repair.
    # ------------------------------------------------------------------
    def _refresh_max_distance(self, trace: HotTrace) -> None:
        """Recompute every record's maximal distance (section 3.5.2)."""
        min_time = self.watch_table.min_execution_time(trace.trace_id)
        records: Dict[int, PrefetchRecord] = trace.meta.get("records", {})
        seen = set()
        for record in records.values():
            if id(record) in seen:
                continue
            seen.add(id(record))
            record.set_budget_from_max(
                max_distance(self.machine.memory_latency, min_time),
                multiplier=self.trident.repair_budget_multiplier,
            )

    def _repair_one(self, trace: HotTrace, record: PrefetchRecord) -> None:
        """Apply one repair step to ``record`` using its DLT metrics."""
        dlt = self.dlt
        stats = self.stats
        if record.mature:
            for pc in record.load_pcs:
                dlt.set_mature(pc)
            return
        # The maximal distance tracks the trace's best observed pass.
        min_time = self.watch_table.min_execution_time(trace.trace_id)
        record.set_budget_from_max(
            max_distance(self.machine.memory_latency, min_time),
            multiplier=self.trident.repair_budget_multiplier,
        )
        # Measure the group through its worst currently-monitored member
        # (the member that keeps it delinquent).
        current = None
        for pc in record.load_pcs:
            entry = dlt.lookup(pc)
            if entry is not None and entry.access_counter:
                latency = entry.average_access_latency(
                    self.machine.l1.latency
                )
                if current is None or latency > current:
                    current = latency
        if current is None:
            return
        if record.settling:
            # The window that just ended straddled the previous distance
            # change; discard it and measure a clean one.
            record.settling = False
            for pc in record.load_pcs:
                dlt.clear_window(pc)
            return
        old_distance = record.distance
        matured = repair(record, current)
        record.settling = record.distance != old_distance
        if record.distance > old_distance:
            stats.distance_increments += 1
        elif record.distance < old_distance:
            stats.distance_decrements += 1
        stats.repairs_applied += 1
        obs = self.obs
        if obs is not None:
            self._m_repairs.inc()
            self._h_distance.observe(record.distance)
            obs.emit(
                "repair",
                None,
                pc=record.load_pcs[0],
                load_pcs=list(record.load_pcs),
                old_distance=old_distance,
                new_distance=record.distance,
                avg_latency=current,
                mature=matured,
            )
        for pc in record.load_pcs:
            if matured:
                dlt.set_mature(pc)
            else:
                dlt.clear_window(pc)
        if matured:
            stats.loads_matured += len(record.load_pcs)

    def _make_repair_job(
        self, trace: HotTrace, load_pc: int, record: PrefetchRecord
    ) -> OptimizationJob:
        to_repair = self._delinquent_records(trace, load_pc)
        return OptimizationJob(
            apply=_RepairApply(opt=self, trace=trace, to_repair=to_repair),
            work_cycles=self.trident.repair_cycles * max(1, len(to_repair)),
            kind="repair",
        )

    # ------------------------------------------------------------------
    def _make_mature_job(
        self, pcs: List[int], cost: float
    ) -> OptimizationJob:
        return OptimizationJob(
            apply=_MatureApply(opt=self, pcs=pcs),
            work_cycles=cost,
            kind="mature",
        )
