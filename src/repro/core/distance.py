"""Prefetch-distance arithmetic (paper section 3.5).

Two quantities:

* the **estimated distance** of equation (2) — what ADORE-style systems
  compute once and freeze::

      distance = average load miss latency / average cycles per iteration

* the **maximal distance** of section 3.5.2 — the repair search's upper
  bound::

      max distance = memory access latency / trace minimal execution time

Both are clamped to ``[1, cap]``; the cap is a sanity bound for degenerate
traces (a two-instruction trace would otherwise yield distances in the
hundreds, displacing half the cache).
"""

from __future__ import annotations

from typing import Optional

#: Upper clamp on any prefetch distance.
DISTANCE_CAP = 64


def estimate_distance(
    avg_miss_latency: float,
    avg_trace_cycles: Optional[float],
    cap: int = DISTANCE_CAP,
) -> int:
    """Equation (2).  Falls back to 1 when no trace timing exists yet."""
    if not avg_trace_cycles or avg_trace_cycles <= 0:
        return 1
    distance = round(avg_miss_latency / avg_trace_cycles)
    return max(1, min(cap, distance))


def max_distance(
    memory_latency: int,
    trace_min_execution_time: Optional[float],
    cap: int = DISTANCE_CAP,
) -> int:
    """Section 3.5.2's repair bound.  At least 2 so a repair search always
    has somewhere to go from the initial distance of 1."""
    if not trace_min_execution_time or trace_min_execution_time <= 0:
        return 2
    bound = int(memory_latency / trace_min_execution_time)
    return max(2, min(cap, bound))
