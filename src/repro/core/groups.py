"""Same-object grouping (paper section 3.4.1, "Same Object").

Loads that share a live base register address fields of the same object,
so one prefetch per touched cache block covers them all, and the
self-repairing optimizer can repair the whole group with a single event
rather than one event per field.

A group is keyed by (base register, definition version): all members see
the same base value.  A group is *stride predictable* when at least one
delinquent member is classified Stride; it is a *pointer group* when its
base is produced by a pointer load.  Under the BASIC policy (no grouping)
every delinquent load forms its own degenerate group — the paper's
"degenerate case is that a group can consist of only one single load".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .classify import LoadClass, TraceLoad


@dataclass
class SameObjectGroup:
    """A set of loads off one live base register."""

    base_reg: int
    base_version: int
    members: List[TraceLoad] = field(default_factory=list)

    @property
    def key(self) -> Tuple[int, int]:
        return (self.base_reg, self.base_version)

    @property
    def stride(self) -> Optional[int]:
        """The group's stride: taken from a delinquent Stride member,
        falling back to any Stride member."""
        fallback = None
        for load in self.members:
            if load.load_class is LoadClass.STRIDE and load.stride:
                if load.delinquent:
                    return load.stride
                if fallback is None:
                    fallback = load.stride
        return fallback

    @property
    def stride_predictable(self) -> bool:
        return self.stride is not None

    @property
    def delinquent_members(self) -> List[TraceLoad]:
        return [m for m in self.members if m.delinquent]

    @property
    def load_pcs(self) -> Tuple[int, ...]:
        return tuple(sorted({m.orig_pc for m in self.members}))

    @property
    def delinquent_pcs(self) -> Tuple[int, ...]:
        return tuple(sorted({m.orig_pc for m in self.delinquent_members}))

    @property
    def first_index(self) -> int:
        """Trace-body position of the earliest member (insertion point)."""
        return min(m.index for m in self.members)

    def sorted_offsets(self) -> List[int]:
        """Distinct *delinquent* member displacements, ascending.

        Section 3.4.2 walks the delinquent loads' offsets; non-delinquent
        same-object neighbours are covered incidentally when they share a
        line, but do not earn prefetches of their own."""
        offsets = sorted({m.disp for m in self.delinquent_members})
        if offsets:
            return offsets
        return sorted({m.disp for m in self.members})


def build_groups(
    loads: List[TraceLoad],
    grouping: bool = True,
) -> List[SameObjectGroup]:
    """Partition classified loads into same-object groups.

    Only groups containing at least one *delinquent* load are returned —
    a group exists to serve delinquent loads; covering their non-delinquent
    same-object neighbours is the bonus.  With ``grouping`` disabled
    (BASIC policy) each delinquent load becomes a singleton group.
    """
    if not grouping:
        return [
            SameObjectGroup(
                base_reg=load.base_reg,
                base_version=load.base_version,
                members=[load],
            )
            for load in loads
            if load.delinquent
        ]

    by_key: Dict[Tuple[int, int], SameObjectGroup] = {}
    for load in loads:
        key = (load.base_reg, load.base_version)
        group = by_key.get(key)
        if group is None:
            group = SameObjectGroup(
                base_reg=load.base_reg, base_version=load.base_version
            )
            by_key[key] = group
        group.members.append(load)

    return [g for g in by_key.values() if g.delinquent_members]
