"""Policy re-export.

:class:`~repro.config.PrefetchPolicy` lives in :mod:`repro.config` (it is
shared by the machine setup); this module re-exports it so the paper's
contribution package is self-contained for readers.
"""

from ..config import PrefetchPolicy

__all__ = ["PrefetchPolicy"]
