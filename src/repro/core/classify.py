"""Delinquent-load classification (paper section 3.4.1).

The optimizer partitions the delinquent loads of a hot trace into:

* **Stride** — the recurrence of the load's base register within the trace
  is a single simple arithmetic instruction (LDA/ADD/SUB) with a constant
  and the base register itself, *or* the DLT observed the load to be
  stride predictable (confidence 15).  The DLT path is what catches
  pointer loads whose targets happen to be laid out at constant stride by
  the allocator.
* **Pointer** — not Stride, and the load's destination register is used
  (before redefinition) as the base register of another load — including
  the classic self-chase ``ldq r1, 0(r1)``.
* **Unclassified** — neither; such loads are not prefetched and will be
  marked mature.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..isa.opcodes import Opcode
from ..trident.trace import TraceInstruction


class LoadClass(enum.Enum):
    STRIDE = "stride"
    POINTER = "pointer"
    UNCLASSIFIED = "unclassified"


@dataclass
class TraceLoad:
    """One (non-synthetic) load in a trace, with dataflow context."""

    index: int          # position in the trace body
    orig_pc: int
    base_reg: int
    disp: int
    dest_reg: Optional[int]
    #: Definition-version of the base register at this point; loads with
    #: the same (base_reg, base_version) see the same base value.
    base_version: int
    load_class: LoadClass = LoadClass.UNCLASSIFIED
    stride: Optional[int] = None
    delinquent: bool = False


def collect_loads(body: List[TraceInstruction]) -> List[TraceLoad]:
    """Gather the original loads of a trace with base-version context."""
    reg_version = [0] * 32
    loads: List[TraceLoad] = []
    for index, tinst in enumerate(body):
        inst = tinst.inst
        if inst.is_load and not tinst.synthetic:
            loads.append(
                TraceLoad(
                    index=index,
                    orig_pc=tinst.orig_pc,
                    base_reg=inst.ra,
                    disp=inst.disp,
                    dest_reg=inst.rd,
                    base_version=reg_version[inst.ra],
                )
            )
        dest = inst.destination_register()
        if dest is not None:
            reg_version[dest] += 1
    return loads


def _code_stride(body: List[TraceInstruction], base_reg: int) -> Optional[int]:
    """Stride of ``base_reg``'s recurrence, from code analysis.

    The trace is one loop iteration: if the register is updated by exactly
    one simple arithmetic instruction (constant increment of itself), the
    load recurs at that constant stride.
    """
    updates: List[int] = []
    for tinst in body:
        inst = tinst.inst
        if tinst.synthetic:
            continue
        if inst.destination_register() != base_reg:
            continue
        op = inst.opcode
        if op is Opcode.LDA and inst.ra == base_reg:
            updates.append(inst.disp)
        elif op is Opcode.ADDQ and inst.ra == base_reg and inst.imm is not None:
            updates.append(inst.imm)
        elif op is Opcode.SUBQ and inst.ra == base_reg and inst.imm is not None:
            updates.append(-inst.imm)
        else:
            return None  # a non-simple update breaks the recurrence
    if len(updates) == 1 and updates[0] != 0:
        return updates[0]
    return None


def _is_pointer_load(
    body: List[TraceInstruction], load: TraceLoad
) -> bool:
    """Destination used as a base register of a later load, before any
    redefinition — scanning forward and then wrapping to the trace head
    (the trace is a loop body)."""
    dest = load.dest_reg
    if dest is None:
        return False
    if dest == load.base_reg:
        return True  # self-chasing pointer: ldq r, d(r)
    n = len(body)
    # Forward from just past the load, wrapping once around the loop.
    for step in range(1, n + 1):
        tinst = body[(load.index + step) % n]
        inst = tinst.inst
        if inst.is_load and inst.ra == dest:
            return True
        if inst.destination_register() == dest:
            return False
    return False


def classify_loads(
    body: List[TraceInstruction],
    loads: List[TraceLoad],
    delinquent_pcs: set,
    dlt,
) -> List[TraceLoad]:
    """Assign a :class:`LoadClass` (and stride) to every load.

    ``body`` must be the same instruction list ``loads`` was collected
    from.  ``dlt`` provides the hardware's stride observations; it may be
    None (pure code analysis — used by tests and ablations).
    """
    stride_cache: Dict[int, Optional[int]] = {}
    for load in loads:
        load.delinquent = load.orig_pc in delinquent_pcs
        if load.base_reg not in stride_cache:
            stride_cache[load.base_reg] = _code_stride(body, load.base_reg)
        stride = stride_cache[load.base_reg]
        if stride is None and dlt is not None:
            stride = dlt.predicted_stride(load.orig_pc)
        if stride is not None:
            load.load_class = LoadClass.STRIDE
            load.stride = stride
        elif _is_pointer_load(body, load):
            load.load_class = LoadClass.POINTER
        else:
            load.load_class = LoadClass.UNCLASSIFIED
    return loads
