"""Fleet telemetry: the hub that aggregates spans, live samples, and
fleet gauges across the engine and its worker processes.

The :class:`TelemetryHub` lives in the engine process.  Engine-side
lifecycle points (submit, cache probe, schedule, commit, reclaim) are
recorded directly through the hub's own :class:`~repro.obs.spans.
SpanRecorder`; worker-side spans arrive either attached to the pickled
``JobOutcome`` (pool workers) or streamed live over the supervisor pipe
(supervised workers) and are fed in through :meth:`TelemetryHub.ingest`.
Live interval-sampler windows ride the same path and land in a bounded
:class:`~repro.obs.events.EventRing`, so a `repro fleet status` reader
always sees the newest window of activity no matter how long the sweep
has been running.

The hub maintains the fleet gauges the engine and supervisor already
publish (``engine.*``, ``fleet.*``) plus its own:

* ``fleet.queue_depth`` — jobs submitted but not yet terminal;
* ``fleet.workers`` / ``fleet.workers_busy`` / ``fleet.workers_idle``;
* ``fleet.cache_probes`` / ``fleet.cache_hits`` /
  ``fleet.cache_hit_rate``;
* ``fleet.sim_cycles_per_s`` — simulated-cycle throughput over the
  hub's lifetime (the fleet-level "how fast are we actually going").

Three export surfaces:

* :meth:`TelemetryHub.write_trace` — one Perfetto-loadable file
  stitching every process's spans (see ``fleet_chrome_trace``);
* :func:`write_prometheus` — the metrics registry as Prometheus text
  exposition (``telemetry.prom``), the format every scrape stack eats;
* :meth:`TelemetryHub.flush` — a live feed (``telemetry.json`` +
  ``telemetry.prom`` + append-only ``spans.jsonl``) written into the
  sweep's journal directory, which is what ``repro fleet status``
  tails.

Everything here is wall-clock-side observation: the hub never touches a
simulation, and with no hub attached the engine pays one ``is not
None`` check per lifecycle point — results are byte-identical either
way (proven by ``tests/test_telemetry.py``).
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from .events import EventRing, TraceEvent
from .export import fleet_chrome_trace, write_fleet_trace
from .metrics import MetricsRegistry
from .spans import Span, SpanRecorder, TraceContext, new_sweep_id

#: The live-feed file names `flush` writes and `fleet status` reads.
TELEMETRY_SNAPSHOT = "telemetry.json"
TELEMETRY_PROM = "telemetry.prom"
TELEMETRY_SPANS = "spans.jsonl"

#: Minimum seconds between live-feed flushes (the final flush always
#: happens): a thousand-job sweep must not spend its time rewriting
#: telemetry.json.
_FLUSH_INTERVAL_S = 0.25

#: The engine summary line, field by field: (label, gauge name).  One
#: source for the ``engine: run=... cached=...`` stderr line *and* the
#: fleet gauges — the counts can no longer drift apart.
SUMMARY_GAUGES = (
    ("run", "engine.jobs_run"),
    ("cached", "engine.jobs_cached"),
    ("resumed", "engine.jobs_resumed"),
    ("failed", "engine.jobs_failed"),
    ("reclaimed", "engine.leases_reclaimed"),
    ("retried", "engine.jobs_retried"),
    ("quarantined", "engine.jobs_quarantined"),
)


def format_engine_summary(values: Mapping[str, float]) -> str:
    """Render the one-line engine summary from a label→value mapping.

    This is the *single* formatter behind ``EngineStats.summary()`` and
    :func:`fleet_summary`; CI greps this exact shape
    (``engine: run=N cached=N ...``), so the layout is load-bearing.
    """
    parts = [
        f"{label}={int(values.get(label, 0))}"
        for label, _gauge in SUMMARY_GAUGES
    ]
    parts.append(f"spent={values.get('spent', 0.0):.1f}s")
    parts.append(f"saved={values.get('saved', 0.0):.1f}s")
    return "engine: " + " ".join(parts)


def fleet_summary(metrics: MetricsRegistry) -> str:
    """The engine summary line, read back out of the fleet gauges."""
    values: Dict[str, float] = {
        label: metrics.gauge(gauge).value for label, gauge in SUMMARY_GAUGES
    }
    values["spent"] = metrics.gauge("engine.wall_time_spent_s").value
    values["saved"] = metrics.gauge("engine.wall_time_saved_s").value
    return format_engine_summary(values)


def _prom_name(name: str) -> str:
    cleaned = "".join(
        ch if (ch.isalnum() or ch == "_") else "_" for ch in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"repro_{cleaned}"


def prometheus_text(metrics: MetricsRegistry) -> str:
    """Render a metrics registry as Prometheus text exposition."""
    snapshot = metrics.snapshot()
    lines: List[str] = []
    for name, value in snapshot["counters"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, value in snapshot["gauges"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value}")
    for name, hist in snapshot["histograms"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            lines.append(f'{prom}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{prom}_sum {hist['total']}")
        lines.append(f"{prom}_count {hist['count']}")
    return "\n".join(lines) + "\n"


def write_prometheus(metrics: MetricsRegistry, path: os.PathLike) -> None:
    """Write the registry as a Prometheus-text ``/metrics`` snapshot."""
    pathlib.Path(path).write_text(
        prometheus_text(metrics), encoding="utf-8"
    )


class TelemetryHub:
    """Aggregates one sweep's spans, live samples, and fleet gauges.

    Thread-safe for ingestion: the supervisor's drain loop, pool-result
    accounting, and test harnesses may all feed it concurrently.
    """

    def __init__(
        self,
        sweep_id: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        out_dir: Optional[os.PathLike] = None,
        ring_capacity: int = 4096,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.sweep_id = sweep_id or new_sweep_id()
        self.context = TraceContext(self.sweep_id)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.clock = clock
        self.recorder = SpanRecorder(
            self.context, role="engine", clock=clock
        )
        #: Live telemetry feed (the newest samples, bounded like a
        #: hardware trace buffer).
        self.ring = EventRing(ring_capacity)
        self.out_dir = pathlib.Path(out_dir) if out_dir is not None else None
        self._lock = threading.Lock()
        self._ingested: List[Dict] = []
        #: Flush watermarks over the two *append-only* span sources.
        #: (Counting over the merged time-sorted view would be wrong: a
        #: worker span can arrive late yet sort into the already-flushed
        #: prefix and never reach spans.jsonl.)
        self._flushed_engine = 0
        self._flushed_ingested = 0
        self._last_flush = 0.0
        self._started = clock()
        self._cycles_done = 0.0
        self._terminal = 0
        self._submitted = 0
        self.ingested = 0

    # ------------------------------------------------------------------
    # Engine-side recording.
    # ------------------------------------------------------------------
    def job_context(self, key: Optional[str], attempt: int = 0) -> TraceContext:
        return self.context.for_job(key, attempt)

    def instant(self, name: str, key: Optional[str] = None, **fields) -> None:
        with self._lock:
            self.recorder.instant(name, self.job_context(key), **fields)

    def span(self, name: str, key: Optional[str] = None, **fields):
        """Context manager recording one engine-side span."""
        return self.recorder.span(name, self.job_context(key), **fields)

    # ------------------------------------------------------------------
    # Worker-side feed.
    # ------------------------------------------------------------------
    def ingest(self, record: Dict) -> None:
        """Accept one serialised span/sample dict from a worker."""
        if not isinstance(record, dict):
            return
        with self._lock:
            self.ingested += 1
            if record.get("type") == "sample":
                fields = dict(record.get("fields") or {})
                fields["job_key"] = record.get("job_key")
                fields["attempt"] = record.get("attempt", 0)
                self.ring.append(
                    TraceEvent(fields.get("index", 0), "fleet_sample", fields)
                )
            else:
                self._ingested.append(record)

    # ------------------------------------------------------------------
    # Fleet-gauge lifecycle hooks (called by the engine).
    # ------------------------------------------------------------------
    def sweep_started(self, workers: int) -> None:
        self.metrics.gauge("fleet.workers").set(workers)

    def job_submitted(self, key: Optional[str]) -> None:
        self._submitted += 1
        self.instant("submit", key)
        self._set_queue_depth()

    def cache_probe(self, key: Optional[str], hit: bool, elapsed_s: float) -> None:
        metrics = self.metrics
        probes = metrics.counter("fleet.cache_probes")
        hits = metrics.counter("fleet.cache_hits")
        probes.inc()
        if hit:
            hits.inc()
        metrics.gauge("fleet.cache_hit_rate").set(
            hits.value / probes.value if probes.value else 0.0
        )
        with self._lock:
            span = self.recorder.begin(
                "cache-probe", self.job_context(key), hit=hit
            )
            span.start_s -= elapsed_s
            self.recorder.end(span)

    def job_scheduled(self, key: Optional[str], attempt: int = 0, **fields) -> None:
        with self._lock:
            self.recorder.instant(
                "schedule", self.job_context(key, attempt), **fields
            )

    def job_finished(
        self,
        key: Optional[str],
        ok: bool,
        cached: bool = False,
        cycles: float = 0.0,
        spans: Optional[Sequence[Dict]] = None,
    ) -> None:
        """A job reached a terminal state engine-side: record the commit
        marker, absorb any worker-buffered spans, update throughput."""
        if spans:
            for record in spans:
                self.ingest(record)
        self.instant("commit", key, ok=ok, cached=cached)
        self._terminal += 1
        if cycles:
            self._cycles_done += cycles
        elapsed = max(self.clock() - self._started, 1e-9)
        self.metrics.gauge("fleet.sim_cycles_per_s").set(
            self._cycles_done / elapsed
        )
        self._set_queue_depth()
        self.maybe_flush()

    def job_reclaimed(
        self, key: Optional[str], attempt: int, reason: str, retrying: bool
    ) -> None:
        self.instant("reclaim", key, attempt=attempt, reason=reason)
        if retrying:
            self.instant("retry", key, attempt=attempt)
        else:
            # Terminal accounting happens in the engine's commit path,
            # which every quarantined outcome also flows through.
            self.instant("quarantine", key, attempt=attempt)

    def workers_busy(self, busy: int, total: int) -> None:
        self.metrics.gauge("fleet.workers_busy").set(busy)
        self.metrics.gauge("fleet.workers_idle").set(max(0, total - busy))

    def _set_queue_depth(self) -> None:
        self.metrics.gauge("fleet.queue_depth").set(
            max(0, self._submitted - self._terminal)
        )

    # ------------------------------------------------------------------
    # Views and exports.
    # ------------------------------------------------------------------
    def spans(self) -> List[Dict]:
        """Every recorded span dict (engine + ingested), by start time."""
        with self._lock:
            merged = list(self.recorder._buffer) + list(self._ingested)
        merged.sort(key=lambda s: (s.get("start_s", 0.0), s.get("pid", 0)))
        return merged

    def summary(self) -> str:
        return fleet_summary(self.metrics)

    def snapshot(self) -> Dict:
        """The JSON live-feed payload (``telemetry.json``)."""
        spans = self.spans()
        with self._lock:
            samples = [event.fields for event in self.ring]
        return {
            "sweep_id": self.sweep_id,
            "updated_at": self.clock(),
            "gauges": self.metrics.snapshot()["gauges"],
            "counters": self.metrics.snapshot()["counters"],
            "queue_depth": max(0, self._submitted - self._terminal),
            "spans_recorded": len(spans),
            "spans_tail": spans[-64:],
            "samples_tail": samples[-64:],
            "ring": self.ring.summary(),
        }

    def write_trace(
        self, path: os.PathLike, metadata: Optional[Dict] = None
    ) -> int:
        """Write the stitched Perfetto trace; returns the event count."""
        meta = {"sweep_id": self.sweep_id}
        if metadata:
            meta.update(metadata)
        return write_fleet_trace(self.spans(), path, metadata=meta)

    def chrome_trace(self) -> Dict:
        return fleet_chrome_trace(
            self.spans(), metadata={"sweep_id": self.sweep_id}
        )

    # ------------------------------------------------------------------
    # Live feed.
    # ------------------------------------------------------------------
    def maybe_flush(self) -> None:
        """Flush the live feed, throttled; cheap no-op without out_dir."""
        if self.out_dir is None:
            return
        now = self.clock()
        if now - self._last_flush < _FLUSH_INTERVAL_S:
            return
        self.flush()

    def flush(self) -> None:
        """Write the live feed files (telemetry.json/.prom, spans.jsonl).

        Failures are swallowed after a log-free best effort: telemetry
        observes the fleet, it must never kill it.
        """
        if self.out_dir is None:
            return
        self._last_flush = self.clock()
        try:
            self.out_dir.mkdir(parents=True, exist_ok=True)
            snapshot = self.snapshot()
            tmp = self.out_dir / f".{TELEMETRY_SNAPSHOT}.tmp"
            tmp.write_text(
                json.dumps(snapshot, sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, self.out_dir / TELEMETRY_SNAPSHOT)
            write_prometheus(self.metrics, self.out_dir / TELEMETRY_PROM)
            with self._lock:
                engine_spans = list(
                    self.recorder._buffer[self._flushed_engine:]
                )
                ingested = list(
                    self._ingested[self._flushed_ingested:]
                )
                next_engine = len(self.recorder._buffer)
                next_ingested = len(self._ingested)
            fresh = engine_spans + ingested
            if fresh:
                with open(
                    self.out_dir / TELEMETRY_SPANS, "a", encoding="utf-8"
                ) as fh:
                    for record in fresh:
                        fh.write(json.dumps(record, sort_keys=True) + "\n")
                self._flushed_engine = next_engine
                self._flushed_ingested = next_ingested
        except OSError:
            pass


# ----------------------------------------------------------------------
# Journal ↔ span coverage.
# ----------------------------------------------------------------------
#: Journal terminal states that must carry an engine-side commit marker.
_TERMINAL_STATES = frozenset({"done", "failed", "quarantined"})


def spans_cover_journal(spans: Sequence[Dict], state) -> List[str]:
    """Check that a sweep's spans account for every journalled job event.

    ``state`` is a :class:`repro.harness.journal.JournalState`.  Returns
    a list of problems (empty means full coverage): every job must have
    a ``submit`` span; every terminal job a ``commit``; a finished job
    either ran (``run`` span) or replayed from cache (``cache-probe``
    with ``hit``); every journalled reclaim a ``reclaim`` span; every
    quarantine a ``quarantine`` span.  Used by the CI telemetry-smoke
    job and the chaos telemetry tests.
    """
    by_key: Dict[str, List[Dict]] = {}
    for span in spans:
        key = span.get("job_key")
        if key is not None:
            by_key.setdefault(key, []).append(span)
    problems: List[str] = []
    for key, job in state.jobs.items():
        job_spans = by_key.get(key, [])
        names = [s.get("name") for s in job_spans]
        short = key[:12]
        if "submit" not in names:
            problems.append(f"job {short}: no submit span")
        if job.state in _TERMINAL_STATES and "commit" not in names:
            problems.append(
                f"job {short}: terminal ({job.state}) but no commit span"
            )
        if job.state == "done":
            cache_hit = any(
                s.get("name") == "cache-probe"
                and (s.get("fields") or {}).get("hit")
                for s in job_spans
            )
            if "run" not in names and not cache_hit:
                problems.append(
                    f"job {short}: done with neither a run span nor a "
                    "cache hit"
                )
        reclaims = names.count("reclaim")
        if reclaims < job.strikes:
            problems.append(
                f"job {short}: {job.strikes} journalled reclaim(s) but "
                f"only {reclaims} reclaim span(s)"
            )
        if job.state == "quarantined" and "quarantine" not in names:
            problems.append(f"job {short}: quarantined without a span")
    return problems


def workload_provenance_problems(
    spans: Sequence[Dict], state
) -> List[str]:
    """Check that externally-sourced jobs declare their provenance.

    Companion to :func:`spans_cover_journal`: for every journalled job
    whose submitted spec carries a ``scenario``/``trace`` source, each
    of its ``run`` spans must say so (``source`` + ``workload`` fields)
    — a scenario result that cannot be traced back to its generating
    spec is unreproducible.  Builtin jobs must claim ``builtin`` (or
    predate the field).  Returns problems; empty means full provenance.
    """
    by_key: Dict[str, List[Dict]] = {}
    for span in spans:
        key = span.get("job_key")
        if key is not None and span.get("name") == "run":
            by_key.setdefault(key, []).append(span)
    problems: List[str] = []
    for key, job in state.jobs.items():
        submitted = job.job or {}
        if submitted.get("scenario") is not None:
            expected = "scenario"
        elif submitted.get("trace") is not None:
            expected = "trace"
        else:
            expected = "builtin"
        short = key[:12]
        for span in by_key.get(key, []):
            fields = span.get("fields") or {}
            source = fields.get("source")
            if expected != "builtin" and source != expected:
                problems.append(
                    f"job {short}: {expected}-sourced but its run span "
                    f"says source={source!r}"
                )
            elif expected == "builtin" and source not in (None, "builtin"):
                problems.append(
                    f"job {short}: builtin workload but its run span "
                    f"says source={source!r}"
                )
            if expected != "builtin" and not fields.get("workload"):
                problems.append(
                    f"job {short}: {expected}-sourced run span is "
                    "missing its workload name"
                )
    return problems


# ----------------------------------------------------------------------
# Live-feed readers (the `repro fleet status` side).
# ----------------------------------------------------------------------
def read_snapshot(directory: os.PathLike) -> Optional[Dict]:
    """Load ``telemetry.json`` from a journal/telemetry directory."""
    path = pathlib.Path(directory) / TELEMETRY_SNAPSHOT
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def read_spans(directory: os.PathLike) -> List[Dict]:
    """Load the append-only span log from a telemetry directory."""
    path = pathlib.Path(directory) / TELEMETRY_SPANS
    spans: List[Dict] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail: same rule as the journal
                if isinstance(record, dict):
                    spans.append(record)
    except OSError:
        pass
    return spans
