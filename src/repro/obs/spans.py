"""Cross-process span tracing: trace contexts and the span recorder.

The PR 2 obs layer sees inside one simulation process; a fleet run is
many processes — the engine, N pool or supervised workers — and the
question "where did job X's three seconds go?" spans all of them.  This
module is the fleet-side answer:

* a :class:`TraceContext` names *whose* work a span belongs to:
  ``sweep id → job key → attempt``.  The sweep id is minted once per CLI
  invocation, the job key is the journal identity of the job (a stable
  spec hash, see :func:`repro.harness.journal.job_key`), and the attempt
  counts re-dispatches after reclaims — so a retried job's second life
  is a *different* set of spans from its first;
* a :class:`Span` is one named interval (or instant) of that work, wall
  -clock stamped and tagged with the recording process's pid and role.
  Wall time is the one clock every process on a host shares, which is
  what lets the exporter stitch engine and worker spans onto one
  timeline;
* a :class:`SpanRecorder` collects spans in whatever process the work
  happens in.  With no sink it buffers (pool workers attach the buffer
  to the pickled ``JobOutcome``); with a sink each finished span is
  pushed immediately (supervised workers stream them over the existing
  supervisor pipe, so a later SIGKILL cannot take finished spans down
  with the process).

Spans observe the fleet, never the simulation: nothing in here touches
simulated state, and every engine/worker emit site is guarded by a
single ``is not None`` check, so a telemetry-disabled run does no
recording work at all (the PR 2 invariant, extended to the fleet).

Span taxonomy (mirrors the journal's event vocabulary — the coverage
checker in :mod:`repro.obs.telemetry` holds the two to each other):

====================  ==================================================
name                  recorded when
====================  ==================================================
``submit``            the engine accepts a job into a sweep
``cache-probe``       the result cache is consulted (``hit`` field)
``schedule``          a job is dispatched to a worker (journal "start")
``checkpoint-restore``a worker restores a prefix snapshot
``run``               the simulation itself, first instruction to last
``sample``            a windowed IPC/miss-rate sample closed mid-run
``checkpoint-capture``a snapshot was captured and offered to the store
``commit``            the outcome became durable engine-side
``reclaim``           a worker died or overstayed its lease
``retry``             a reclaimed job re-entered the queue
``quarantine``        a poison job was removed from play
====================  ==================================================
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceContext:
    """Who a span belongs to: sweep → job → attempt."""

    sweep_id: str
    job_key: Optional[str] = None
    attempt: int = 0

    def for_job(self, job_key: Optional[str], attempt: int = 0) -> "TraceContext":
        """The context of one job (or re-dispatch) within this sweep."""
        return TraceContext(self.sweep_id, job_key, attempt)

    def retry(self) -> "TraceContext":
        """The next attempt of the same job."""
        return TraceContext(self.sweep_id, self.job_key, self.attempt + 1)

    def to_dict(self) -> Dict:
        return {
            "sweep_id": self.sweep_id,
            "job_key": self.job_key,
            "attempt": self.attempt,
        }

    @staticmethod
    def from_dict(raw: Dict) -> "TraceContext":
        return TraceContext(
            sweep_id=raw.get("sweep_id", ""),
            job_key=raw.get("job_key"),
            attempt=int(raw.get("attempt", 0)),
        )


def new_sweep_id() -> str:
    """A fresh sweep identity: unique enough across hosts and restarts.

    Deliberately *not* derived from the job set — two runs of the same
    sweep are two sweeps (their wall-clock spans differ even when their
    simulated results are byte-identical).
    """
    return f"{int(time.time() * 1000):x}-{os.getpid()}"


@dataclass
class Span:
    """One named interval (or instant) of fleet work."""

    name: str
    context: TraceContext
    start_s: float
    #: ``None`` while the span is open; equal to ``start_s`` for
    #: instants.
    end_s: Optional[float] = None
    pid: int = 0
    #: ``engine`` or ``worker`` — picks the Perfetto process lane.
    role: str = "engine"
    fields: Dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return max(0.0, self.end_s - self.start_s)

    def to_dict(self) -> Dict:
        record = {
            "type": "span",
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "pid": self.pid,
            "role": self.role,
        }
        record.update(self.context.to_dict())
        if self.fields:
            record["fields"] = dict(self.fields)
        return record

    @staticmethod
    def from_dict(raw: Dict) -> "Span":
        return Span(
            name=raw.get("name", ""),
            context=TraceContext.from_dict(raw),
            start_s=float(raw.get("start_s", 0.0)),
            end_s=raw.get("end_s"),
            pid=int(raw.get("pid", 0)),
            role=raw.get("role", "engine"),
            fields=dict(raw.get("fields") or {}),
        )


class SpanRecorder:
    """Collects finished spans in one process.

    ``sink`` is a callable taking one serialised span dict.  With a sink
    (supervised workers: the pipe), finished spans are pushed the moment
    they close and nothing is buffered; without one (pool workers, the
    engine's own hub) they accumulate until :meth:`drain`.
    """

    def __init__(
        self,
        context: TraceContext,
        role: str = "engine",
        sink: Optional[Callable[[Dict], None]] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.context = context
        self.role = role
        self.sink = sink
        self.clock = clock
        self.pid = os.getpid()
        self.recorded = 0
        self._buffer: List[Dict] = []

    # ------------------------------------------------------------------
    def begin(
        self, name: str, context: Optional[TraceContext] = None, **fields
    ) -> Span:
        """Open a span; finish it with :meth:`end`."""
        return Span(
            name=name,
            context=context or self.context,
            start_s=self.clock(),
            pid=self.pid,
            role=self.role,
            fields=dict(fields),
        )

    def end(self, span: Span, **fields) -> Span:
        """Close and record an open span (extra fields merge in)."""
        span.end_s = self.clock()
        if fields:
            span.fields.update(fields)
        self._record(span.to_dict())
        return span

    @contextmanager
    def span(
        self, name: str, context: Optional[TraceContext] = None, **fields
    ) -> Iterator[Span]:
        """``with recorder.span("run", ctx):`` — closed even on raise."""
        span = self.begin(name, context, **fields)
        try:
            yield span
        except BaseException:
            span.fields["error"] = True
            raise
        finally:
            self.end(span)

    def instant(
        self, name: str, context: Optional[TraceContext] = None, **fields
    ) -> Span:
        """A zero-duration marker (submit, commit, reclaim, ...)."""
        now = self.clock()
        span = Span(
            name=name,
            context=context or self.context,
            start_s=now,
            end_s=now,
            pid=self.pid,
            role=self.role,
            fields=dict(fields),
        )
        self._record(span.to_dict())
        return span

    def sample_sink(
        self, context: Optional[TraceContext] = None
    ) -> Callable[[Dict], None]:
        """A callable for ``Observer.sample_sink``: forwards each closed
        interval-sampler window as a live ``sample`` record."""
        ctx = context or self.context

        def forward(fields: Dict) -> None:
            now = self.clock()
            record = {
                "type": "sample",
                "name": "sample",
                "start_s": now,
                "end_s": now,
                "pid": self.pid,
                "role": self.role,
                "fields": dict(fields),
            }
            record.update(ctx.to_dict())
            self._record(record)

        return forward

    # ------------------------------------------------------------------
    def _record(self, record: Dict) -> None:
        self.recorded += 1
        if self.sink is not None:
            try:
                self.sink(record)
            except (BrokenPipeError, OSError):
                # The consumer went away (parent died, pipe closed):
                # telemetry observes the fleet, it must never kill it.
                self.sink = None
        else:
            self._buffer.append(record)

    def drain(self) -> List[Dict]:
        """The buffered span dicts, oldest first; clears the buffer."""
        drained = self._buffer
        self._buffer = []
        return drained
