"""Trace and metrics exporters: JSONL and Chrome trace-event JSON.

Two formats, one event stream:

* **JSONL** — one ``{"cycle": ..., "kind": ..., ...}`` object per line;
  greppable, diffable (the determinism tests compare these byte for
  byte), and the input format of ``tools/render_timeline.py``.
* **Chrome trace-event JSON** — loadable in Perfetto
  (https://ui.perfetto.dev) or chrome://tracing.  Simulated cycles are
  mapped 1:1 onto microseconds.  Tracks: the main core, the helper
  context (optimization jobs as duration slices), one track per memory
  level (fills), the Trident monitoring hardware (delinquent-load
  events, repairs, maturity), fault injections, and the interval
  sampler's windowed IPC / miss-rate as counter tracks.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from .events import TraceEvent

#: Stable track (tid) assignment inside the single simulator "process".
_PID = 0
_TRACKS = {
    "core": 1,
    "helper": 2,
    "memory.l2": 3,
    "memory.l3": 4,
    "memory.mem": 5,
    "trident": 6,
    "faults": 7,
}
_TRACK_NAMES = {
    1: "main core",
    2: "helper thread",
    3: "memory: L2 fills",
    4: "memory: L3 fills",
    5: "memory: DRAM fills",
    6: "trident monitoring",
    7: "fault injector",
}

_CORE_KINDS = frozenset({"trace_enter", "trace_exit"})
_HELPER_KINDS = frozenset({"helper_begin", "helper_end", "helper_fail"})
_TRIDENT_KINDS = frozenset(
    {
        "dl_event",
        "dl_event_lost",
        "insert",
        "repair",
        "mature",
        "phase_change",
        "trace_link",
        "trace_unlink",
    }
)


def write_jsonl(events: Iterable[TraceEvent], path: str) -> int:
    """Write one JSON object per event; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event.to_dict(), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Dict]:
    """Load a JSONL export back into dicts (tooling / tests)."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _track_for(event: TraceEvent) -> int:
    kind = event.kind
    if kind in _CORE_KINDS:
        return _TRACKS["core"]
    if kind in _HELPER_KINDS:
        return _TRACKS["helper"]
    if kind == "fill":
        level = event.fields.get("level", "mem")
        return _TRACKS.get(f"memory.{level}", _TRACKS["memory.mem"])
    if kind == "fault":
        return _TRACKS["faults"]
    return _TRACKS["trident"]


def _instant(event: TraceEvent, tid: int) -> Dict:
    return {
        "name": event.kind,
        "ph": "i",
        "s": "t",
        "ts": event.cycle,
        "pid": _PID,
        "tid": tid,
        "args": dict(event.fields),
    }


def chrome_trace(
    events: Sequence[TraceEvent],
    metadata: Optional[Dict] = None,
) -> Dict:
    """Convert an event stream to a Chrome trace-event JSON object."""
    trace_events: List[Dict] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "args": {"name": name},
        }
        for tid, name in sorted(_TRACK_NAMES.items())
    ]
    trace_events.insert(
        0,
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "repro simulator"},
        },
    )
    for event in events:
        kind = event.kind
        if kind == "helper_end" and "began" in event.fields:
            # Render the whole job as one complete slice on the helper
            # track: dispatch -> completion.
            began = event.fields["began"]
            args = dict(event.fields)
            trace_events.append(
                {
                    "name": f"helper:{args.get('job', 'job')}",
                    "ph": "X",
                    "ts": began,
                    "dur": max(0.0, event.cycle - began),
                    "pid": _PID,
                    "tid": _TRACKS["helper"],
                    "args": args,
                }
            )
            continue
        if kind == "helper_begin":
            # The matching helper_end draws the slice; the begin marker
            # is redundant in the visual timeline.
            continue
        if kind == "sample":
            # Counter tracks: Perfetto plots args values over time.
            for counter, key in (
                ("windowed IPC", "ipc"),
                ("windowed miss rate", "miss_rate"),
            ):
                if key in event.fields:
                    trace_events.append(
                        {
                            "name": counter,
                            "ph": "C",
                            "ts": event.cycle,
                            "pid": _PID,
                            "args": {key: event.fields[key]},
                        }
                    )
            continue
        trace_events.append(_instant(event, _track_for(event)))
    payload = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metadata": metadata or {},
    }
    return payload


def write_chrome_trace(
    events: Sequence[TraceEvent],
    path: str,
    metadata: Optional[Dict] = None,
) -> int:
    """Write a Perfetto-loadable trace; returns the event count."""
    payload = chrome_trace(events, metadata=metadata)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return len(payload["traceEvents"])


#: Phase values the trace-event format defines for the subset we emit.
_VALID_PHASES = frozenset({"i", "X", "M", "C", "B", "E"})


def validate_chrome_trace(payload: Dict) -> List[str]:
    """Schema-check a Chrome trace object; returns a list of problems.

    Used by the CI trace-smoke step: an empty list means the export is
    structurally loadable.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["top level is not an object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        ph = event.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"event {i} has invalid ph {ph!r}")
            continue
        if "name" not in event:
            problems.append(f"event {i} has no name")
        if ph != "M":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"event {i} ({event.get('name')}) has no ts")
        if ph == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"event {i} is ph=X without dur")
        if "pid" not in event:
            problems.append(f"event {i} has no pid")
    return problems


def write_metrics(snapshot: Dict, path: str) -> None:
    """Write a consolidated metrics/observer snapshot as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# Fleet span traces: stitch engine + N worker processes into one file.
# ----------------------------------------------------------------------
#: Spans treated as instants even when they carry a duration (markers).
_FLEET_INSTANTS = frozenset(
    {
        "submit",
        "schedule",
        "commit",
        "reclaim",
        "retry",
        "quarantine",
        "checkpoint-capture",
        "sample",
    }
)


def fleet_chrome_trace(
    spans: Sequence[Dict],
    metadata: Optional[Dict] = None,
) -> Dict:
    """Convert serialised fleet spans into one Chrome trace object.

    Where :func:`chrome_trace` maps one simulation's cycles onto one
    Perfetto process, this maps the *fleet*: each recording OS process
    (the engine, every pool/supervised worker) becomes a Perfetto
    process, and within a process each job gets its own track, numbered
    in first-seen order by a per-process
    :class:`~repro.trident.TraceIdAllocator` so two exports of the same
    run lay out identically.  Wall-clock seconds — the one timebase all
    processes share — map onto trace microseconds, zeroed at the
    earliest span.
    """
    from ..trident import TraceIdAllocator

    starts = [
        s.get("start_s", 0.0) for s in spans
        if isinstance(s.get("start_s"), (int, float))
    ]
    t0 = min(starts) if starts else 0.0
    trace_events: List[Dict] = []
    #: pid -> role ("engine" lanes sort before workers in the UI).
    roles: Dict[int, str] = {}
    #: pid -> (allocator, {job_key or None: tid}).
    tracks: Dict[int, tuple] = {}

    def track_for(pid: int, job_key) -> int:
        allocator, by_job = tracks.setdefault(
            pid, (TraceIdAllocator(), {})
        )
        tid = by_job.get(job_key)
        if tid is None:
            tid = by_job[job_key] = allocator.next()
            label = (
                f"job {job_key[:12]}" if job_key is not None else "sweep"
            )
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
        return tid

    for span in spans:
        pid = int(span.get("pid", 0))
        role = span.get("role", "worker")
        if pid not in roles:
            roles[pid] = role
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {
                        "name": (
                            f"repro engine (pid {pid})"
                            if role == "engine"
                            else f"repro worker (pid {pid})"
                        )
                    },
                }
            )
        tid = track_for(pid, span.get("job_key"))
        ts = (span.get("start_s", t0) - t0) * 1e6
        args = dict(span.get("fields") or {})
        args["job_key"] = span.get("job_key")
        args["attempt"] = span.get("attempt", 0)
        name = span.get("name", "span")
        end_s = span.get("end_s")
        is_instant = (
            name in _FLEET_INSTANTS
            or span.get("type") == "sample"
            or not isinstance(end_s, (int, float))
        )
        if is_instant:
            trace_events.append(
                {
                    "name": name,
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        else:
            trace_events.append(
                {
                    "name": name,
                    "ph": "X",
                    "ts": ts,
                    "dur": max(0.0, (end_s - span["start_s"]) * 1e6),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metadata": metadata or {},
    }


def write_fleet_trace(
    spans: Sequence[Dict],
    path: str,
    metadata: Optional[Dict] = None,
) -> int:
    """Write the stitched fleet trace; returns the event count."""
    payload = fleet_chrome_trace(spans, metadata=metadata)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return len(payload["traceEvents"])
