"""The metrics registry: named counters, gauges, and histograms.

Components register instruments by dotted name (``memory.load_latency``,
``trident.dl_events``) at observer-attach time and keep the returned
object, so a hot-path emit is one attribute check plus one method call —
no registry lookup per event.  ``MetricsRegistry.snapshot()`` renders
everything as one JSON-friendly mapping, the consolidated view the CLI's
``--metrics-out`` writes.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: Default load-latency bucket upper bounds (cycles).  The edges follow
#: the machine's natural latency tiers: L1 (3), L2 (11), L3 (35), then a
#: geometric ladder through DRAM (350) and fault-inflated DRAM.
LOAD_LATENCY_BUCKETS = (3, 11, 35, 70, 150, 250, 350, 500, 700, 1000)

#: Default prefetch-distance bucket upper bounds (iterations ahead).
DISTANCE_BUCKETS = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """A last-write-wins scalar (may be float)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self):
        return self.value


class Histogram:
    """Fixed-bucket histogram with inclusive upper bounds.

    ``bounds`` are the finite bucket upper edges, sorted ascending; an
    implicit overflow bucket catches everything above the last edge.  A
    sample lands in the first bucket whose bound is >= the value
    (``observe(3)`` with bounds ``(3, 11)`` counts in the 3-bucket).
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        ordered = tuple(sorted(bounds))
        if not ordered:
            raise ValueError(f"histogram {name!r} needs at least one bound")
        self.name = name
        self.bounds: Tuple[float, ...] = ordered
        #: One slot per finite bound plus the overflow bucket.
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = LOAD_LATENCY_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = self._histograms[name] = Histogram(name, bounds)
        return instrument

    def _check_free(self, name: str) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a different kind"
                )

    def set_many(self, values: Dict[str, float]) -> None:
        """Bulk-publish scalars as gauges (end-of-run stat consolidation)."""
        for name, value in values.items():
            self.gauge(name).set(value)

    def snapshot(self) -> Dict:
        """One JSON-friendly mapping of every registered instrument."""
        return {
            "counters": {
                name: c.snapshot() for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.snapshot() for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
        }
