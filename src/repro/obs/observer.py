"""The Observer: one object aggregating every view of a run.

Components never import each other's observability state; they hold an
``obs`` attribute (``None`` when observation is off) and call
``obs.emit(kind, cycle, field=value, ...)``.  The observer appends the
event to the bounded ring and routes repair-vocabulary events to the
timeline collector.

``Observer.now`` is the *logical clock* for emit sites that have no
cycle in hand: helper-thread job effects apply inside closures that were
scheduled cycles earlier, so the helper sets ``now`` to the job's
completion cycle before running it, and everything the job emits
(repairs, maturity transitions, trace links) is stamped consistently.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .events import EventRing, TraceEvent
from .metrics import MetricsRegistry
from .sampling import IntervalSampler
from .timeline import TimelineCollector


class Observer:
    """Metrics + event ring + repair timelines (+ optional sampling)."""

    def __init__(
        self,
        ring_capacity: int = 65536,
        sample_interval: Optional[int] = None,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.ring = EventRing(ring_capacity)
        self.timelines = TimelineCollector()
        self.sampler = (
            IntervalSampler(sample_interval)
            if sample_interval is not None
            else None
        )
        #: Logical clock for emit sites without a cycle in hand (set by
        #: the helper thread before applying a job's effects).
        self.now: float = 0.0
        #: Fleet-telemetry seam: when set, each closed interval-sampler
        #: window is also pushed through this callable (the supervised
        #: worker streams it over the supervisor pipe so `repro fleet
        #: status` sees windowed IPC live).  One attribute check per
        #: emitted event; never touches simulated state.
        self.sample_sink = None
        self._timeline_kinds = TimelineCollector.KINDS

    def emit(self, kind: str, cycle: Optional[float] = None, **fields) -> None:
        """Record one structured event.

        ``cycle=None`` stamps the event with the logical clock
        (:attr:`now`) — for emits that run inside helper-job closures.
        """
        if cycle is None:
            cycle = self.now
        self.ring.append(TraceEvent(cycle, kind, fields))
        if kind in self._timeline_kinds:
            self.timelines.on_event(cycle, kind, fields)
        elif self.sample_sink is not None and kind == "sample":
            record = dict(fields)
            record["cycle"] = cycle
            self.sample_sink(record)

    def __getstate__(self):
        """Snapshots never carry the telemetry sink: it is wall-clock
        -side plumbing (often a closure over a pipe), so excluding it
        keeps snapshot bytes identical with telemetry on or off and
        keeps observers picklable."""
        state = dict(self.__dict__)
        state["sample_sink"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.__dict__.setdefault("sample_sink", None)

    def events(self) -> List[TraceEvent]:
        return self.ring.events()

    def snapshot(self) -> Dict:
        """The consolidated end-of-run view (``--metrics-out`` payload)."""
        payload = {
            "metrics": self.metrics.snapshot(),
            "ring": self.ring.summary(),
            "timelines": self.timelines.to_dicts(),
        }
        if self.sampler is not None:
            payload["samples"] = self.sampler.to_dicts()
        return payload
