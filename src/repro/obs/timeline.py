"""Per-delinquent-PC repair timelines.

The ring buffer answers "what happened recently"; the timeline collector
answers "what happened to *this load*, start to finish" — the distance
trajectory of section 3.5.2 (1 → 2 → ... → max, with −1 steps when the
latency rises) with the cycle of every step.  It listens to the repair
vocabulary only (``insert`` / ``repair`` / ``mature`` / ``dl_event``),
so it stays complete even when a busy ring has evicted the early events.

Records are keyed by the *group-lead* PC (the first load PC of the
same-object group) so a group's shared prefetch appears once, with every
member PC listed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class PCTimeline:
    """The lifetime of one prefetch group's repair search."""

    pc: int
    load_pcs: Tuple[int, ...] = ()
    kind: str = "stride"
    #: Chronological (cycle, event-kind, distance-after, avg-latency).
    steps: List[Dict] = field(default_factory=list)
    dl_events: int = 0
    final_distance: Optional[int] = None
    mature: bool = False
    mature_cycle: Optional[float] = None

    def add(
        self,
        cycle: float,
        kind: str,
        distance: Optional[int] = None,
        latency: Optional[float] = None,
    ) -> None:
        step = {"cycle": cycle, "kind": kind}
        if distance is not None:
            step["distance"] = distance
            self.final_distance = distance
        if latency is not None:
            step["avg_latency"] = latency
        self.steps.append(step)

    def distance_trajectory(self) -> List[Tuple[float, int]]:
        """(cycle, distance) pairs, one per distance-bearing step."""
        return [
            (step["cycle"], step["distance"])
            for step in self.steps
            if "distance" in step
        ]

    def to_dict(self) -> Dict:
        return {
            "pc": self.pc,
            "load_pcs": list(self.load_pcs),
            "kind": self.kind,
            "dl_events": self.dl_events,
            "final_distance": self.final_distance,
            "mature": self.mature,
            "mature_cycle": self.mature_cycle,
            "steps": list(self.steps),
        }


class TimelineCollector:
    """Builds :class:`PCTimeline` records from emitted repair events."""

    #: Event kinds this collector consumes (the Observer routes these).
    KINDS = frozenset({"insert", "repair", "mature", "dl_event"})

    def __init__(self) -> None:
        self._by_lead: Dict[int, PCTimeline] = {}
        #: member PC -> group-lead PC (so ``mature``/``dl_event`` events
        #: addressed to any member land on the group's record).
        self._lead_of: Dict[int, int] = {}

    def _record_for(self, pc: int) -> Optional[PCTimeline]:
        lead = self._lead_of.get(pc)
        if lead is None:
            return None
        return self._by_lead.get(lead)

    def on_event(self, cycle: float, kind: str, fields: Dict) -> None:
        if kind == "insert":
            pcs = tuple(fields.get("load_pcs", ()))
            if not pcs:
                return
            lead = pcs[0]
            record = self._by_lead.get(lead)
            if record is None:
                record = PCTimeline(
                    pc=lead,
                    load_pcs=pcs,
                    kind=fields.get("prefetch_kind", "stride"),
                )
                self._by_lead[lead] = record
            for pc in pcs:
                self._lead_of[pc] = lead
            record.add(cycle, "insert", distance=fields.get("distance"))
        elif kind == "repair":
            record = self._record_for(fields.get("pc", -1))
            if record is None:
                return
            record.add(
                cycle,
                "repair",
                distance=fields.get("new_distance"),
                latency=fields.get("avg_latency"),
            )
            if fields.get("mature"):
                record.mature = True
                record.mature_cycle = cycle
        elif kind == "mature":
            record = self._record_for(fields.get("pc", -1))
            if record is None:
                return
            if not record.mature:
                record.mature = True
                record.mature_cycle = cycle
                record.add(cycle, "mature")
        elif kind == "dl_event":
            record = self._record_for(fields.get("pc", -1))
            if record is not None:
                record.dl_events += 1

    def timelines(self) -> List[PCTimeline]:
        """All records, ordered by group-lead PC."""
        return [self._by_lead[pc] for pc in sorted(self._by_lead)]

    def to_dicts(self) -> List[Dict]:
        return [t.to_dict() for t in self.timelines()]

    def __len__(self) -> int:
        return len(self._by_lead)
