"""Cycle-stamped structured trace events and the bounded ring they live in.

An event is ``(cycle, kind, fields)``: the simulated cycle it happened
at, a kind string from the vocabulary below, and a flat JSON-friendly
field mapping.  The ring is bounded like a hardware trace buffer: when
full it evicts the *oldest* event and counts the drop, so the newest
window of activity always survives and the loss is visible.

Event vocabulary (see DESIGN.md's observability section for the paper
mapping):

==================  =====================================================
kind                emitted when
==================  =====================================================
``dl_event``        the DLT fires a delinquent-load event (section 3.3)
``dl_event_lost``   a fired event was dropped by an injected bus fault
``insert``          the helper links a prefetch-bearing trace (3.4)
``repair``          one ±1 distance patch is applied (3.5.2)
``mature``          a load's mature flag is set (3.5.2)
``phase_change``    the phase detector clears mature flags (3.5.2)
``trace_link``      a formed hot trace is linked (3.2)
``trace_unlink``    the watch table backs a trace out (3.2)
``trace_enter``     the core enters a linked trace at a patched PC
``trace_exit``      the core leaves a trace early (unexpected branch)
``helper_begin``    an optimization job dispatches to the helper (3.1)
``helper_end``      the job completes and its effects apply
``helper_fail``     a fault kills the in-flight helper job
``fill``            the hierarchy starts a cache-line fill
``fault``           the fault injector applies (or skips) a plan event
``sample``          the interval sampler closes a measurement window
==================  =====================================================
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, NamedTuple


class TraceEvent(NamedTuple):
    """One cycle-stamped structured event."""

    cycle: float
    kind: str
    fields: Dict

    def to_dict(self) -> Dict:
        record = {"cycle": self.cycle, "kind": self.kind}
        record.update(self.fields)
        return record


class EventRing:
    """Bounded event buffer: keeps the newest events, counts drops."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self._buf: Deque[TraceEvent] = deque(maxlen=capacity)
        self.total_emitted = 0
        self.dropped = 0

    def append(self, event: TraceEvent) -> None:
        buf = self._buf
        if len(buf) == self.capacity:
            self.dropped += 1
        buf.append(event)
        self.total_emitted += 1

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._buf)

    def events(self) -> List[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._buf)

    def summary(self) -> Dict:
        return {
            "capacity": self.capacity,
            "buffered": len(self._buf),
            "total_emitted": self.total_emitted,
            "dropped": self.dropped,
        }
