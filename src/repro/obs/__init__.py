"""Observability: cycle-stamped event tracing, metrics, and sampling.

The simulator's components expose *narrow emit hooks*: each holds an
``obs`` attribute that is ``None`` by default, and every hot-path hook is
guarded by a single attribute check (``if self.obs is not None``), so a
run without an observer pays one pointer comparison per hook and nothing
else — disabled-mode results are bit-for-bit identical to a run with no
observer at all, because observation never touches simulated timing.

One :class:`Observer` aggregates three views of a run:

* a :class:`~repro.obs.metrics.MetricsRegistry` of named counters,
  gauges, and fixed-bucket histograms (load latency, prefetch distance);
* a bounded :class:`~repro.obs.events.EventRing` of cycle-stamped
  structured events (delinquent-load events, ±1 distance repairs,
  maturity transitions, helper-thread jobs, trace link/unlink, fault
  injections) exportable as JSONL or Chrome trace-event JSON
  (Perfetto / chrome://tracing);
* an optional :class:`~repro.obs.sampling.IntervalSampler` producing
  windowed IPC / miss-rate / access-latency series, and a
  :class:`~repro.obs.timeline.TimelineCollector` recording each
  delinquent PC's distance trajectory (section 3.5.2's repair search,
  made visible).
"""

from .events import EventRing, TraceEvent
from .export import (
    chrome_trace,
    fleet_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_fleet_trace,
    write_jsonl,
    write_metrics,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .observer import Observer
from .sampling import IntervalSampler, Sample
from .spans import Span, SpanRecorder, TraceContext, new_sweep_id
from .telemetry import (
    TelemetryHub,
    fleet_summary,
    format_engine_summary,
    prometheus_text,
    spans_cover_journal,
    write_prometheus,
)
from .timeline import PCTimeline, TimelineCollector

__all__ = [
    "Counter",
    "EventRing",
    "Gauge",
    "Histogram",
    "IntervalSampler",
    "MetricsRegistry",
    "Observer",
    "PCTimeline",
    "Sample",
    "Span",
    "SpanRecorder",
    "TelemetryHub",
    "TimelineCollector",
    "TraceContext",
    "TraceEvent",
    "chrome_trace",
    "fleet_chrome_trace",
    "fleet_summary",
    "format_engine_summary",
    "new_sweep_id",
    "prometheus_text",
    "spans_cover_journal",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_fleet_trace",
    "write_jsonl",
    "write_metrics",
    "write_prometheus",
]
