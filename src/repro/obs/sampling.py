"""Interval sampling: windowed IPC / miss-rate / latency time series.

End-of-run aggregates hide exactly what the paper's mechanism *is* — a
trajectory (IPC dips when the memory system shifts, repairs fire, IPC
recovers).  The sampler closes a measurement window every
``interval`` committed instructions; the simulation driver feeds it
cumulative counters at each boundary and it stores the window deltas.

The sampler never touches the core's hot loop: the driver runs the core
in interval-sized chunks (``SMTCore.run`` is already re-entrant — the
resilience experiment has always done this), so sampling costs one
Python call per *window*, not per instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Sample:
    """One closed measurement window (deltas over the window)."""

    #: Window index (0-based) and end-of-window cumulative positions.
    index: int
    end_instruction: int
    end_cycle: float
    #: Window deltas.
    instructions: int
    cycles: float
    loads: int
    misses: int
    total_load_latency: float
    repairs: int
    dl_events: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.loads if self.loads else 0.0

    @property
    def avg_access_latency(self) -> float:
        return self.total_load_latency / self.loads if self.loads else 0.0

    def to_dict(self) -> Dict:
        return {
            "index": self.index,
            "end_instruction": self.end_instruction,
            "end_cycle": self.end_cycle,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "loads": self.loads,
            "misses": self.misses,
            "miss_rate": self.miss_rate,
            "avg_access_latency": self.avg_access_latency,
            "repairs": self.repairs,
            "dl_events": self.dl_events,
        }


#: The cumulative counters the driver reports at each window boundary.
_COUNTER_KEYS = (
    "instructions",
    "cycles",
    "loads",
    "misses",
    "total_load_latency",
    "repairs",
    "dl_events",
)


class IntervalSampler:
    """Collects :class:`Sample` windows from cumulative counter readings."""

    def __init__(self, interval: int) -> None:
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.interval = interval
        self.samples: List[Sample] = []
        self._baseline: Optional[Dict[str, float]] = None

    def start(self, **counters: float) -> None:
        """Open the first window at the current cumulative counters."""
        self._baseline = {key: counters.get(key, 0) for key in _COUNTER_KEYS}

    def record(self, **counters: float) -> Sample:
        """Close a window ending at the given cumulative counters."""
        if self._baseline is None:
            self.start(**{key: 0 for key in _COUNTER_KEYS})
        base = self._baseline
        now = {key: counters.get(key, 0) for key in _COUNTER_KEYS}
        sample = Sample(
            index=len(self.samples),
            end_instruction=int(now["instructions"]),
            end_cycle=now["cycles"],
            instructions=int(now["instructions"] - base["instructions"]),
            cycles=now["cycles"] - base["cycles"],
            loads=int(now["loads"] - base["loads"]),
            misses=int(now["misses"] - base["misses"]),
            total_load_latency=now["total_load_latency"]
            - base["total_load_latency"],
            repairs=int(now["repairs"] - base["repairs"]),
            dl_events=int(now["dl_events"] - base["dl_events"]),
        )
        self.samples.append(sample)
        self._baseline = now
        return sample

    def series(self, key: str) -> List[float]:
        """One attribute across all samples (``series("ipc")``)."""
        return [getattr(sample, key) for sample in self.samples]

    def to_dicts(self) -> List[Dict]:
        return [sample.to_dict() for sample in self.samples]
