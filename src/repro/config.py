"""Configuration objects mirroring the paper's Tables 1 and 2.

:class:`MachineConfig` is the baseline SMT processor of Table 1,
:class:`TridentConfig` the monitoring hardware of Table 2, and
:class:`PrefetchPolicy` selects which of the paper's prefetching schemes is
active (the bars of Figure 5, plus the hardware-only and no-prefetch
baselines of Figures 2 and 9).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from typing import Dict, Optional

from .errors import ConfigError


def _from_dict(cls, raw: Dict, nested: Optional[Dict[str, type]] = None):
    """Rebuild a (frozen) config dataclass from its ``asdict`` form.

    Unknown keys are ignored (a journal written by a newer build still
    resumes on an older one); missing keys take the dataclass default;
    nested dataclasses recurse.  Validation stays where it lives — in
    each class's ``__post_init__``.
    """
    if not isinstance(raw, dict):
        raise ConfigError(
            f"{cls.__name__} must be rebuilt from a dict, got {raw!r}"
        )
    nested = nested or {}
    kwargs = {}
    for spec in dataclass_fields(cls):
        if spec.name not in raw:
            continue
        value = raw[spec.name]
        if spec.name in nested and isinstance(value, dict):
            nested_cls = nested[spec.name]
            rebuild = getattr(nested_cls, "from_dict", None)
            value = (
                rebuild(value) if rebuild is not None
                else _from_dict(nested_cls, value)
            )
        kwargs[spec.name] = value
    return cls(**kwargs)


class PrefetchPolicy(enum.Enum):
    """Which prefetching scheme the simulation runs.

    * ``NONE`` — no prefetching of any kind (Figure 2 leftmost baseline).
    * ``HW_ONLY`` — hardware stream buffers only (Figure 2 / the paper's
      performance baseline).
    * ``BASIC`` — hardware buffers + dynamic software prefetching with the
      one-shot estimated distance of equation (2) (Figure 5, first bar;
      the ADORE-style comparator).
    * ``WHOLE_OBJECT`` — BASIC plus same-object group prefetching
      (Figure 5, second bar).
    * ``SELF_REPAIRING`` — whole-object insertion with adaptive distance
      repair starting from distance 1 (Figure 5, third bar; the paper's
      contribution).
    * ``SW_ONLY`` — self-repairing software prefetching with the hardware
      stream buffers disabled (Figure 9 comparison).
    * ``TRACE_ONLY`` — Trident forms and links hot traces and the DLT
      monitors their loads, but no prefetches are ever inserted
      (measurement configuration for Figure 4's coverage question).
    """

    NONE = "none"
    HW_ONLY = "hw_only"
    BASIC = "basic"
    WHOLE_OBJECT = "whole_object"
    SELF_REPAIRING = "self_repairing"
    SW_ONLY = "sw_only"
    TRACE_ONLY = "trace_only"

    @property
    def software_prefetching(self) -> bool:
        """True when the Trident runtime (traces + DLT) is active."""
        return self in (
            PrefetchPolicy.BASIC,
            PrefetchPolicy.WHOLE_OBJECT,
            PrefetchPolicy.SELF_REPAIRING,
            PrefetchPolicy.SW_ONLY,
            PrefetchPolicy.TRACE_ONLY,
        )

    @property
    def inserts_prefetches(self) -> bool:
        """True when delinquent loads actually earn prefetch instructions."""
        return (
            self.software_prefetching
            and self is not PrefetchPolicy.TRACE_ONLY
        )

    @property
    def hardware_prefetching(self) -> bool:
        """True when the stream buffers are active."""
        return self not in (PrefetchPolicy.NONE, PrefetchPolicy.SW_ONLY)

    @property
    def adaptive_repair(self) -> bool:
        """True when prefetch distances are repaired at runtime."""
        return self in (PrefetchPolicy.SELF_REPAIRING, PrefetchPolicy.SW_ONLY)

    @property
    def same_object_grouping(self) -> bool:
        """True when same-object groups share prefetches (section 3.4.2)."""
        return self is not PrefetchPolicy.BASIC and self.software_prefetching


@dataclass(frozen=True)
class StreamBufferConfig:
    """Hardware stream-buffer prefetcher parameters (Table 1, last row)."""

    num_buffers: int = 8
    entries_per_buffer: int = 8
    history_table_entries: int = 1024
    #: Stride-predictor confidence needed before a buffer is allocated.
    allocation_confidence: int = 2
    #: Entries in the stride-filtered Markov table (the PSB second level,
    #: Sherwood et al.).  0 disables it — the paper's Table-1 baseline is
    #: stride-guided only; `ablation_markov` measures the second level.
    markov_entries: int = 0

    @staticmethod
    def paper_4x4() -> "StreamBufferConfig":
        return StreamBufferConfig(num_buffers=4, entries_per_buffer=4)

    @staticmethod
    def paper_8x8() -> "StreamBufferConfig":
        return StreamBufferConfig(num_buffers=8, entries_per_buffer=8)


@dataclass(frozen=True)
class CacheConfig:
    """One cache level: geometry plus hit latency."""

    size_bytes: int
    associativity: int
    latency: int
    line_size: int = 64

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.line_size * self.associativity)
        if sets <= 0:
            raise ValueError("cache too small for its associativity")
        return sets


@dataclass(frozen=True)
class MachineConfig:
    """The baseline SMT processor of Table 1, plus timing-model knobs.

    The timing-model knobs (``mispredict_penalty``, ``bus_transfer_cycles``,
    ``helper_interference``, ``helper_startup_cycles``) have no row in
    Table 1; they parameterise the dataflow timing model that stands in
    for the out-of-order core SMTSIM simulates cycle by cycle (see
    :mod:`repro.cpu.core`).
    """

    issue_width: int = 4
    fetch_width: int = 4
    pipeline_depth: int = 20
    rob_entries: int = 256
    hardware_contexts: int = 2

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 2, 3)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(512 * 1024, 8, 11)
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig(4 * 1024 * 1024, 16, 35)
    )
    memory_latency: int = 350

    stream_buffers: StreamBufferConfig = field(
        default_factory=StreamBufferConfig.paper_8x8
    )

    #: Cycles one cache-line fill occupies the memory bus (Table 1's
    #: "memory timing and bus occupancy"); fills serialise on the bus, so
    #: over-aggressive prefetching delays demand fills.
    bus_transfer_cycles: int = 4

    # --- timing-model substitutes for the OOO core (see DESIGN.md §2) ---
    #: Flat pipeline-refill penalty for a mispredicted branch.
    mispredict_penalty: int = 14
    #: Multiplier (> 1) on main-thread issue cost while the helper thread
    #: occupies the second context (shared fetch/issue bandwidth).
    helper_interference: float = 1.05
    #: Cycles to spin up the helper thread (paper section 4.3: 2000).
    helper_startup_cycles: int = 2000

    @property
    def line_size(self) -> int:
        return self.l1.line_size

    @property
    def l2_miss_latency(self) -> int:
        """Latency of a load that misses in L2 (i.e. an L3 hit).

        The delinquency test of section 3.3 compares a load's average miss
        latency against half of this value.
        """
        return self.l3.latency

    @staticmethod
    def paper_baseline() -> "MachineConfig":
        """Table 1 exactly (with the 8x8 stream buffers)."""
        return MachineConfig()

    @staticmethod
    def from_dict(raw: Dict) -> "MachineConfig":
        return _from_dict(
            MachineConfig,
            raw,
            nested={
                "l1": CacheConfig,
                "l2": CacheConfig,
                "l3": CacheConfig,
                "stream_buffers": StreamBufferConfig,
            },
        )

    def with_stream_buffers(self, sb: StreamBufferConfig) -> "MachineConfig":
        return replace(self, stream_buffers=sb)

    def with_l1_size(self, size_bytes: int) -> "MachineConfig":
        """Return a copy with a different L1 capacity (section 5.4)."""
        return replace(
            self,
            l1=CacheConfig(
                size_bytes,
                self.l1.associativity,
                self.l1.latency,
                self.l1.line_size,
            ),
        )


@dataclass(frozen=True)
class DLTConfig:
    """Delinquent Load Table parameters (Table 2, bottom block)."""

    entries: int = 1024
    associativity: int = 2
    #: Load monitoring window: accesses per delinquency evaluation.
    access_window: int = 256
    #: Misses within a window needed to classify as delinquent (8/256 = 3%).
    miss_threshold: int = 8
    #: Stride-confidence counter parameters (section 3.3).
    confidence_max: int = 15
    confidence_up: int = 1
    confidence_down: int = 7

    @property
    def miss_rate_threshold(self) -> float:
        return self.miss_threshold / self.access_window

    def with_miss_rate(self, rate: float) -> "DLTConfig":
        """Return a copy whose miss threshold approximates ``rate``."""
        threshold = max(1, round(rate * self.access_window))
        return replace(self, miss_threshold=threshold)

    def with_window(self, window: int) -> "DLTConfig":
        """Return a copy with a different monitoring window, keeping the
        configured miss *rate* constant (as Figure 7 sweeps do)."""
        threshold = max(1, round(self.miss_rate_threshold * window))
        return replace(self, access_window=window, miss_threshold=threshold)

    def with_entries(self, entries: int) -> "DLTConfig":
        return replace(self, entries=entries)


@dataclass(frozen=True)
class TridentConfig:
    """Trident monitoring hardware (Table 2) and trace-formation limits."""

    # Branch profiler.
    profiler_entries: int = 256
    profiler_associativity: int = 4
    profiler_counter_bits: int = 4
    #: Three standalone 16-bit direction bitmaps => up to 48 recorded
    #: branches per captured trace.
    capture_bitmap_branches: int = 48

    # Watch table.
    watch_table_entries: int = 256

    # Trace formation limits.
    max_trace_instructions: int = 256

    dlt: DLTConfig = field(default_factory=DLTConfig)

    #: Helper-thread cost model: cycles charged per trace instruction
    #: processed by the optimizer (on top of the 2000-cycle startup).
    optimizer_cycles_per_instruction: int = 40
    #: Cycles charged for an in-place prefetch repair (much cheaper than
    #: regenerating a trace — the point of section 3.5.1).
    repair_cycles: int = 400

    #: Repair-budget multiplier: a record's distance search gets
    #: ``multiplier × max distance`` repair steps before maturing
    #: (section 3.5.2; the paper uses 2).  A real config field — rather
    #: than the monkeypatch the ablation used to apply — so the budget
    #: sweep is process-safe and content-addressable by the result cache.
    repair_budget_multiplier: float = 2.0

    # Trace backout (Trident's watch-table duty: "identify and back out
    # of hot traces that are under-performing").
    #: Executions observed before a trace is judged.
    backout_min_executions: int = 64
    #: Minimum completed-execution ratio; below it the trace is unlinked.
    backout_completion_threshold: float = 0.35
    #: Recapture attempts per head before the head is blacklisted.
    backout_max_retries: int = 2

    # Phase-aware mature clearing (the future work of section 3.5.2:
    # "clearing the mature flag when there is a working set or phase
    # change").  Off by default — the paper did not evaluate it.
    phase_detection: bool = False
    #: Trace loads per phase-observation interval.
    phase_interval_loads: int = 8192
    #: Relative miss-rate shift that declares a phase change.
    phase_shift_threshold: float = 0.5

    @staticmethod
    def paper_default() -> "TridentConfig":
        return TridentConfig()

    @staticmethod
    def from_dict(raw: Dict) -> "TridentConfig":
        return _from_dict(TridentConfig, raw, nested={"dlt": DLTConfig})

    def with_dlt(self, dlt: DLTConfig) -> "TridentConfig":
        return replace(self, dlt=dlt)

    def with_repair_budget(self, multiplier: float) -> "TridentConfig":
        return replace(self, repair_budget_multiplier=multiplier)


@dataclass(frozen=True)
class SimulationConfig:
    """Everything a single simulation run needs.

    Construction validates the run budgets and coerces a policy given as
    its string value; invalid inputs raise
    :class:`~repro.errors.ConfigError` here, at the surface, instead of a
    deep-stack ``KeyError`` or a silent zero-cycle result later.
    """

    machine: MachineConfig = field(default_factory=MachineConfig)
    trident: TridentConfig = field(default_factory=TridentConfig)
    policy: PrefetchPolicy = PrefetchPolicy.SELF_REPAIRING
    #: Stop after this many committed main-thread instructions.
    max_instructions: int = 200_000
    #: Instructions executed before statistics collection begins (the
    #: paper warms up for 5M of its 100M).
    warmup_instructions: int = 0
    #: Section 5.1 mode: run the optimizer but never link its traces.
    overhead_only: bool = False
    #: RNG seed for workload data layout.
    seed: int = 1
    #: Watchdog budgets (see repro.faults.watchdog): simulated-cycle and
    #: host wall-time ceilings for the whole run, warmup included.  None
    #: disables the ceiling; commit-stall detection is always armed.
    max_cycles: Optional[float] = None
    wall_time_limit: Optional[float] = None
    #: Use the pre-decoded fast interpreter (repro.cpu.fastpath).  The
    #: slow generic loop (``fast=False``) is kept as the differential
    #: reference; both produce byte-identical results.  Part of the
    #: config (and thus the result-cache key) so cached fast and slow
    #: runs never alias.
    fast: bool = True
    #: Capture a resumable snapshot every N committed instructions (see
    #: repro.checkpoint) in addition to the end-of-run capture a
    #: checkpoint sink always attempts.  None captures only at the end.
    #: Cadence can never change simulated state (captures happen at
    #: chunk boundaries, which are proven state-neutral), so this field
    #: is **excluded** from the job spec the result cache hashes — runs
    #: differing only in cadence share results and checkpoints.
    checkpoint_every: Optional[int] = None
    #: Hardware-prefetcher zoo policy name (repro.hwprefetch.zoo): when
    #: set, the named engine replaces the stock stream buffers as the
    #: hierarchy's hardware prefetcher.  Only meaningful when ``policy``
    #: enables hardware prefetching; ``None`` (the default) keeps the
    #: paper's stream buffers.  The job spec omits this field when None,
    #: so pre-zoo cache keys, journal job_keys, and checkpoint prefixes
    #: are byte-unchanged.
    hw_prefetcher: Optional[str] = None

    def __post_init__(self) -> None:
        policy = self.policy
        if isinstance(policy, str):
            try:
                policy = PrefetchPolicy(policy)
            except ValueError:
                known = ", ".join(p.value for p in PrefetchPolicy)
                raise ConfigError(
                    f"unknown prefetch policy {self.policy!r}; known: {known}"
                ) from None
            object.__setattr__(self, "policy", policy)
        elif not isinstance(policy, PrefetchPolicy):
            raise ConfigError(
                f"policy must be a PrefetchPolicy, got {policy!r}"
            )
        if not isinstance(self.machine, MachineConfig):
            raise ConfigError(
                f"machine must be a MachineConfig, got {self.machine!r}"
            )
        if not isinstance(self.trident, TridentConfig):
            raise ConfigError(
                f"trident must be a TridentConfig, got {self.trident!r}"
            )
        if not isinstance(self.max_instructions, int) or self.max_instructions <= 0:
            raise ConfigError(
                "max_instructions must be a positive integer, got "
                f"{self.max_instructions!r}"
            )
        if (
            not isinstance(self.warmup_instructions, int)
            or self.warmup_instructions < 0
        ):
            raise ConfigError(
                "warmup_instructions must be a non-negative integer, got "
                f"{self.warmup_instructions!r}"
            )
        if not isinstance(self.seed, int):
            raise ConfigError(f"seed must be an integer, got {self.seed!r}")
        if not isinstance(self.fast, bool):
            raise ConfigError(f"fast must be a bool, got {self.fast!r}")
        if self.checkpoint_every is not None and (
            not isinstance(self.checkpoint_every, int)
            or self.checkpoint_every <= 0
        ):
            raise ConfigError(
                "checkpoint_every must be a positive integer or None, "
                f"got {self.checkpoint_every!r}"
            )
        if self.hw_prefetcher is not None:
            if not isinstance(self.hw_prefetcher, str):
                raise ConfigError(
                    "hw_prefetcher must be a zoo policy name or None, "
                    f"got {self.hw_prefetcher!r}"
                )
            # Imported lazily: the zoo imports this module at its top.
            from .hwprefetch.zoo import zoo_names

            if self.hw_prefetcher not in zoo_names():
                known = ", ".join(zoo_names())
                raise ConfigError(
                    f"unknown hardware prefetcher {self.hw_prefetcher!r}; "
                    f"known: {known}"
                )
            if not self.policy.hardware_prefetching:
                raise ConfigError(
                    f"hw_prefetcher={self.hw_prefetcher!r} needs a policy "
                    "with hardware prefetching enabled, got "
                    f"{self.policy.value!r}"
                )
        for name in ("max_cycles", "wall_time_limit"):
            value = getattr(self, name)
            if value is None:
                continue
            if not isinstance(value, (int, float)) or value <= 0:
                raise ConfigError(
                    f"{name} must be a positive number or None, got {value!r}"
                )

    def replace(self, **kwargs) -> "SimulationConfig":
        return replace(self, **kwargs)

    @staticmethod
    def from_dict(raw: Dict) -> "SimulationConfig":
        """Rebuild a config from its JSON-able job-spec form (the policy
        arrives as its string value; ``__post_init__`` coerces it)."""
        return _from_dict(
            SimulationConfig,
            raw,
            nested={"machine": MachineConfig, "trident": TridentConfig},
        )
