"""Ablation sweeps over the design choices DESIGN.md calls out.

These go beyond the paper's figures: they isolate individual mechanisms of
the self-repairing design so a reader can see what each one buys.

Every ablation runs through the :class:`~repro.harness.engine
.ExperimentEngine`: the shared HW_ONLY baseline is content-addressed, so
six ablations asking for the same (workload, budget) baseline simulate it
once and replay it from the cache five times instead of re-running it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from dataclasses import dataclass, field

from ..config import DLTConfig, PrefetchPolicy, TridentConfig
from .engine import ExperimentEngine, SimJob, make_job
from .report import arithmetic_mean, render_table, speedup_percent


@dataclass
class AblationResult:
    title: str
    #: variant name -> {workload -> speedup over the HW baseline}.
    variants: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def mean(self, variant: str) -> float:
        per = self.variants[variant]
        return arithmetic_mean(list(per.values()))

    def render(self) -> str:
        names = sorted(
            {w for per in self.variants.values() for w in per}
        )
        headers = ["variant"] + names + ["mean"]
        rows = []
        for variant, per in self.variants.items():
            row = [variant]
            row.extend(
                speedup_percent(per[name]) if name in per else ""
                for name in names
            )
            row.append(speedup_percent(self.mean(variant)))
            rows.append(row)
        return render_table(headers, rows, title=self.title)


def _engine(engine: Optional[ExperimentEngine]) -> ExperimentEngine:
    return engine if engine is not None else ExperimentEngine()


def _baselines(
    engine: ExperimentEngine,
    names: Sequence[str],
    budget: int,
    warmup: int,
    policy: PrefetchPolicy = PrefetchPolicy.HW_ONLY,
) -> Dict[str, object]:
    """The per-workload baseline every variant's speedup divides by.

    One engine batch: identical baselines across ablations (same
    workload, budget, warmup) are simulated once and served from the
    result cache afterwards — this used to be the sweeps' biggest source
    of duplicated work.
    """
    jobs = [
        make_job(
            name, policy=policy,
            max_instructions=budget, warmup_instructions=warmup,
        )
        for name in names
    ]
    results = engine.run_all(jobs)
    return dict(zip(names, results))


def _variant_grid(
    engine: ExperimentEngine,
    result: AblationResult,
    baselines: Dict[str, object],
    variants: Sequence[str],
    jobs: List[SimJob],
) -> None:
    """Fill ``result.variants`` from a variant-major job list (one job
    per variant x baseline workload, in that order)."""
    names = list(baselines)
    results = engine.run_all(jobs)
    index = 0
    for variant in variants:
        per = {}
        for name in names:
            per[name] = results[index].speedup_over(baselines[name])
            index += 1
        result.variants[variant] = per


def ablation_initial_distance(
    workloads: Sequence[str],
    max_instructions: int,
    warmup_instructions: int = 200_000,
    engine: Optional[ExperimentEngine] = None,
) -> AblationResult:
    """Paper section 5.3: starting the repair search from the estimated
    distance performs "almost identical" to starting from 1."""
    result = AblationResult(
        title="Ablation: initial distance for the self-repairing search"
    )
    eng = _engine(engine)
    baselines = _baselines(
        eng, workloads, max_instructions, warmup_instructions
    )
    variants = {
        "start at 1 (paper default)": "one",
        "start at estimate (eq. 2)": "estimate",
    }
    jobs = [
        make_job(
            name,
            policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=max_instructions,
            warmup_instructions=warmup_instructions,
            initial_distance_mode=mode,
        )
        for mode in variants.values()
        for name in baselines
    ]
    _variant_grid(eng, result, baselines, list(variants), jobs)
    return result


def ablation_grouping(
    workloads: Sequence[str],
    max_instructions: int,
    warmup_instructions: int = 200_000,
    engine: Optional[ExperimentEngine] = None,
) -> AblationResult:
    """Same-object grouping on vs off, with repair active in both.

    BASIC groups nothing but also freezes distances; to isolate grouping
    we would want BASIC + repair, which the policy enum doesn't offer —
    so we report the paper's own proxies: WHOLE_OBJECT (grouped, frozen)
    vs BASIC (ungrouped, frozen), plus SELF_REPAIRING for reference.
    """
    result = AblationResult(
        title="Ablation: same-object grouping under adaptive repair"
    )
    eng = _engine(engine)
    baselines = _baselines(
        eng, workloads, max_instructions, warmup_instructions
    )
    variants = {
        "grouped, frozen (WHOLE_OBJECT)": PrefetchPolicy.WHOLE_OBJECT,
        "grouped + repair (SELF_REPAIRING)": PrefetchPolicy.SELF_REPAIRING,
        "ungrouped, frozen (BASIC)": PrefetchPolicy.BASIC,
    }
    jobs = [
        make_job(
            name, policy=policy,
            max_instructions=max_instructions,
            warmup_instructions=warmup_instructions,
        )
        for policy in variants.values()
        for name in baselines
    ]
    _variant_grid(eng, result, baselines, list(variants), jobs)
    return result


def ablation_confidence_penalty(
    workloads: Sequence[str],
    max_instructions: int,
    penalties: Sequence[int] = (1, 3, 7, 15),
    warmup_instructions: int = 200_000,
    engine: Optional[ExperimentEngine] = None,
) -> AblationResult:
    """The DLT's asymmetric stride-confidence update (-7 in the paper):
    smaller penalties let noisy pointer chains masquerade as strided."""
    result = AblationResult(
        title="Ablation: DLT stride-confidence down-step (paper: -7)"
    )
    eng = _engine(engine)
    baselines = _baselines(
        eng, workloads, max_instructions, warmup_instructions
    )
    jobs = [
        make_job(
            name,
            policy=PrefetchPolicy.SELF_REPAIRING,
            trident=TridentConfig().with_dlt(
                DLTConfig(confidence_down=penalty)
            ),
            max_instructions=max_instructions,
            warmup_instructions=warmup_instructions,
        )
        for penalty in penalties
        for name in baselines
    ]
    _variant_grid(
        eng, result, baselines, [f"-{p}" for p in penalties], jobs
    )
    return result


def ablation_markov(
    workloads: Sequence[str],
    max_instructions: int,
    warmup_instructions: int = 200_000,
    engine: Optional[ExperimentEngine] = None,
) -> AblationResult:
    """The PSB's stride-filtered Markov second level (Sherwood et al.,
    the paper's citation [27]): off in the Table-1 baseline, measured
    here as hardware-only speedup over no prefetching."""
    import dataclasses

    from ..config import MachineConfig, StreamBufferConfig

    result = AblationResult(
        title=(
            "Extension: stride-filtered Markov second level for the "
            "stream buffers (off in the paper's Table-1 baseline)"
        )
    )
    eng = _engine(engine)
    none_runs = _baselines(
        eng, workloads, max_instructions, warmup_instructions,
        policy=PrefetchPolicy.NONE,
    )
    variants = {
        "stride-guided only (paper)": 0,
        "with markov second level": 2048,
    }
    jobs = [
        make_job(
            name,
            policy=PrefetchPolicy.HW_ONLY,
            machine=MachineConfig().with_stream_buffers(
                dataclasses.replace(
                    StreamBufferConfig.paper_8x8(),
                    markov_entries=markov_entries,
                )
            ),
            max_instructions=max_instructions,
            warmup_instructions=warmup_instructions,
        )
        for markov_entries in variants.values()
        for name in none_runs
    ]
    _variant_grid(eng, result, none_runs, list(variants), jobs)
    return result


def ablation_phase_detection(
    workloads: Sequence[str],
    max_instructions: int,
    warmup_instructions: int = 200_000,
    engine: Optional[ExperimentEngine] = None,
) -> AblationResult:
    """The paper's stated future work (section 3.5.2): clear mature flags
    on a working-set/phase change so the prefetcher can re-adapt."""
    result = AblationResult(
        title=(
            "Extension: phase-aware mature clearing "
            "(paper future work, off by default)"
        )
    )
    eng = _engine(engine)
    baselines = _baselines(
        eng, workloads, max_instructions, warmup_instructions
    )
    variants = {
        "phase detection off (paper)": False,
        "phase detection on": True,
    }
    jobs = [
        make_job(
            name,
            policy=PrefetchPolicy.SELF_REPAIRING,
            trident=TridentConfig(phase_detection=enabled),
            max_instructions=max_instructions,
            warmup_instructions=warmup_instructions,
        )
        for enabled in variants.values()
        for name in baselines
    ]
    _variant_grid(eng, result, baselines, list(variants), jobs)
    return result


def ablation_repair_budget(
    workloads: Sequence[str],
    max_instructions: int,
    budgets: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    warmup_instructions: int = 200_000,
    engine: Optional[ExperimentEngine] = None,
) -> AblationResult:
    """Scale the 2x max-distance repair budget (paper's maturing rule).

    The multiplier is a real config field
    (``TridentConfig.repair_budget_multiplier``) rather than the class
    monkeypatch this sweep once used: a patch would neither reach pool
    workers nor show up in the cache key.
    """
    result = AblationResult(
        title="Ablation: repair budget multiplier (paper: 2x max distance)"
    )
    eng = _engine(engine)
    baselines = _baselines(
        eng, workloads, max_instructions, warmup_instructions
    )
    jobs = [
        make_job(
            name,
            policy=PrefetchPolicy.SELF_REPAIRING,
            trident=TridentConfig().with_repair_budget(multiplier),
            max_instructions=max_instructions,
            warmup_instructions=warmup_instructions,
        )
        for multiplier in budgets
        for name in baselines
    ]
    _variant_grid(
        eng, result, baselines, [f"{m}x" for m in budgets], jobs
    )
    return result
