"""Ablation sweeps over the design choices DESIGN.md calls out.

These go beyond the paper's figures: they isolate individual mechanisms of
the self-repairing design so a reader can see what each one buys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from ..config import DLTConfig, PrefetchPolicy, TridentConfig
from .report import arithmetic_mean, render_table, speedup_percent
from .runner import run_simulation


@dataclass
class AblationResult:
    title: str
    #: variant name -> {workload -> speedup over the HW baseline}.
    variants: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def mean(self, variant: str) -> float:
        per = self.variants[variant]
        return arithmetic_mean(list(per.values()))

    def render(self) -> str:
        names = sorted(
            {w for per in self.variants.values() for w in per}
        )
        headers = ["variant"] + names + ["mean"]
        rows = []
        for variant, per in self.variants.items():
            row = [variant]
            row.extend(
                speedup_percent(per[name]) if name in per else ""
                for name in names
            )
            row.append(speedup_percent(self.mean(variant)))
            rows.append(row)
        return render_table(headers, rows, title=self.title)


def _baselines(
    names: Sequence[str], budget: int, warmup: int
) -> Dict[str, object]:
    return {
        name: run_simulation(
            name,
            policy=PrefetchPolicy.HW_ONLY,
            max_instructions=budget,
            warmup_instructions=warmup,
        )
        for name in names
    }


def ablation_initial_distance(
    workloads: Sequence[str],
    max_instructions: int,
    warmup_instructions: int = 200_000,
) -> AblationResult:
    """Paper section 5.3: starting the repair search from the estimated
    distance performs "almost identical" to starting from 1."""
    result = AblationResult(
        title="Ablation: initial distance for the self-repairing search"
    )
    baselines = _baselines(workloads, max_instructions, warmup_instructions)
    for variant, mode in (
        ("start at 1 (paper default)", "one"),
        ("start at estimate (eq. 2)", "estimate"),
    ):
        per = {}
        for name in workloads:
            run = run_simulation(
                name,
                policy=PrefetchPolicy.SELF_REPAIRING,
                max_instructions=max_instructions,
                warmup_instructions=warmup_instructions,
                initial_distance_mode=mode,
            )
            per[name] = run.speedup_over(baselines[name])
        result.variants[variant] = per
    return result


def ablation_grouping(
    workloads: Sequence[str],
    max_instructions: int,
    warmup_instructions: int = 200_000,
) -> AblationResult:
    """Same-object grouping on vs off, with repair active in both."""
    result = AblationResult(
        title="Ablation: same-object grouping under adaptive repair"
    )
    baselines = _baselines(workloads, max_instructions, warmup_instructions)
    per_on: Dict[str, float] = {}
    per_off: Dict[str, float] = {}
    for name in workloads:
        on = run_simulation(
            name,
            policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=max_instructions,
            warmup_instructions=warmup_instructions,
        )
        per_on[name] = on.speedup_over(baselines[name])
        # BASIC groups nothing but also freezes distances; to isolate
        # grouping we run BASIC with the adaptive initial mode "one" and
        # compare WHOLE_OBJECT-without-repair against BASIC elsewhere;
        # here the honest ungrouped-adaptive variant is BASIC + repair,
        # which the policy enum doesn't offer — so we report the paper's
        # own proxies: WHOLE_OBJECT (grouped, frozen) vs BASIC (ungrouped,
        # frozen).
        grouped = run_simulation(
            name,
            policy=PrefetchPolicy.WHOLE_OBJECT,
            max_instructions=max_instructions,
            warmup_instructions=warmup_instructions,
        )
        ungrouped = run_simulation(
            name,
            policy=PrefetchPolicy.BASIC,
            max_instructions=max_instructions,
            warmup_instructions=warmup_instructions,
        )
        per_off[name] = ungrouped.speedup_over(baselines[name])
        result.variants.setdefault("grouped, frozen (WHOLE_OBJECT)", {})[
            name
        ] = grouped.speedup_over(baselines[name])
    result.variants["grouped + repair (SELF_REPAIRING)"] = per_on
    result.variants["ungrouped, frozen (BASIC)"] = per_off
    return result


def ablation_confidence_penalty(
    workloads: Sequence[str],
    max_instructions: int,
    penalties: Sequence[int] = (1, 3, 7, 15),
    warmup_instructions: int = 200_000,
) -> AblationResult:
    """The DLT's asymmetric stride-confidence update (-7 in the paper):
    smaller penalties let noisy pointer chains masquerade as strided."""
    result = AblationResult(
        title="Ablation: DLT stride-confidence down-step (paper: -7)"
    )
    baselines = _baselines(workloads, max_instructions, warmup_instructions)
    for penalty in penalties:
        dlt = DLTConfig(confidence_down=penalty)
        per = {}
        for name in workloads:
            run = run_simulation(
                name,
                policy=PrefetchPolicy.SELF_REPAIRING,
                trident=TridentConfig().with_dlt(dlt),
                max_instructions=max_instructions,
                warmup_instructions=warmup_instructions,
            )
            per[name] = run.speedup_over(baselines[name])
        result.variants[f"-{penalty}"] = per
    return result


def ablation_markov(
    workloads: Sequence[str],
    max_instructions: int,
    warmup_instructions: int = 200_000,
) -> AblationResult:
    """The PSB's stride-filtered Markov second level (Sherwood et al.,
    the paper's citation [27]): off in the Table-1 baseline, measured
    here as hardware-only speedup over no prefetching."""
    import dataclasses

    from ..config import MachineConfig, StreamBufferConfig

    result = AblationResult(
        title=(
            "Extension: stride-filtered Markov second level for the "
            "stream buffers (off in the paper's Table-1 baseline)"
        )
    )
    none_runs = {
        name: run_simulation(
            name,
            policy=PrefetchPolicy.NONE,
            max_instructions=max_instructions,
            warmup_instructions=warmup_instructions,
        )
        for name in workloads
    }
    for variant, markov_entries in (
        ("stride-guided only (paper)", 0),
        ("with markov second level", 2048),
    ):
        machine = MachineConfig().with_stream_buffers(
            dataclasses.replace(
                StreamBufferConfig.paper_8x8(),
                markov_entries=markov_entries,
            )
        )
        per = {}
        for name in workloads:
            run = run_simulation(
                name,
                policy=PrefetchPolicy.HW_ONLY,
                machine=machine,
                max_instructions=max_instructions,
                warmup_instructions=warmup_instructions,
            )
            per[name] = run.speedup_over(none_runs[name])
        result.variants[variant] = per
    return result


def ablation_phase_detection(
    workloads: Sequence[str],
    max_instructions: int,
    warmup_instructions: int = 200_000,
) -> AblationResult:
    """The paper's stated future work (section 3.5.2): clear mature flags
    on a working-set/phase change so the prefetcher can re-adapt."""
    result = AblationResult(
        title=(
            "Extension: phase-aware mature clearing "
            "(paper future work, off by default)"
        )
    )
    baselines = _baselines(workloads, max_instructions, warmup_instructions)
    for variant, enabled in (
        ("phase detection off (paper)", False),
        ("phase detection on", True),
    ):
        trident = TridentConfig(phase_detection=enabled)
        per = {}
        for name in workloads:
            run = run_simulation(
                name,
                policy=PrefetchPolicy.SELF_REPAIRING,
                trident=trident,
                max_instructions=max_instructions,
                warmup_instructions=warmup_instructions,
            )
            per[name] = run.speedup_over(baselines[name])
        result.variants[variant] = per
    return result


def ablation_repair_budget(
    workloads: Sequence[str],
    max_instructions: int,
    budgets: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    warmup_instructions: int = 200_000,
) -> AblationResult:
    """Scale the 2x max-distance repair budget (paper's maturing rule)."""
    from ..core.repair import PrefetchRecord

    result = AblationResult(
        title="Ablation: repair budget multiplier (paper: 2x max distance)"
    )
    baselines = _baselines(workloads, max_instructions, warmup_instructions)
    original = PrefetchRecord.set_budget_from_max
    try:
        for multiplier in budgets:

            def patched(self, max_distance, _m=multiplier):
                self.max_distance = max_distance
                budget = max(1, int(_m * max_distance))
                if budget > self.repairs_left:
                    self.repairs_left = budget

            PrefetchRecord.set_budget_from_max = patched
            per = {}
            for name in workloads:
                run = run_simulation(
                    name,
                    policy=PrefetchPolicy.SELF_REPAIRING,
                    max_instructions=max_instructions,
                    warmup_instructions=warmup_instructions,
                )
                per[name] = run.speedup_over(baselines[name])
            result.variants[f"{multiplier}x"] = per
    finally:
        PrefetchRecord.set_budget_from_max = original
    return result
