"""One entry per paper table/figure (the per-experiment index of
DESIGN.md).

Each ``fig*`` function runs the simulations for one paper figure and
returns a structured result object with a ``render()`` method printing
paper-style rows.  Budgets are deliberately parameters: the test suite
uses tiny budgets, the benches use ``REPRO_BENCH_INSTRUCTIONS``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from ..config import (
    DLTConfig,
    MachineConfig,
    PrefetchPolicy,
    SimulationConfig,
    StreamBufferConfig,
    TridentConfig,
)
from ..faults.plan import FaultPlan
from ..obs import Observer, write_chrome_trace
from ..workloads.registry import BENCHMARK_NAMES
from .charts import sparkline
from .engine import (
    ExperimentEngine,
    make_job,
    run_workload_groups,
)
from .report import (
    arithmetic_mean,
    percent,
    render_errors,
    render_table,
    speedup_percent,
)
from .runner import Simulation, run_simulation

#: Environment knobs for the bench harness.
ENV_INSTRUCTIONS = "REPRO_BENCH_INSTRUCTIONS"
ENV_WARMUP = "REPRO_BENCH_WARMUP"
ENV_WORKLOADS = "REPRO_BENCH_WORKLOADS"

_T = TypeVar("_T")


def _error_record(workload: str, exc: Exception, retried: bool) -> Dict:
    record = {
        "workload": workload,
        "type": type(exc).__name__,
        "error": str(exc),
    }
    if retried:
        record["retried"] = True
    return record


def run_isolated(
    errors: List[Dict], workload: str, fn: Callable[[], _T]
) -> Optional[_T]:
    """Run one workload's simulations with failure isolation.

    A failing workload no longer aborts the whole figure sweep: the
    exception becomes a record in ``errors`` (rendered under the result
    table) and the caller gets None for that workload.  Transient errors
    — a watchdog wall-time trip under host load, anything flagged
    ``transient`` — earn exactly one retry before being recorded.
    """
    try:
        return fn()
    except Exception as exc:
        if getattr(exc, "transient", False):
            try:
                return fn()
            except Exception as retry_exc:
                errors.append(_error_record(workload, retry_exc, retried=True))
                return None
        errors.append(_error_record(workload, exc, retried=False))
        return None


def _with_errors(table: str, errors: List[Dict]) -> str:
    """Append the rendered error section to a result table."""
    if not errors:
        return table
    return table + "\n\n" + render_errors(errors)


def _engine(engine: Optional[ExperimentEngine]) -> ExperimentEngine:
    """The caller's engine, or a fresh serial one with the default cache."""
    return engine if engine is not None else ExperimentEngine()


def bench_instructions(default: int = 120_000) -> int:
    return int(os.environ.get(ENV_INSTRUCTIONS, default))


def bench_warmup(default: int = 200_000) -> int:
    """Instructions run before measurement begins.

    The paper warms for 5M of 100M instructions; proportionally we warm
    longer because the optimizer's convergence horizon (DLT windows x
    repair steps) is a fixed instruction count, not a fixed fraction.
    """
    return int(os.environ.get(ENV_WARMUP, default))


def bench_workloads(default: Optional[Sequence[str]] = None) -> List[str]:
    raw = os.environ.get(ENV_WORKLOADS)
    if raw:
        return [name.strip() for name in raw.split(",") if name.strip()]
    return list(default if default is not None else BENCHMARK_NAMES)


# ---------------------------------------------------------------------------
# Figure 2 — hardware stream-buffer baselines.
# ---------------------------------------------------------------------------
@dataclass
class Fig2Result:
    rows: List[Dict] = field(default_factory=list)
    errors: List[Dict] = field(default_factory=list)

    @property
    def mean_speedup_4x4(self) -> float:
        return arithmetic_mean([r["speedup_4x4"] for r in self.rows])

    @property
    def mean_speedup_8x8(self) -> float:
        return arithmetic_mean([r["speedup_8x8"] for r in self.rows])

    def render(self) -> str:
        table_rows = [
            (
                r["workload"],
                f"{r['ipc_none']:.3f}",
                f"{r['ipc_4x4']:.3f}",
                f"{r['ipc_8x8']:.3f}",
                speedup_percent(r["speedup_4x4"]),
                speedup_percent(r["speedup_8x8"]),
            )
            for r in self.rows
        ]
        table_rows.append(
            (
                "average",
                "",
                "",
                "",
                speedup_percent(self.mean_speedup_4x4),
                speedup_percent(self.mean_speedup_8x8),
            )
        )
        table = render_table(
            ["benchmark", "IPC none", "IPC 4x4", "IPC 8x8",
             "4x4 speedup", "8x8 speedup"],
            table_rows,
            title=(
                "Figure 2: baseline performance with hardware stream "
                "buffers (paper: +35% for 4x4, +40% for 8x8)"
            ),
        )
        return _with_errors(table, self.errors)


def fig2_hw_baseline(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
    engine: Optional[ExperimentEngine] = None,
    fast: bool = True,
) -> Fig2Result:
    names = bench_workloads(workloads)
    budget = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    result = Fig2Result()
    machine_4x4 = MachineConfig().with_stream_buffers(
        StreamBufferConfig.paper_4x4()
    )
    jobs = []
    for name in names:
        jobs.append(make_job(
            name, policy=PrefetchPolicy.NONE,
            max_instructions=budget, warmup_instructions=warm, fast=fast,
        ))
        jobs.append(make_job(
            name, policy=PrefetchPolicy.HW_ONLY, machine=machine_4x4,
            max_instructions=budget, warmup_instructions=warm, fast=fast,
        ))
        jobs.append(make_job(
            name, policy=PrefetchPolicy.HW_ONLY,
            max_instructions=budget, warmup_instructions=warm, fast=fast,
        ))
    grouped = run_workload_groups(_engine(engine), jobs, result.errors)
    for name in names:
        if name not in grouped:
            continue
        none, hw44, hw88 = grouped[name]
        result.rows.append({
            "workload": name,
            "ipc_none": none.ipc,
            "ipc_4x4": hw44.ipc,
            "ipc_8x8": hw88.ipc,
            "speedup_4x4": hw44.speedup_over(none),
            "speedup_8x8": hw88.speedup_over(none),
        })
    return result


# ---------------------------------------------------------------------------
# Figure 3 / section 5.1 — optimizer overhead and helper activity.
# ---------------------------------------------------------------------------
@dataclass
class Fig3Result:
    rows: List[Dict] = field(default_factory=list)
    errors: List[Dict] = field(default_factory=list)

    @property
    def mean_helper_active(self) -> float:
        return arithmetic_mean([r["helper_active"] for r in self.rows])

    @property
    def mean_overhead(self) -> float:
        return arithmetic_mean([r["overhead"] for r in self.rows])

    def render(self) -> str:
        table_rows = [
            (
                r["workload"],
                percent(r["helper_active"], 2),
                percent(r["overhead"], 2),
            )
            for r in self.rows
        ]
        table_rows.append(
            (
                "average",
                percent(self.mean_helper_active, 2),
                percent(self.mean_overhead, 2),
            )
        )
        table = render_table(
            ["benchmark", "helper active", "overhead-only slowdown"],
            table_rows,
            title=(
                "Figure 3 / section 5.1: helper-thread activity (paper: "
                "2.2% avg) and optimize-but-don't-link cost (paper: 0.6%)"
            ),
        )
        return _with_errors(table, self.errors)


def fig3_overhead(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
    engine: Optional[ExperimentEngine] = None,
    fast: bool = True,
) -> Fig3Result:
    names = bench_workloads(workloads)
    budget = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    result = Fig3Result()
    jobs = []
    for name in names:
        jobs.append(make_job(
            name, policy=PrefetchPolicy.HW_ONLY,
            max_instructions=budget, warmup_instructions=warm, fast=fast,
        ))
        jobs.append(make_job(
            name, policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=budget, warmup_instructions=warm, fast=fast,
            overhead_only=True,
        ))
        jobs.append(make_job(
            name, policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=budget, warmup_instructions=warm, fast=fast,
        ))
    grouped = run_workload_groups(_engine(engine), jobs, result.errors)
    for name in names:
        if name not in grouped:
            continue
        base, overhead_run, full = grouped[name]
        result.rows.append({
            "workload": name,
            "helper_active": full.helper_active_fraction,
            "overhead": max(0.0, base.ipc / overhead_run.ipc - 1.0),
        })
    return result


# ---------------------------------------------------------------------------
# Figure 4 — load-miss coverage by hot traces and the prefetcher.
# ---------------------------------------------------------------------------
@dataclass
class Fig4Result:
    rows: List[Dict] = field(default_factory=list)
    errors: List[Dict] = field(default_factory=list)

    @property
    def mean_trace_coverage(self) -> float:
        return arithmetic_mean([r["trace_coverage"] for r in self.rows])

    @property
    def mean_prefetch_coverage(self) -> float:
        return arithmetic_mean([r["prefetch_coverage"] for r in self.rows])

    def render(self) -> str:
        table_rows = [
            (
                r["workload"],
                percent(r["trace_coverage"]),
                percent(r["prefetch_coverage"]),
            )
            for r in self.rows
        ]
        table_rows.append(
            (
                "average",
                percent(self.mean_trace_coverage),
                percent(self.mean_prefetch_coverage),
            )
        )
        table = render_table(
            ["benchmark", "misses in hot traces", "misses prefetchable"],
            table_rows,
            title=(
                "Figure 4: load-miss coverage (paper: >85% in traces, "
                "~55% prefetchable; dot/parser low; gap low-coverage/"
                "high-prefetchable)"
            ),
        )
        return _with_errors(table, self.errors)


def fig4_coverage(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
    engine: Optional[ExperimentEngine] = None,
    fast: bool = True,
) -> Fig4Result:
    names = bench_workloads(workloads)
    budget = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    result = Fig4Result()
    # Figure 4 asks which misses *occur while executing hot traces* and
    # which of those the prefetcher targets.  A successful prefetch
    # erases the miss it covered, so the miss profile comes from a
    # monitoring-only run (traces linked, nothing inserted) and the
    # targeted-PC set from the self-repairing run.
    jobs = []
    for name in names:
        jobs.append(make_job(
            name, policy=PrefetchPolicy.TRACE_ONLY,
            max_instructions=budget, warmup_instructions=warm, fast=fast,
        ))
        jobs.append(make_job(
            name, policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=budget, warmup_instructions=warm, fast=fast,
        ))
    grouped = run_workload_groups(_engine(engine), jobs, result.errors)
    for name in names:
        if name not in grouped:
            continue
        baseline, run = grouped[name]
        profile = baseline.miss_profile()
        total = sum(profile.values())
        targeted = sum(
            count
            for pc, count in profile.items()
            if pc in run.targeted_load_pcs
        )
        result.rows.append({
            "workload": name,
            "trace_coverage": baseline.miss_trace_coverage,
            "prefetch_coverage": targeted / total if total else 0.0,
        })
    return result


# ---------------------------------------------------------------------------
# Figure 5 — the headline comparison: basic / whole-object / self-repairing.
# ---------------------------------------------------------------------------
@dataclass
class Fig5Result:
    rows: List[Dict] = field(default_factory=list)
    errors: List[Dict] = field(default_factory=list)

    def mean_speedup(self, key: str) -> float:
        return arithmetic_mean([r[key] for r in self.rows])

    def render(self) -> str:
        table_rows = [
            (
                r["workload"],
                speedup_percent(r["basic"]),
                speedup_percent(r["whole_object"]),
                speedup_percent(r["self_repairing"]),
            )
            for r in self.rows
        ]
        table_rows.append(
            (
                "average",
                speedup_percent(self.mean_speedup("basic")),
                speedup_percent(self.mean_speedup("whole_object")),
                speedup_percent(self.mean_speedup("self_repairing")),
            )
        )
        from .charts import grouped_bar_chart

        table = render_table(
            ["benchmark", "basic", "whole object", "self-repairing"],
            table_rows,
            title=(
                "Figure 5: software prefetching speedup over the 8x8 "
                "hardware baseline (paper: +11% basic, +23% "
                "self-repairing)"
            ),
        )
        chart = grouped_bar_chart(
            "speedup over hardware baseline",
            [
                (
                    r["workload"],
                    {
                        "basic": r["basic"],
                        "self-repairing": r["self_repairing"],
                    },
                )
                for r in self.rows
            ],
            series=["basic", "self-repairing"],
        )
        return _with_errors(table + "\n\n" + chart, self.errors)


def fig5_policies(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
    engine: Optional[ExperimentEngine] = None,
    fast: bool = True,
) -> Fig5Result:
    names = bench_workloads(workloads)
    budget = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    result = Fig5Result()
    policies = (
        ("basic", PrefetchPolicy.BASIC),
        ("whole_object", PrefetchPolicy.WHOLE_OBJECT),
        ("self_repairing", PrefetchPolicy.SELF_REPAIRING),
    )
    jobs = []
    for name in names:
        jobs.append(make_job(
            name, policy=PrefetchPolicy.HW_ONLY,
            max_instructions=budget, warmup_instructions=warm, fast=fast,
        ))
        for _, policy in policies:
            jobs.append(make_job(
                name, policy=policy,
                max_instructions=budget, warmup_instructions=warm, fast=fast,
            ))
    grouped = run_workload_groups(_engine(engine), jobs, result.errors)
    for name in names:
        if name not in grouped:
            continue
        baseline, *runs = grouped[name]
        row = {"workload": name}
        for (key, _), run in zip(policies, runs):
            row[key] = run.speedup_over(baseline)
        result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# Figure 6 — dynamic-load outcome breakdown.
# ---------------------------------------------------------------------------
@dataclass
class Fig6Result:
    rows: List[Dict] = field(default_factory=list)
    errors: List[Dict] = field(default_factory=list)

    def render(self) -> str:
        table_rows = [
            (
                r["workload"],
                percent(r["hit"]),
                percent(r["hit_prefetched"]),
                percent(r["partial_hit"]),
                percent(r["miss"]),
                percent(r["miss_due_to_prefetch"], 2),
            )
            for r in self.rows
        ]
        table = render_table(
            ["benchmark", "hits", "hit-prefetched", "partial hits",
             "misses", "miss-due-to-prefetch"],
            table_rows,
            title=(
                "Figure 6: breakdown of all dynamic loads (paper: partial "
                "hits and prefetch-caused misses are both rare)"
            ),
        )
        return _with_errors(table, self.errors)


def fig6_breakdown(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
    engine: Optional[ExperimentEngine] = None,
    fast: bool = True,
) -> Fig6Result:
    names = bench_workloads(workloads)
    budget = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    result = Fig6Result()
    jobs = [
        make_job(
            name, policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=budget, warmup_instructions=warm, fast=fast,
        )
        for name in names
    ]
    grouped = run_workload_groups(_engine(engine), jobs, result.errors)
    for name in names:
        if name not in grouped:
            continue
        (run,) = grouped[name]
        row = {"workload": name}
        row.update(run.breakdown())
        result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# Figure 7 — monitoring-window / miss-threshold sensitivity.
# ---------------------------------------------------------------------------
@dataclass
class Fig7Result:
    #: (window, miss-rate) -> mean speedup over the HW baseline.
    grid: Dict = field(default_factory=dict)
    windows: List[int] = field(default_factory=list)
    rates: List[float] = field(default_factory=list)
    errors: List[Dict] = field(default_factory=list)

    def render(self) -> str:
        headers = ["window \\ rate"] + [percent(r, 0) for r in self.rates]
        table_rows = []
        for window in self.windows:
            row = [str(window)]
            for rate in self.rates:
                row.append(speedup_percent(self.grid[(window, rate)]))
            table_rows.append(row)
        table = render_table(
            headers,
            table_rows,
            title=(
                "Figure 7: mean self-repairing speedup vs monitoring "
                "window and miss-rate threshold (paper: 3% at 256 best)"
            ),
        )
        return _with_errors(table, self.errors)


def _hw_baselines(
    engine: ExperimentEngine,
    names: Sequence[str],
    budget: int,
    warm: int,
    errors: List[Dict],
    fast: bool = True,
) -> Dict[str, "object"]:
    """Shared HW_ONLY baselines, one engine batch (cache-deduplicated
    across every figure and sweep that asks for the same budget)."""
    jobs = [
        make_job(
            name, policy=PrefetchPolicy.HW_ONLY,
            max_instructions=budget, warmup_instructions=warm, fast=fast,
        )
        for name in names
    ]
    outcomes = engine.run(jobs)
    baselines = {}
    for job, outcome in zip(jobs, outcomes):
        if outcome.ok:
            baselines[job.workload] = outcome.result
        else:
            errors.append(outcome.error)
    return baselines


def fig7_threshold_sweep(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
    windows: Sequence[int] = (128, 256, 512),
    rates: Sequence[float] = (0.01, 0.03, 0.06, 0.12),
    engine: Optional[ExperimentEngine] = None,
    fast: bool = True,
) -> Fig7Result:
    names = bench_workloads(workloads)
    budget = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    result = Fig7Result(windows=list(windows), rates=list(rates))
    eng = _engine(engine)
    baselines = _hw_baselines(eng, names, budget, warm, result.errors, fast=fast)
    cells = [(window, rate) for window in windows for rate in rates]
    jobs = []
    for window, rate in cells:
        dlt = DLTConfig().with_window(window).with_miss_rate(rate)
        for name in baselines:
            jobs.append(make_job(
                name,
                policy=PrefetchPolicy.SELF_REPAIRING,
                trident=TridentConfig().with_dlt(dlt),
                max_instructions=budget, warmup_instructions=warm, fast=fast,
            ))
    outcomes = eng.run(jobs)
    # A workload failing mid-sweep is recorded once and excluded from
    # that cell and the rest of the grid (same row/column semantics the
    # serial sweep had; parallel execution just wastes the dropped work).
    failed: set = set()
    index = 0
    for window, rate in cells:
        speedups = []
        for name in baselines:
            outcome = outcomes[index]
            index += 1
            if name in failed:
                continue
            if not outcome.ok:
                result.errors.append(outcome.error)
                failed.add(name)
                continue
            speedups.append(outcome.result.speedup_over(baselines[name]))
        result.grid[(window, rate)] = arithmetic_mean(speedups)
    return result


# ---------------------------------------------------------------------------
# Figure 8 — DLT-size sensitivity.
# ---------------------------------------------------------------------------
@dataclass
class Fig8Result:
    #: size -> {workload -> speedup}, plus "mean".
    by_size: Dict[int, Dict[str, float]] = field(default_factory=dict)
    sizes: List[int] = field(default_factory=list)
    spotlight: List[str] = field(default_factory=list)
    errors: List[Dict] = field(default_factory=list)

    def render(self) -> str:
        headers = ["DLT entries", "mean"] + list(self.spotlight)
        table_rows = []
        for size in self.sizes:
            row = [str(size), speedup_percent(self.by_size[size]["mean"])]
            for name in self.spotlight:
                value = self.by_size[size].get(name)
                row.append("" if value is None else speedup_percent(value))
            table_rows.append(row)
        table = render_table(
            headers,
            table_rows,
            title=(
                "Figure 8: self-repairing speedup vs DLT size (paper: "
                "mostly flat; dot and parser want bigger tables)"
            ),
        )
        return _with_errors(table, self.errors)


def fig8_dlt_sweep(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
    sizes: Sequence[int] = (128, 256, 512, 1024, 2048),
    spotlight: Sequence[str] = ("dot", "parser"),
    engine: Optional[ExperimentEngine] = None,
    fast: bool = True,
) -> Fig8Result:
    names = bench_workloads(workloads)
    budget = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    result = Fig8Result(
        sizes=list(sizes),
        spotlight=[s for s in spotlight if s in names],
    )
    eng = _engine(engine)
    baselines = _hw_baselines(eng, names, budget, warm, result.errors, fast=fast)
    jobs = []
    for size in sizes:
        dlt = DLTConfig().with_entries(size)
        for name in baselines:
            jobs.append(make_job(
                name,
                policy=PrefetchPolicy.SELF_REPAIRING,
                trident=TridentConfig().with_dlt(dlt),
                max_instructions=budget, warmup_instructions=warm, fast=fast,
            ))
    outcomes = eng.run(jobs)
    failed: set = set()
    index = 0
    for size in sizes:
        per: Dict[str, float] = {}
        for name in baselines:
            outcome = outcomes[index]
            index += 1
            if name in failed:
                continue
            if not outcome.ok:
                result.errors.append(outcome.error)
                failed.add(name)
                continue
            per[name] = outcome.result.speedup_over(baselines[name])
        per["mean"] = arithmetic_mean(
            [v for k, v in per.items() if k != "mean"]
        )
        result.by_size[size] = per
    return result


# ---------------------------------------------------------------------------
# Figure 9 — software vs hardware prefetching, both over no prefetching.
# ---------------------------------------------------------------------------
@dataclass
class Fig9Result:
    rows: List[Dict] = field(default_factory=list)
    errors: List[Dict] = field(default_factory=list)

    def mean_speedup(self, key: str) -> float:
        return arithmetic_mean([r[key] for r in self.rows])

    def render(self) -> str:
        table_rows = [
            (
                r["workload"],
                speedup_percent(r["hw_only"]),
                speedup_percent(r["sw_only"]),
                speedup_percent(r["combined"]),
            )
            for r in self.rows
        ]
        table_rows.append(
            (
                "average",
                speedup_percent(self.mean_speedup("hw_only")),
                speedup_percent(self.mean_speedup("sw_only")),
                speedup_percent(self.mean_speedup("combined")),
            )
        )
        from .charts import grouped_bar_chart

        table = render_table(
            ["benchmark", "HW 8x8", "SW self-repairing", "combined"],
            table_rows,
            title=(
                "Figure 9: prefetching speedup over no prefetching "
                "(paper: SW beats HW by ~11% on average; dot/equake/swim "
                "favour HW)"
            ),
        )
        chart = grouped_bar_chart(
            "speedup over no prefetching",
            [
                (
                    r["workload"],
                    {"hw": r["hw_only"], "sw": r["sw_only"]},
                )
                for r in self.rows
            ],
            series=["hw", "sw"],
        )
        return _with_errors(table + "\n\n" + chart, self.errors)


def fig9_sw_vs_hw(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
    engine: Optional[ExperimentEngine] = None,
    fast: bool = True,
) -> Fig9Result:
    names = bench_workloads(workloads)
    budget = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    result = Fig9Result()
    jobs = []
    for name in names:
        for policy in (
            PrefetchPolicy.NONE,
            PrefetchPolicy.HW_ONLY,
            PrefetchPolicy.SW_ONLY,
            PrefetchPolicy.SELF_REPAIRING,
        ):
            jobs.append(make_job(
                name, policy=policy,
                max_instructions=budget, warmup_instructions=warm, fast=fast,
            ))
    grouped = run_workload_groups(_engine(engine), jobs, result.errors)
    for name in names:
        if name not in grouped:
            continue
        none, hw, sw, combined = grouped[name]
        result.rows.append({
            "workload": name,
            "hw_only": hw.speedup_over(none),
            "sw_only": sw.speedup_over(none),
            "combined": combined.speedup_over(none),
        })
    return result


# ---------------------------------------------------------------------------
# Section 5.4 closing note — spend the DLT bits on a bigger L1 instead.
# ---------------------------------------------------------------------------
@dataclass
class CacheEquivResult:
    rows: List[Dict] = field(default_factory=list)
    errors: List[Dict] = field(default_factory=list)

    @property
    def mean_speedup(self) -> float:
        return arithmetic_mean([r["speedup"] for r in self.rows])

    def render(self) -> str:
        table_rows = [
            (r["workload"], speedup_percent(r["speedup"]))
            for r in self.rows
        ]
        table_rows.append(("average", speedup_percent(self.mean_speedup)))
        table = render_table(
            ["benchmark", "bigger-L1 speedup"],
            table_rows,
            title=(
                "Section 5.4: DLT+watch-table bits spent on L1 capacity "
                "instead (paper: merely +0.8%)"
            ),
        )
        return _with_errors(table, self.errors)


def cache_equivalent_area(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
    engine: Optional[ExperimentEngine] = None,
    fast: bool = True,
) -> CacheEquivResult:
    """Enlarge the L1 by the monitoring structures' storage (~24 KB: 1024
    DLT entries x ~22 bytes + 256 watch entries) and measure the gain."""
    names = bench_workloads(workloads)
    budget = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    result = CacheEquivResult()
    bigger = MachineConfig().with_l1_size(88 * 1024)
    jobs = []
    for name in names:
        jobs.append(make_job(
            name, policy=PrefetchPolicy.HW_ONLY,
            max_instructions=budget, warmup_instructions=warm, fast=fast,
        ))
        jobs.append(make_job(
            name, policy=PrefetchPolicy.HW_ONLY, machine=bigger,
            max_instructions=budget, warmup_instructions=warm, fast=fast,
        ))
    grouped = run_workload_groups(_engine(engine), jobs, result.errors)
    for name in names:
        if name not in grouped:
            continue
        base, big = grouped[name]
        result.rows.append(
            {"workload": name, "speedup": big.speedup_over(base)}
        )
    return result


# ---------------------------------------------------------------------------
# Resilience — recovery after an injected DRAM latency phase shift.
# ---------------------------------------------------------------------------
@dataclass
class ResilienceResult:
    """Windows-to-reconverge and IPC loss after a mid-run fault.

    Halfway through the measured budget a permanent DRAM latency increase
    is injected (a memory-system phase shift).  The self-repairing policy
    — with the section-3.5.2 phase detector clearing mature flags — should
    resume repairing and climb back; the basic policy tuned once and
    cannot.
    """

    #: Measured chunks per run; the fault lands at the halfway boundary.
    chunks: int = 8
    extra_cycles: int = 250
    rows: List[Dict] = field(default_factory=list)
    errors: List[Dict] = field(default_factory=list)

    def mean_recovery(self, key: str) -> float:
        return arithmetic_mean([r[key]["recovery"] for r in self.rows])

    def render(self) -> str:
        table_rows = []
        for r in self.rows:
            for key, label in (
                ("basic", "basic"),
                ("self_repairing", "self-repairing"),
            ):
                m = r[key]
                reconverge = m["windows_to_reconverge"]
                table_rows.append(
                    (
                        r["workload"],
                        label,
                        f"{m['pre_ipc']:.3f}",
                        f"{m['dip_ipc']:.3f}",
                        f"{m['final_ipc']:.3f}",
                        f"{m['recovery']:.3f}x",
                        str(m["repairs_after"]),
                        "-" if reconverge is None else str(reconverge),
                    )
                )
        table_rows.append(
            (
                "average",
                "basic",
                "", "", "",
                f"{self.mean_recovery('basic'):.3f}x",
                "", "",
            )
        )
        table_rows.append(
            (
                "average",
                "self-repairing",
                "", "", "",
                f"{self.mean_recovery('self_repairing'):.3f}x",
                "", "",
            )
        )
        table = render_table(
            ["benchmark", "policy", "pre IPC", "dip IPC", "final IPC",
             "recovery", "repairs after", "reconverged by"],
            table_rows,
            title=(
                "Resilience: +%d-cycle DRAM phase shift at mid-run "
                "(recovery = final IPC / first post-fault chunk IPC; "
                "section 3.5.2's repair budget in action)"
                % self.extra_cycles
            ),
        )
        curves: List[str] = []
        for r in self.rows:
            for key, label in (
                ("basic", "basic"),
                ("self_repairing", "self-repairing"),
            ):
                ipcs = [w["ipc"] for w in r[key].get("windows", [])]
                if not ipcs:
                    continue
                curves.append(
                    f"{r['workload']:>10s} {label:<15s} "
                    f"ipc/window |{sparkline(ipcs)}| "
                    f"{min(ipcs):.3f}..{max(ipcs):.3f}"
                )
        if curves:
            head = "windowed-IPC recovery curves (fault at mid-window)"
            table = "\n".join([table, "", head, "-" * len(head)] + curves)
        return _with_errors(table, self.errors)


def _resilience_one_policy(
    name: str,
    policy: PrefetchPolicy,
    budget: int,
    warm: int,
    chunks: int,
    extra_cycles: int,
    seed: int,
    trace_out: Optional[str] = None,
    fast: bool = True,
) -> Dict:
    """Run one workload/policy pair sampled in IPC windows around an
    injected permanent DRAM latency increase at the halfway boundary.

    The windowing rides on the observability layer's interval sampler
    (one window per chunk); with ``trace_out`` set the run's full event
    stream is exported as Perfetto-loadable Chrome trace JSON — the
    fault, the renewed repairs, and the windowed-IPC counter track in
    one timeline.
    """
    chunk = max(1, budget // chunks)
    fault_at = warm + chunk * (chunks // 2)
    plan = FaultPlan.latency_phase_shift(
        at_instruction=fault_at, extra_cycles=extra_cycles, seed=seed
    )
    config = SimulationConfig(
        policy=policy,
        trident=TridentConfig(phase_detection=True),
        max_instructions=chunk * chunks,
        warmup_instructions=warm, fast=fast,
        seed=seed,
    )
    obs = Observer(sample_interval=chunk)
    sim = Simulation(name, config, fault_plan=plan, observer=obs)
    result = sim.run()
    if trace_out is not None:
        write_chrome_trace(
            obs.events(),
            trace_out,
            metadata={"workload": name, "policy": policy.value},
        )
    return _resilience_metrics(result.samples, chunks)


def _resilience_metrics(samples, chunks: int) -> Dict:
    """Window math shared by the engine and trace-export paths: IPC dip,
    recovery ratio, and reconvergence point around the mid-run fault."""
    windows: List[Dict] = [
        {"ipc": s.ipc, "repairs": s.repairs} for s in samples
    ]
    half = chunks // 2
    pre, post = windows[:half], windows[half:]
    if not post:
        # The workload halted before the fault boundary (tiny budgets):
        # report flat windows rather than crashing the sweep.
        post = pre[-1:] or [{"ipc": 0.0, "repairs": 0}]
    pre_ipc = arithmetic_mean([w["ipc"] for w in pre])
    dip_ipc = post[0]["ipc"]
    final_ipc = post[-1]["ipc"]
    reconverge = None
    for i, w in enumerate(post):
        if w["repairs"] > 0:
            reconverge = i + 1
    return {
        "windows": windows,
        "pre_ipc": pre_ipc,
        "dip_ipc": dip_ipc,
        "final_ipc": final_ipc,
        "recovery": final_ipc / dip_ipc if dip_ipc else 0.0,
        "repairs_before": sum(w["repairs"] for w in pre),
        "repairs_after": sum(w["repairs"] for w in post),
        "windows_to_reconverge": reconverge,
    }


def _suffixed_path(base: str, suffix: str) -> str:
    root, ext = os.path.splitext(base)
    return f"{root}.{suffix}{ext or '.json'}"


def resilience(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
    chunks: int = 8,
    extra_cycles: int = 250,
    seed: int = 1,
    trace_out: Optional[str] = None,
    engine: Optional[ExperimentEngine] = None,
    fast: bool = True,
) -> ResilienceResult:
    """Chaos-test the self-repair loop: inject a permanent DRAM latency
    increase mid-run and compare how BASIC and SELF_REPAIRING reconverge.

    Both policies run with phase detection enabled so mature records are
    re-opened after the shift; only the self-repairing policy is allowed
    to re-tune distances, mirroring the paper's static-vs-repairing
    comparison under a changed memory system.

    With ``trace_out`` set the runs happen in-process (the Chrome trace
    export needs the live observer's event ring); otherwise the jobs go
    through the engine, with ``sample_interval`` carried in the job spec
    so the windowed-IPC samples survive caching.
    """
    names = bench_workloads(workloads)
    budget = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    result = ResilienceResult(chunks=chunks, extra_cycles=extra_cycles)
    if trace_out is None:
        chunk = max(1, budget // chunks)
        fault_at = warm + chunk * (chunks // 2)
        plan = FaultPlan.latency_phase_shift(
            at_instruction=fault_at, extra_cycles=extra_cycles, seed=seed
        )
        policies = (
            ("basic", PrefetchPolicy.BASIC),
            ("self_repairing", PrefetchPolicy.SELF_REPAIRING),
        )
        jobs = [
            make_job(
                name, policy=policy,
                trident=TridentConfig(phase_detection=True),
                max_instructions=chunk * chunks,
                warmup_instructions=warm, fast=fast,
                seed=seed,
                fault_plan=plan,
                sample_interval=chunk,
            )
            for name in names
            for _key, policy in policies
        ]
        grouped = run_workload_groups(_engine(engine), jobs, result.errors)
        for name in names:
            if name not in grouped:
                continue
            row: Dict = {"workload": name}
            for (key, _policy), run in zip(policies, grouped[name]):
                row[key] = _resilience_metrics(run.samples, chunks)
            result.rows.append(row)
        return result
    for name in names:
        def one_workload(name: str = name) -> Dict:
            row = {"workload": name}
            for key, policy in (
                ("basic", PrefetchPolicy.BASIC),
                ("self_repairing", PrefetchPolicy.SELF_REPAIRING),
            ):
                # Only the self-repairing run is worth a trace export
                # (it is the one whose renewed repairs the timeline
                # shows); one file per workload.
                out = None
                if trace_out is not None and key == "self_repairing":
                    out = (
                        trace_out
                        if len(names) == 1
                        else _suffixed_path(trace_out, name)
                    )
                row[key] = _resilience_one_policy(
                    name, policy, budget, warm, chunks, extra_cycles, seed,
                    trace_out=out, fast=fast,
                )
            return row

        row = run_isolated(result.errors, name, one_workload)
        if row is not None:
            result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# Budget-scaling curve — the incremental-simulation showcase.
# ---------------------------------------------------------------------------
@dataclass
class ScalingResult:
    """Speedup convergence over ascending instruction budgets.

    The paper's headline numbers come from one long run per cell; this
    sweep shows *how* the self-repairing policy's advantage develops as
    the measured budget grows — the optimizer links traces, inserts
    prefetches, and repairs distances over time, so short budgets
    understate it.  The sweep is also the checkpoint subsystem's natural
    workload: every (workload, policy) column is one resume chain, and
    with a checkpoint store attached the engine pays for the longest
    budget plus capture overhead instead of the sum of all budgets.
    """

    budgets: List[int] = field(default_factory=list)
    rows: List[Dict] = field(default_factory=list)
    errors: List[Dict] = field(default_factory=list)

    def render(self) -> str:
        table_rows = []
        for r in self.rows:
            speedups = r["speedups"]
            table_rows.append(
                (
                    r["workload"],
                    *(speedup_percent(s) for s in speedups),
                    sparkline([max(0.0, s - 1.0) for s in speedups]),
                )
            )
        if self.rows:
            means = [
                arithmetic_mean([r["speedups"][i] for r in self.rows])
                for i in range(len(self.budgets))
            ]
            table_rows.append(
                (
                    "average",
                    *(speedup_percent(s) for s in means),
                    sparkline([max(0.0, s - 1.0) for s in means]),
                )
            )
        table = render_table(
            ["benchmark"]
            + [f"{budget:,}" for budget in self.budgets]
            + ["trend"],
            table_rows,
            title=(
                "Budget scaling: self-repairing speedup over HW_ONLY at "
                "ascending measured budgets (one checkpoint chain per "
                "column pair)"
            ),
        )
        return _with_errors(table, self.errors)


def scaling_curve(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
    engine: Optional[ExperimentEngine] = None,
    fast: bool = True,
    steps: int = 3,
) -> ScalingResult:
    """Self-repairing vs HW_ONLY speedup at ``steps`` ascending budgets.

    Budgets are ``max_instructions/steps * (1..steps)``; with the
    engine's checkpoint store enabled (the default), each budget resumes
    from the previous one's end snapshot.
    """
    names = bench_workloads(workloads)
    top = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    if steps < 1:
        steps = 1
    budgets = [max(1, top * i // steps) for i in range(1, steps + 1)]
    result = ScalingResult(budgets=budgets)
    jobs = []
    for name in names:
        for policy in (
            PrefetchPolicy.HW_ONLY, PrefetchPolicy.SELF_REPAIRING
        ):
            for budget in budgets:
                jobs.append(make_job(
                    name, policy=policy,
                    max_instructions=budget, warmup_instructions=warm,
                    fast=fast,
                ))
    grouped = run_workload_groups(_engine(engine), jobs, result.errors)
    for name in names:
        if name not in grouped:
            continue
        runs = grouped[name]
        base_runs = runs[:len(budgets)]
        self_runs = runs[len(budgets):]
        result.rows.append({
            "workload": name,
            "speedups": [
                srun.speedup_over(base)
                for base, srun in zip(base_runs, self_runs)
            ],
        })
    return result


# ---------------------------------------------------------------------------
# Policy tournament — every policy (paper + zoo) on every workload.
# ---------------------------------------------------------------------------
def tournament_contenders() -> List[str]:
    """The tournament field, in fixed submission order: the hardware
    baseline first (everyone's denominator), the paper's software
    policies, then every registered zoo engine."""
    from ..hwprefetch.zoo import zoo_names

    return (
        ["hw_only", "basic", "self_repairing"] + list(zoo_names())
    )


def tournament_workloads() -> List[str]:
    """The default arena: all builtin benchmarks plus the curated
    scenario catalog (the four stress scenarios exercise access
    patterns the builtins don't)."""
    from ..scenarios import CATALOG

    return list(BENCHMARK_NAMES) + [
        f"scenario:{name}" for name in CATALOG
    ]


@dataclass
class TournamentResult:
    """Every contender's IPC on every workload, plus the ranking.

    ``rows`` holds one entry per surviving workload with that
    workload's per-contender IPC and speedup over ``hw_only``;
    ``ranking`` is derived, sorted by mean speedup (ties broken by
    name, so the order is deterministic across runs and processes).
    """

    contenders: List[str] = field(default_factory=list)
    rows: List[Dict] = field(default_factory=list)
    errors: List[Dict] = field(default_factory=list)

    @property
    def ranking(self) -> List[Dict]:
        """``[{policy, mean_speedup, wins}]`` best-first."""
        if not self.rows:
            return []
        entries = []
        for label in self.contenders:
            speedups = [r["speedup"][label] for r in self.rows]
            entries.append({
                "policy": label,
                "mean_speedup": arithmetic_mean(speedups),
                "wins": sum(
                    1 for r in self.rows if r["winner"] == label
                ),
            })
        entries.sort(key=lambda e: (-e["mean_speedup"], e["policy"]))
        return entries

    def render(self) -> str:
        from .charts import bar_chart

        matrix_rows = []
        for r in self.rows:
            matrix_rows.append(
                (r["workload"], f"{r['ipc']['hw_only']:.3f}")
                + tuple(
                    speedup_percent(r["speedup"][label])
                    for label in self.contenders[1:]
                )
            )
        matrix = render_table(
            ["workload", "hw_only IPC"]
            + [f"{label}" for label in self.contenders[1:]],
            matrix_rows,
            title=(
                "Policy tournament: speedup over the hw_only stream-"
                "buffer baseline, every policy x every workload"
            ),
        )
        ranking = self.ranking
        ranked = render_table(
            ["rank", "policy", "mean speedup", "wins"],
            [
                (
                    str(position + 1),
                    entry["policy"],
                    speedup_percent(entry["mean_speedup"]),
                    str(entry["wins"]),
                )
                for position, entry in enumerate(ranking)
            ],
            title="Ranking (mean speedup across the arena; ties by name)",
        )
        chart = bar_chart(
            "mean speedup over hw_only",
            [(e["policy"], e["mean_speedup"]) for e in ranking],
            unit="x",
            baseline=1.0,
        )
        return _with_errors(
            matrix + "\n\n" + ranked + "\n\n" + chart, self.errors
        )

    def to_dict(self) -> Dict:
        """JSON payload for ``benchmarks/results/BENCH_tournament.json``."""
        return {
            "contenders": list(self.contenders),
            "workloads": [r["workload"] for r in self.rows],
            "ranking": self.ranking,
            "rows": [
                {
                    "workload": r["workload"],
                    "ipc": dict(r["ipc"]),
                    "speedup": dict(r["speedup"]),
                    "winner": r["winner"],
                }
                for r in self.rows
            ],
            "errors": list(self.errors),
        }


def tournament(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
    engine: Optional[ExperimentEngine] = None,
    fast: bool = True,
) -> TournamentResult:
    """Run every registered policy against every arena workload.

    Explicit ``workloads`` (or ``REPRO_BENCH_WORKLOADS``) select a
    sub-arena; the default is all 14 builtins plus the 4 catalog
    scenarios.  One engine batch: the shared ``hw_only`` baselines
    dedupe against every other figure through the result cache.
    """
    if workloads is None and not os.environ.get(ENV_WORKLOADS):
        names = tournament_workloads()
    else:
        names = bench_workloads(workloads)
    budget = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    contenders = tournament_contenders()
    result = TournamentResult(contenders=contenders)
    jobs = []
    for name in names:
        for label in contenders:
            jobs.append(make_job(
                name, policy=label,
                max_instructions=budget, warmup_instructions=warm,
                fast=fast, group=name,
            ))
    grouped = run_workload_groups(_engine(engine), jobs, result.errors)
    for name in names:
        if name not in grouped:
            continue
        runs = grouped[name]
        baseline = runs[0]
        ipc = {
            label: run.ipc for label, run in zip(contenders, runs)
        }
        speedup = {
            label: run.speedup_over(baseline)
            for label, run in zip(contenders, runs)
        }
        best = max(speedup.values())
        winner = next(
            label for label in contenders if speedup[label] == best
        )
        result.rows.append({
            "workload": name,
            "ipc": ipc,
            "speedup": speedup,
            "winner": winner,
        })
    return result
