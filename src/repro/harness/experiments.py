"""One entry per paper table/figure (the per-experiment index of
DESIGN.md).

Each ``fig*`` function runs the simulations for one paper figure and
returns a structured result object with a ``render()`` method printing
paper-style rows.  Budgets are deliberately parameters: the test suite
uses tiny budgets, the benches use ``REPRO_BENCH_INSTRUCTIONS``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import (
    DLTConfig,
    MachineConfig,
    PrefetchPolicy,
    StreamBufferConfig,
    TridentConfig,
)
from ..workloads.registry import BENCHMARK_NAMES
from .report import (
    arithmetic_mean,
    percent,
    render_table,
    speedup_percent,
)
from .runner import run_simulation

#: Environment knobs for the bench harness.
ENV_INSTRUCTIONS = "REPRO_BENCH_INSTRUCTIONS"
ENV_WARMUP = "REPRO_BENCH_WARMUP"
ENV_WORKLOADS = "REPRO_BENCH_WORKLOADS"


def bench_instructions(default: int = 120_000) -> int:
    return int(os.environ.get(ENV_INSTRUCTIONS, default))


def bench_warmup(default: int = 200_000) -> int:
    """Instructions run before measurement begins.

    The paper warms for 5M of 100M instructions; proportionally we warm
    longer because the optimizer's convergence horizon (DLT windows x
    repair steps) is a fixed instruction count, not a fixed fraction.
    """
    return int(os.environ.get(ENV_WARMUP, default))


def bench_workloads(default: Optional[Sequence[str]] = None) -> List[str]:
    raw = os.environ.get(ENV_WORKLOADS)
    if raw:
        return [name.strip() for name in raw.split(",") if name.strip()]
    return list(default if default is not None else BENCHMARK_NAMES)


# ---------------------------------------------------------------------------
# Figure 2 — hardware stream-buffer baselines.
# ---------------------------------------------------------------------------
@dataclass
class Fig2Result:
    rows: List[Dict] = field(default_factory=list)

    @property
    def mean_speedup_4x4(self) -> float:
        return arithmetic_mean([r["speedup_4x4"] for r in self.rows])

    @property
    def mean_speedup_8x8(self) -> float:
        return arithmetic_mean([r["speedup_8x8"] for r in self.rows])

    def render(self) -> str:
        table_rows = [
            (
                r["workload"],
                f"{r['ipc_none']:.3f}",
                f"{r['ipc_4x4']:.3f}",
                f"{r['ipc_8x8']:.3f}",
                speedup_percent(r["speedup_4x4"]),
                speedup_percent(r["speedup_8x8"]),
            )
            for r in self.rows
        ]
        table_rows.append(
            (
                "average",
                "",
                "",
                "",
                speedup_percent(self.mean_speedup_4x4),
                speedup_percent(self.mean_speedup_8x8),
            )
        )
        return render_table(
            ["benchmark", "IPC none", "IPC 4x4", "IPC 8x8",
             "4x4 speedup", "8x8 speedup"],
            table_rows,
            title=(
                "Figure 2: baseline performance with hardware stream "
                "buffers (paper: +35% for 4x4, +40% for 8x8)"
            ),
        )


def fig2_hw_baseline(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
) -> Fig2Result:
    names = bench_workloads(workloads)
    budget = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    result = Fig2Result()
    for name in names:
        none = run_simulation(
            name, policy=PrefetchPolicy.NONE, max_instructions=budget, warmup_instructions=warm
        )
        hw44 = run_simulation(
            name,
            policy=PrefetchPolicy.HW_ONLY,
            machine=MachineConfig().with_stream_buffers(
                StreamBufferConfig.paper_4x4()
            ),
            max_instructions=budget, warmup_instructions=warm,
        )
        hw88 = run_simulation(
            name, policy=PrefetchPolicy.HW_ONLY, max_instructions=budget, warmup_instructions=warm
        )
        result.rows.append(
            {
                "workload": name,
                "ipc_none": none.ipc,
                "ipc_4x4": hw44.ipc,
                "ipc_8x8": hw88.ipc,
                "speedup_4x4": hw44.speedup_over(none),
                "speedup_8x8": hw88.speedup_over(none),
            }
        )
    return result


# ---------------------------------------------------------------------------
# Figure 3 / section 5.1 — optimizer overhead and helper activity.
# ---------------------------------------------------------------------------
@dataclass
class Fig3Result:
    rows: List[Dict] = field(default_factory=list)

    @property
    def mean_helper_active(self) -> float:
        return arithmetic_mean([r["helper_active"] for r in self.rows])

    @property
    def mean_overhead(self) -> float:
        return arithmetic_mean([r["overhead"] for r in self.rows])

    def render(self) -> str:
        table_rows = [
            (
                r["workload"],
                percent(r["helper_active"], 2),
                percent(r["overhead"], 2),
            )
            for r in self.rows
        ]
        table_rows.append(
            (
                "average",
                percent(self.mean_helper_active, 2),
                percent(self.mean_overhead, 2),
            )
        )
        return render_table(
            ["benchmark", "helper active", "overhead-only slowdown"],
            table_rows,
            title=(
                "Figure 3 / section 5.1: helper-thread activity (paper: "
                "2.2% avg) and optimize-but-don't-link cost (paper: 0.6%)"
            ),
        )


def fig3_overhead(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
) -> Fig3Result:
    names = bench_workloads(workloads)
    budget = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    result = Fig3Result()
    for name in names:
        base = run_simulation(
            name, policy=PrefetchPolicy.HW_ONLY, max_instructions=budget, warmup_instructions=warm
        )
        overhead_run = run_simulation(
            name,
            policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=budget, warmup_instructions=warm,
            overhead_only=True,
        )
        full = run_simulation(
            name,
            policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=budget, warmup_instructions=warm,
        )
        overhead = max(0.0, base.ipc / overhead_run.ipc - 1.0)
        result.rows.append(
            {
                "workload": name,
                "helper_active": full.helper_active_fraction,
                "overhead": overhead,
            }
        )
    return result


# ---------------------------------------------------------------------------
# Figure 4 — load-miss coverage by hot traces and the prefetcher.
# ---------------------------------------------------------------------------
@dataclass
class Fig4Result:
    rows: List[Dict] = field(default_factory=list)

    @property
    def mean_trace_coverage(self) -> float:
        return arithmetic_mean([r["trace_coverage"] for r in self.rows])

    @property
    def mean_prefetch_coverage(self) -> float:
        return arithmetic_mean([r["prefetch_coverage"] for r in self.rows])

    def render(self) -> str:
        table_rows = [
            (
                r["workload"],
                percent(r["trace_coverage"]),
                percent(r["prefetch_coverage"]),
            )
            for r in self.rows
        ]
        table_rows.append(
            (
                "average",
                percent(self.mean_trace_coverage),
                percent(self.mean_prefetch_coverage),
            )
        )
        return render_table(
            ["benchmark", "misses in hot traces", "misses prefetchable"],
            table_rows,
            title=(
                "Figure 4: load-miss coverage (paper: >85% in traces, "
                "~55% prefetchable; dot/parser low; gap low-coverage/"
                "high-prefetchable)"
            ),
        )


def fig4_coverage(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
) -> Fig4Result:
    names = bench_workloads(workloads)
    budget = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    result = Fig4Result()
    for name in names:
        # Figure 4 asks which misses *occur while executing hot traces*
        # and which of those the prefetcher targets.  A successful
        # prefetch erases the miss it covered, so the miss profile comes
        # from a monitoring-only run (traces linked, nothing inserted)
        # and the targeted-PC set from the self-repairing run.
        baseline = run_simulation(
            name, policy=PrefetchPolicy.TRACE_ONLY,
            max_instructions=budget, warmup_instructions=warm,
        )
        run = run_simulation(
            name,
            policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=budget, warmup_instructions=warm,
        )
        profile = baseline.miss_profile()
        total = sum(profile.values())
        targeted = sum(
            count
            for pc, count in profile.items()
            if pc in run.targeted_load_pcs
        )
        result.rows.append(
            {
                "workload": name,
                "trace_coverage": baseline.miss_trace_coverage,
                "prefetch_coverage": targeted / total if total else 0.0,
            }
        )
    return result


# ---------------------------------------------------------------------------
# Figure 5 — the headline comparison: basic / whole-object / self-repairing.
# ---------------------------------------------------------------------------
@dataclass
class Fig5Result:
    rows: List[Dict] = field(default_factory=list)

    def mean_speedup(self, key: str) -> float:
        return arithmetic_mean([r[key] for r in self.rows])

    def render(self) -> str:
        table_rows = [
            (
                r["workload"],
                speedup_percent(r["basic"]),
                speedup_percent(r["whole_object"]),
                speedup_percent(r["self_repairing"]),
            )
            for r in self.rows
        ]
        table_rows.append(
            (
                "average",
                speedup_percent(self.mean_speedup("basic")),
                speedup_percent(self.mean_speedup("whole_object")),
                speedup_percent(self.mean_speedup("self_repairing")),
            )
        )
        from .charts import grouped_bar_chart

        table = render_table(
            ["benchmark", "basic", "whole object", "self-repairing"],
            table_rows,
            title=(
                "Figure 5: software prefetching speedup over the 8x8 "
                "hardware baseline (paper: +11% basic, +23% "
                "self-repairing)"
            ),
        )
        chart = grouped_bar_chart(
            "speedup over hardware baseline",
            [
                (
                    r["workload"],
                    {
                        "basic": r["basic"],
                        "self-repairing": r["self_repairing"],
                    },
                )
                for r in self.rows
            ],
            series=["basic", "self-repairing"],
        )
        return table + "\n\n" + chart


def fig5_policies(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
) -> Fig5Result:
    names = bench_workloads(workloads)
    budget = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    result = Fig5Result()
    for name in names:
        baseline = run_simulation(
            name, policy=PrefetchPolicy.HW_ONLY, max_instructions=budget, warmup_instructions=warm
        )
        row = {"workload": name}
        for key, policy in (
            ("basic", PrefetchPolicy.BASIC),
            ("whole_object", PrefetchPolicy.WHOLE_OBJECT),
            ("self_repairing", PrefetchPolicy.SELF_REPAIRING),
        ):
            run = run_simulation(name, policy=policy, max_instructions=budget, warmup_instructions=warm)
            row[key] = run.speedup_over(baseline)
        result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# Figure 6 — dynamic-load outcome breakdown.
# ---------------------------------------------------------------------------
@dataclass
class Fig6Result:
    rows: List[Dict] = field(default_factory=list)

    def render(self) -> str:
        table_rows = [
            (
                r["workload"],
                percent(r["hit"]),
                percent(r["hit_prefetched"]),
                percent(r["partial_hit"]),
                percent(r["miss"]),
                percent(r["miss_due_to_prefetch"], 2),
            )
            for r in self.rows
        ]
        return render_table(
            ["benchmark", "hits", "hit-prefetched", "partial hits",
             "misses", "miss-due-to-prefetch"],
            table_rows,
            title=(
                "Figure 6: breakdown of all dynamic loads (paper: partial "
                "hits and prefetch-caused misses are both rare)"
            ),
        )


def fig6_breakdown(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
) -> Fig6Result:
    names = bench_workloads(workloads)
    budget = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    result = Fig6Result()
    for name in names:
        run = run_simulation(
            name,
            policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=budget, warmup_instructions=warm,
        )
        row = {"workload": name}
        row.update(run.breakdown())
        result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# Figure 7 — monitoring-window / miss-threshold sensitivity.
# ---------------------------------------------------------------------------
@dataclass
class Fig7Result:
    #: (window, miss-rate) -> mean speedup over the HW baseline.
    grid: Dict = field(default_factory=dict)
    windows: List[int] = field(default_factory=list)
    rates: List[float] = field(default_factory=list)

    def render(self) -> str:
        headers = ["window \\ rate"] + [percent(r, 0) for r in self.rates]
        table_rows = []
        for window in self.windows:
            row = [str(window)]
            for rate in self.rates:
                row.append(speedup_percent(self.grid[(window, rate)]))
            table_rows.append(row)
        return render_table(
            headers,
            table_rows,
            title=(
                "Figure 7: mean self-repairing speedup vs monitoring "
                "window and miss-rate threshold (paper: 3% at 256 best)"
            ),
        )


def fig7_threshold_sweep(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
    windows: Sequence[int] = (128, 256, 512),
    rates: Sequence[float] = (0.01, 0.03, 0.06, 0.12),
) -> Fig7Result:
    names = bench_workloads(workloads)
    budget = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    result = Fig7Result(windows=list(windows), rates=list(rates))
    baselines = {
        name: run_simulation(
            name, policy=PrefetchPolicy.HW_ONLY, max_instructions=budget, warmup_instructions=warm
        )
        for name in names
    }
    for window in windows:
        for rate in rates:
            dlt = DLTConfig().with_window(window).with_miss_rate(rate)
            speedups = []
            for name in names:
                run = run_simulation(
                    name,
                    policy=PrefetchPolicy.SELF_REPAIRING,
                    trident=TridentConfig().with_dlt(dlt),
                    max_instructions=budget, warmup_instructions=warm,
                )
                speedups.append(run.speedup_over(baselines[name]))
            result.grid[(window, rate)] = arithmetic_mean(speedups)
    return result


# ---------------------------------------------------------------------------
# Figure 8 — DLT-size sensitivity.
# ---------------------------------------------------------------------------
@dataclass
class Fig8Result:
    #: size -> {workload -> speedup}, plus "mean".
    by_size: Dict[int, Dict[str, float]] = field(default_factory=dict)
    sizes: List[int] = field(default_factory=list)
    spotlight: List[str] = field(default_factory=list)

    def render(self) -> str:
        headers = ["DLT entries", "mean"] + list(self.spotlight)
        table_rows = []
        for size in self.sizes:
            row = [str(size), speedup_percent(self.by_size[size]["mean"])]
            for name in self.spotlight:
                value = self.by_size[size].get(name)
                row.append("" if value is None else speedup_percent(value))
            table_rows.append(row)
        return render_table(
            headers,
            table_rows,
            title=(
                "Figure 8: self-repairing speedup vs DLT size (paper: "
                "mostly flat; dot and parser want bigger tables)"
            ),
        )


def fig8_dlt_sweep(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
    sizes: Sequence[int] = (128, 256, 512, 1024, 2048),
    spotlight: Sequence[str] = ("dot", "parser"),
) -> Fig8Result:
    names = bench_workloads(workloads)
    budget = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    result = Fig8Result(
        sizes=list(sizes),
        spotlight=[s for s in spotlight if s in names],
    )
    baselines = {
        name: run_simulation(
            name, policy=PrefetchPolicy.HW_ONLY, max_instructions=budget, warmup_instructions=warm
        )
        for name in names
    }
    for size in sizes:
        dlt = DLTConfig().with_entries(size)
        per: Dict[str, float] = {}
        for name in names:
            run = run_simulation(
                name,
                policy=PrefetchPolicy.SELF_REPAIRING,
                trident=TridentConfig().with_dlt(dlt),
                max_instructions=budget, warmup_instructions=warm,
            )
            per[name] = run.speedup_over(baselines[name])
        per["mean"] = arithmetic_mean(
            [v for k, v in per.items() if k != "mean"]
        )
        result.by_size[size] = per
    return result


# ---------------------------------------------------------------------------
# Figure 9 — software vs hardware prefetching, both over no prefetching.
# ---------------------------------------------------------------------------
@dataclass
class Fig9Result:
    rows: List[Dict] = field(default_factory=list)

    def mean_speedup(self, key: str) -> float:
        return arithmetic_mean([r[key] for r in self.rows])

    def render(self) -> str:
        table_rows = [
            (
                r["workload"],
                speedup_percent(r["hw_only"]),
                speedup_percent(r["sw_only"]),
                speedup_percent(r["combined"]),
            )
            for r in self.rows
        ]
        table_rows.append(
            (
                "average",
                speedup_percent(self.mean_speedup("hw_only")),
                speedup_percent(self.mean_speedup("sw_only")),
                speedup_percent(self.mean_speedup("combined")),
            )
        )
        from .charts import grouped_bar_chart

        table = render_table(
            ["benchmark", "HW 8x8", "SW self-repairing", "combined"],
            table_rows,
            title=(
                "Figure 9: prefetching speedup over no prefetching "
                "(paper: SW beats HW by ~11% on average; dot/equake/swim "
                "favour HW)"
            ),
        )
        chart = grouped_bar_chart(
            "speedup over no prefetching",
            [
                (
                    r["workload"],
                    {"hw": r["hw_only"], "sw": r["sw_only"]},
                )
                for r in self.rows
            ],
            series=["hw", "sw"],
        )
        return table + "\n\n" + chart


def fig9_sw_vs_hw(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
) -> Fig9Result:
    names = bench_workloads(workloads)
    budget = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    result = Fig9Result()
    for name in names:
        none = run_simulation(
            name, policy=PrefetchPolicy.NONE, max_instructions=budget, warmup_instructions=warm
        )
        hw = run_simulation(
            name, policy=PrefetchPolicy.HW_ONLY, max_instructions=budget, warmup_instructions=warm
        )
        sw = run_simulation(
            name, policy=PrefetchPolicy.SW_ONLY, max_instructions=budget, warmup_instructions=warm
        )
        combined = run_simulation(
            name,
            policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=budget, warmup_instructions=warm,
        )
        result.rows.append(
            {
                "workload": name,
                "hw_only": hw.speedup_over(none),
                "sw_only": sw.speedup_over(none),
                "combined": combined.speedup_over(none),
            }
        )
    return result


# ---------------------------------------------------------------------------
# Section 5.4 closing note — spend the DLT bits on a bigger L1 instead.
# ---------------------------------------------------------------------------
@dataclass
class CacheEquivResult:
    rows: List[Dict] = field(default_factory=list)

    @property
    def mean_speedup(self) -> float:
        return arithmetic_mean([r["speedup"] for r in self.rows])

    def render(self) -> str:
        table_rows = [
            (r["workload"], speedup_percent(r["speedup"]))
            for r in self.rows
        ]
        table_rows.append(("average", speedup_percent(self.mean_speedup)))
        return render_table(
            ["benchmark", "bigger-L1 speedup"],
            table_rows,
            title=(
                "Section 5.4: DLT+watch-table bits spent on L1 capacity "
                "instead (paper: merely +0.8%)"
            ),
        )


def cache_equivalent_area(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
) -> CacheEquivResult:
    """Enlarge the L1 by the monitoring structures' storage (~24 KB: 1024
    DLT entries x ~22 bytes + 256 watch entries) and measure the gain."""
    names = bench_workloads(workloads)
    budget = max_instructions or bench_instructions()
    warm = bench_warmup() if warmup is None else warmup
    result = CacheEquivResult()
    bigger = MachineConfig().with_l1_size(88 * 1024)
    for name in names:
        base = run_simulation(
            name, policy=PrefetchPolicy.HW_ONLY, max_instructions=budget, warmup_instructions=warm
        )
        big = run_simulation(
            name,
            policy=PrefetchPolicy.HW_ONLY,
            machine=bigger,
            max_instructions=budget, warmup_instructions=warm,
        )
        result.rows.append(
            {"workload": name, "speedup": big.speedup_over(base)}
        )
    return result
