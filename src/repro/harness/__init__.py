"""Experiment harness: simulation driver, paper-figure experiments,
reporting, and ablation sweeps."""

from .cache import ResultCache, code_version, stable_hash
from .charts import bar_chart, grouped_bar_chart
from .claims import CLAIMS, evaluate_claims, render_verdicts
from .engine import (
    EngineStats,
    ExperimentEngine,
    JobOutcome,
    SimJob,
    make_job,
    run_workload_groups,
)
from .journal import JobJournal, JournalState, job_key
from .supervisor import RetryPolicy, WorkerSupervisor
from .experiments import (
    bench_instructions,
    bench_workloads,
    cache_equivalent_area,
    fig2_hw_baseline,
    fig3_overhead,
    fig4_coverage,
    fig5_policies,
    fig6_breakdown,
    fig7_threshold_sweep,
    fig8_dlt_sweep,
    fig9_sw_vs_hw,
)
from .report import (
    arithmetic_mean,
    geometric_mean,
    percent,
    render_mapping,
    render_table,
    speedup_percent,
)
from .runner import Simulation, SimulationResult, run_simulation
from .sweep import (
    AblationResult,
    ablation_confidence_penalty,
    ablation_markov,
    ablation_phase_detection,
    ablation_grouping,
    ablation_initial_distance,
    ablation_repair_budget,
)

__all__ = [
    "AblationResult",
    "EngineStats",
    "ExperimentEngine",
    "JobJournal",
    "JobOutcome",
    "JournalState",
    "ResultCache",
    "RetryPolicy",
    "WorkerSupervisor",
    "SimJob",
    "Simulation",
    "SimulationResult",
    "code_version",
    "job_key",
    "make_job",
    "run_workload_groups",
    "stable_hash",
    "ablation_confidence_penalty",
    "ablation_grouping",
    "ablation_initial_distance",
    "ablation_markov",
    "ablation_phase_detection",
    "ablation_repair_budget",
    "arithmetic_mean",
    "CLAIMS",
    "bar_chart",
    "grouped_bar_chart",
    "bench_instructions",
    "bench_workloads",
    "cache_equivalent_area",
    "evaluate_claims",
    "fig2_hw_baseline",
    "fig3_overhead",
    "fig4_coverage",
    "fig5_policies",
    "fig6_breakdown",
    "fig7_threshold_sweep",
    "fig8_dlt_sweep",
    "fig9_sw_vs_hw",
    "geometric_mean",
    "percent",
    "render_mapping",
    "render_verdicts",
    "render_table",
    "run_simulation",
    "speedup_percent",
]
