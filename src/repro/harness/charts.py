"""ASCII bar charts, because the paper's results are bar charts.

The benches print tables (precise) and, for the headline figures, a bar
chart (shape at a glance, like the figures in the paper).  Pure text, no
plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Width, in characters, of the largest bar.
DEFAULT_WIDTH = 48


def _scaled(value: float, peak: float, width: int) -> int:
    if peak <= 0:
        return 0
    return max(0, int(round(width * value / peak)))


def bar_chart(
    title: str,
    rows: Sequence[Tuple[str, float]],
    unit: str = "",
    width: int = DEFAULT_WIDTH,
    baseline: Optional[float] = None,
) -> str:
    """Render one value per row as a horizontal bar.

    With ``baseline`` set, bars grow from the baseline: values above it
    render as ``+`` bars, values below as ``-`` bars — the natural way to
    show speedups around 1.0.
    """
    if not rows:
        return title
    out: List[str] = [title, "-" * len(title)]
    label_width = max(len(label) for label, _v in rows)
    if baseline is None:
        peak = max(value for _l, value in rows)
        for label, value in rows:
            bar = "#" * _scaled(value, peak, width)
            out.append(
                f"{label.ljust(label_width)} |{bar} {value:.3g}{unit}"
            )
        return "\n".join(out)

    deltas = [value - baseline for _l, value in rows]
    peak = max(abs(d) for d in deltas) or 1.0
    for (label, value), delta in zip(rows, deltas):
        length = _scaled(abs(delta), peak, width)
        mark = "+" if delta >= 0 else "-"
        out.append(
            f"{label.ljust(label_width)} |{mark * length} {value:.3g}{unit}"
        )
    return "\n".join(out)


#: Eight-level vertical resolution, space for "no data".
_SPARK_LEVELS = " .:-=+*#@"


def sparkline(
    values: Sequence[float],
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """Render a series as one line of density characters.

    The scale spans [lo, hi] (defaults: the series' own min/max), so two
    sparklines drawn with the same explicit bounds are comparable — the
    resilience experiment uses this for its windowed-IPC recovery curve.
    """
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    top = len(_SPARK_LEVELS) - 1
    out = []
    for value in values:
        if span <= 0:
            out.append(_SPARK_LEVELS[top // 2 + 1])
            continue
        norm = (value - lo) / span
        out.append(_SPARK_LEVELS[1 + int(round(norm * (top - 1)))])
    return "".join(out)


def grouped_bar_chart(
    title: str,
    groups: Sequence[Tuple[str, Dict[str, float]]],
    series: Sequence[str],
    baseline: float = 1.0,
    width: int = DEFAULT_WIDTH,
) -> str:
    """Render several series per group (one paper bar-cluster per group).

    ``groups`` is [(benchmark, {series -> value})]; ``series`` fixes the
    order and the legend.  Values are speedups rendered relative to
    ``baseline``.
    """
    marks = "#=+*o"[: len(series)]
    out: List[str] = [title, "-" * len(title)]
    for name, mark in zip(series, marks):
        out.append(f"  {mark} = {name}")
    label_width = max((len(label) for label, _v in groups), default=0)
    # Floor the scale so near-zero noise never fills the width.
    peak = max(
        max(
            (abs(values.get(s, baseline) - baseline)
             for _l, values in groups for s in series),
            default=1.0,
        ),
        0.05,
    )
    for label, values in groups:
        for s, mark in zip(series, marks):
            value = values.get(s)
            if value is None:
                continue
            delta = value - baseline
            length = (
                0 if abs(delta) < 0.005 else _scaled(abs(delta), peak, width)
            )
            body = mark * length if delta >= 0 else "." * length
            out.append(
                f"{label.ljust(label_width)} |{body} "
                f"{delta * 100:+.1f}%"
            )
        out.append("")
    return "\n".join(out).rstrip()
