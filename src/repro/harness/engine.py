"""Parallel experiment engine: job specs, fan-out, and result caching.

Every paper figure and ablation is a grid of independent, deterministic
simulations.  The engine turns that grid into explicit :class:`SimJob`
specs and executes them through three interchangeable paths that are
proven equivalent by ``tests/test_engine_equivalence.py``:

* **in-process** (``workers=1``) — each job runs exactly like the legacy
  ``run_simulation`` call it replaces;
* **parallel** (``workers=N``) — jobs fan out over a
  ``ProcessPoolExecutor``; results are pickled back and re-ordered into
  submission order, so output never depends on completion order;
* **cached** — a :class:`~repro.harness.cache.ResultCache` hit replays
  the stored ``SimulationResult.to_dict()`` without simulating at all.

Because jobs are content-addressed, the HW_ONLY baseline a dozen sweeps
share is simulated once per (workload, budget) and replayed everywhere
else — the figure suite drops from hours to minutes.

Worker processes deliberately attach **no observer** unless the job asks
for interval sampling (``sample_interval``): observation hooks are off
by default in children, which cannot perturb results — the obs layer
never touches simulated timing (DESIGN.md §5b) — but keeps the pickled
result payload small.  Trace/metrics *export* needs the live observer
object and therefore stays an in-process, engine-bypassing concern of
the CLI.

Error isolation reuses ``run_isolated`` semantics per job: a failing
job becomes an error record (transient failures earn one retry), and
grouping helpers drop just that workload's rows from a figure.
"""

from __future__ import annotations

import dataclasses
import enum
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..config import (
    MachineConfig,
    PrefetchPolicy,
    SimulationConfig,
    TridentConfig,
)
from ..errors import CheckpointError, ReproError
from ..faults.plan import FaultPlan
from ..logutil import get_logger
from ..obs import MetricsRegistry, Observer
from .cache import ResultCache
from . import runner
from .runner import SimulationResult

_log = get_logger("engine")

#: Sentinel distinguishing "use the default cache" from "no cache".
_DEFAULT_CACHE = object()


@dataclass(frozen=True)
class SimJob:
    """One simulation, fully specified and content-addressable.

    ``group`` names the error-isolation unit (default: the workload) —
    when any job of a group fails, figure helpers drop the whole group's
    rows, matching the legacy per-workload ``run_isolated`` closures.
    """

    workload: str
    config: SimulationConfig
    initial_distance_mode: Optional[str] = None
    fault_plan: Optional[FaultPlan] = None
    #: Attach an interval sampler in the worker (windowed IPC series on
    #: ``result.samples``); part of the cache key since it changes the
    #: result payload.
    sample_interval: Optional[int] = None
    group: str = ""

    def spec(self) -> Dict:
        """The canonical JSON-able description hashed into the cache key.

        ``checkpoint_every`` is excluded: checkpoint cadence changes when
        the run *pauses to look*, never what it computes (chunked
        ``SMTCore.run`` calls are bit-identical to one call), so two jobs
        differing only in cadence must share one cache entry.
        """
        config = _jsonify(dataclasses.asdict(self.config))
        config.pop("checkpoint_every", None)
        return {
            "workload": self.workload,
            "config": config,
            "initial_distance_mode": self.initial_distance_mode,
            "fault_plan": (
                None if self.fault_plan is None else self.fault_plan.to_dict()
            ),
            "sample_interval": self.sample_interval,
        }

    def total_budget(self) -> int:
        """Warmup + measured instructions (the resume-ordering key)."""
        return (
            self.config.warmup_instructions + self.config.max_instructions
        )


def _jsonify(value):
    """Recursively reduce to JSON-safe types (enums to values)."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def make_job(
    workload: str,
    policy: PrefetchPolicy = PrefetchPolicy.SELF_REPAIRING,
    machine: Optional[MachineConfig] = None,
    trident: Optional[TridentConfig] = None,
    max_instructions: int = 200_000,
    warmup_instructions: int = 0,
    overhead_only: bool = False,
    seed: int = 1,
    initial_distance_mode: Optional[str] = None,
    fault_plan: Optional[FaultPlan] = None,
    max_cycles: Optional[float] = None,
    wall_time_limit: Optional[float] = None,
    sample_interval: Optional[int] = None,
    fast: bool = True,
    checkpoint_every: Optional[int] = None,
    group: str = "",
) -> SimJob:
    """Build a :class:`SimJob` with ``run_simulation``'s signature."""
    config = SimulationConfig(
        machine=machine or MachineConfig(),
        trident=trident or TridentConfig(),
        policy=policy,
        max_instructions=max_instructions,
        warmup_instructions=warmup_instructions,
        overhead_only=overhead_only,
        seed=seed,
        max_cycles=max_cycles,
        wall_time_limit=wall_time_limit,
        fast=fast,
        checkpoint_every=checkpoint_every,
    )
    return SimJob(
        workload=workload,
        config=config,
        initial_distance_mode=initial_distance_mode,
        fault_plan=fault_plan,
        sample_interval=sample_interval,
        group=group,
    )


@dataclass
class JobOutcome:
    """What happened to one job: a result or an error record, never both."""

    result: Optional[SimulationResult] = None
    error: Optional[Dict] = None
    cached: bool = False
    elapsed_s: float = 0.0
    #: Committed-instruction count of the checkpoint this run resumed
    #: from (None: ran cold or replayed from the result cache).
    resumed_from: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class EngineStats:
    """Cumulative counters over every ``run()`` of one engine."""

    jobs_run: int = 0
    jobs_cached: int = 0
    jobs_failed: int = 0
    #: Jobs that resumed from a stored checkpoint instead of running
    #: their whole prefix cold.
    jobs_resumed: int = 0
    #: Sum of the original wall time of every cache hit.
    wall_time_saved_s: float = 0.0
    wall_time_spent_s: float = 0.0

    def summary(self) -> str:
        return (
            f"engine: run={self.jobs_run} cached={self.jobs_cached} "
            f"resumed={self.jobs_resumed} failed={self.jobs_failed} "
            f"spent={self.wall_time_spent_s:.1f}s "
            f"saved={self.wall_time_saved_s:.1f}s"
        )


def _execute_job(
    job: SimJob,
    ckpt_root: Optional[str] = None,
    resume_ok: bool = True,
) -> Tuple[SimulationResult, float, Optional[int]]:
    """Run one job to completion (no isolation).

    Returns ``(result, seconds, resumed_from)``.  With a checkpoint root,
    the job first looks for the largest stored snapshot of its own prefix
    at or before its budget and resumes from it — byte-identical to the
    cold run by the chunked-execution invariant — and offers its own
    snapshots back to the store as it runs.  Any checkpoint problem
    (corrupt file, stale stamp) silently degrades to a cold run.

    This is the single simulation seam for both the in-process path and
    pool workers; the baseline-reuse regression test counts invocations
    through ``runner.Simulation``.
    """
    from ..checkpoint import CheckpointStore, restore as restore_snapshot

    observer = None
    if job.sample_interval is not None:
        observer = Observer(sample_interval=job.sample_interval)
    started = time.perf_counter()
    store: Optional[CheckpointStore] = None
    prefix = None
    if ckpt_root is not None:
        store = CheckpointStore(ckpt_root)
        prefix = store.prefix_key(job.spec())
    sim = None
    resumed_from: Optional[int] = None
    if store is not None and resume_ok:
        snapshot = store.best(prefix, job.total_budget())
        if snapshot is not None:
            try:
                sim = restore_snapshot(snapshot)
            except CheckpointError as exc:
                _log.debug("checkpoint restore failed, running cold: %s", exc)
            else:
                resumed_from = snapshot.committed
    if sim is None:
        sim = runner.Simulation(
            job.workload,
            job.config,
            initial_distance_mode=job.initial_distance_mode,
            fault_plan=job.fault_plan,
            observer=observer,
        )
        if store is not None:
            sim.checkpoint_sink = lambda s: store.save(prefix, s)
        result = sim.run()
    else:
        # The snapshot carries the observer (and its partial sample
        # series) from the prefix run; only the sink and the cadence —
        # normalised away at capture — need re-attaching.
        sim.checkpoint_sink = lambda s: store.save(prefix, s)
        if job.config.checkpoint_every is not None:
            sim.config = sim.config.replace(
                checkpoint_every=job.config.checkpoint_every
            )
        result = sim.resume(job.config.max_instructions)
    return result, time.perf_counter() - started, resumed_from


def _error_record(job: SimJob, exc: BaseException, retried: bool) -> Dict:
    record = {
        "workload": job.workload,
        "type": type(exc).__name__,
        "error": str(exc),
    }
    if retried:
        record["retried"] = True
    return record


def _worker(
    job: SimJob,
    ckpt_root: Optional[str] = None,
    resume_ok: bool = True,
) -> JobOutcome:
    """Pool entry point: isolate failures into records (picklable)."""
    try:
        result, elapsed, resumed = _execute_job(job, ckpt_root, resume_ok)
        return JobOutcome(
            result=result, elapsed_s=elapsed, resumed_from=resumed
        )
    except Exception as exc:
        if getattr(exc, "transient", False):
            try:
                result, elapsed, resumed = _execute_job(
                    job, ckpt_root, resume_ok
                )
                return JobOutcome(
                    result=result, elapsed_s=elapsed, resumed_from=resumed
                )
            except Exception as retry_exc:
                return JobOutcome(
                    error=_error_record(job, retry_exc, retried=True)
                )
        return JobOutcome(error=_error_record(job, exc, retried=False))


def _worker_chain(
    jobs: List[SimJob],
    ckpt_root: Optional[str],
    resume_ok: bool,
) -> List[JobOutcome]:
    """Run same-prefix jobs sequentially, ascending by budget.

    The jobs share a checkpoint prefix, so each run's end snapshot seeds
    the next one through the on-disk store: a multi-budget sweep pays
    for its longest member plus deltas instead of the sum of budgets.
    Submitted to the pool as one unit so the chain's data locality is
    not lost to scheduling.
    """
    return [_worker(job, ckpt_root, resume_ok) for job in jobs]


class ExperimentEngine:
    """Executes :class:`SimJob` batches with caching and fan-out.

    ``workers=1`` (the default) runs jobs sequentially in-process —
    bit-identical to the legacy serial harness.  ``workers=N`` fans the
    uncached jobs out over N processes.  Either way ``run()`` returns
    one :class:`JobOutcome` per job **in submission order**.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Union[ResultCache, None, object] = _DEFAULT_CACHE,
        refresh: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        checkpoints: Union["CheckpointStore", None, object] = _DEFAULT_CACHE,
    ) -> None:
        if not isinstance(workers, int) or workers < 1:
            raise ReproError(f"workers must be a positive int, got {workers!r}")
        self.workers = workers
        self.cache: Optional[ResultCache] = (
            ResultCache() if cache is _DEFAULT_CACHE else cache
        )
        #: With refresh=True every job is re-simulated and re-stored —
        #: and resume is disabled (a refresh must exercise the full
        #: prefix), though fresh snapshots are still captured.
        self.refresh = refresh
        if checkpoints is _DEFAULT_CACHE:
            # Default: checkpoint alongside the result cache; an engine
            # explicitly running uncached also runs checkpoint-less.
            from ..checkpoint import CheckpointStore

            self.checkpoints: Optional[CheckpointStore] = (
                CheckpointStore(self.cache.root)
                if self.cache is not None
                else None
            )
        else:
            self.checkpoints = checkpoints
        self.stats = EngineStats()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # ------------------------------------------------------------------
    def run(
        self, jobs: Sequence[SimJob], isolate: bool = True
    ) -> List[JobOutcome]:
        """Execute every job; outcomes come back in submission order.

        With ``isolate=False`` the first failure raises instead of
        becoming an error record (single-run CLI semantics).
        """
        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
        keys: List[Optional[str]] = [None] * len(jobs)
        pending: List[int] = []
        for index, job in enumerate(jobs):
            key = None
            if self.cache is not None:
                key = self.cache.key_for(job.spec())
            keys[index] = key
            if key is not None and not self.refresh:
                outcome = self._replay(key)
                if outcome is not None:
                    outcomes[index] = outcome
                    continue
            pending.append(index)

        # Ascending budgets so a sweep's short runs seed its long ones
        # through the checkpoint store (outcomes still land at their
        # submission index, so output order is unchanged).
        pending.sort(key=lambda index: jobs[index].total_budget())

        if pending:
            if self.workers > 1 and len(pending) > 1:
                self._run_pool(jobs, pending, outcomes)
            else:
                for index in pending:
                    outcomes[index] = self._run_inprocess(
                        jobs[index], isolate
                    )
            for index in pending:
                outcome = outcomes[index]
                if outcome.ok and keys[index] is not None:
                    self.cache.put(
                        keys[index],
                        jobs[index].spec(),
                        outcome.result.to_dict(),
                        outcome.elapsed_s,
                    )

        self._account(jobs, outcomes, isolate)
        return outcomes

    def run_all(self, jobs: Sequence[SimJob]) -> List[SimulationResult]:
        """``run()`` with failures raised — for sweeps without isolation."""
        outcomes = self.run(jobs, isolate=False)
        return [outcome.result for outcome in outcomes]

    # ------------------------------------------------------------------
    def _replay(self, key: str) -> Optional[JobOutcome]:
        payload = self.cache.get(key)
        if payload is None:
            return None
        try:
            result = SimulationResult.from_dict(payload["result"])
        except Exception:
            _log.debug("cache entry %s failed to replay; miss", key)
            return None
        elapsed = payload.get("elapsed_s", 0.0)
        saved = elapsed if isinstance(elapsed, (int, float)) else 0.0
        self.stats.wall_time_saved_s += saved
        return JobOutcome(result=result, cached=True, elapsed_s=saved)

    @property
    def _ckpt_root(self) -> Optional[str]:
        """The checkpoint root as a picklable worker argument."""
        return (
            str(self.checkpoints.root)
            if self.checkpoints is not None
            else None
        )

    def _run_inprocess(self, job: SimJob, isolate: bool) -> JobOutcome:
        resume_ok = not self.refresh
        if not isolate:
            result, elapsed, resumed = _execute_job(
                job, self._ckpt_root, resume_ok
            )
            return JobOutcome(
                result=result, elapsed_s=elapsed, resumed_from=resumed
            )
        return _worker(job, self._ckpt_root, resume_ok)

    def _run_pool(
        self,
        jobs: Sequence[SimJob],
        pending: List[int],
        outcomes: List[Optional[JobOutcome]],
    ) -> None:
        ckpt_root = self._ckpt_root
        resume_ok = not self.refresh
        # Same-prefix jobs become one sequential chain (ascending by
        # budget — ``pending`` is already sorted): each member's end
        # snapshot seeds the next through the on-disk store.  Distinct
        # prefixes still fan out across the pool.
        chains: List[List[int]] = []
        if ckpt_root is not None:
            from ..checkpoint import CheckpointStore

            store = CheckpointStore(ckpt_root)
            by_prefix: Dict[str, List[int]] = {}
            for index in pending:
                prefix = store.prefix_key(jobs[index].spec())
                by_prefix.setdefault(prefix, []).append(index)
            chains = list(by_prefix.values())
        else:
            chains = [[index] for index in pending]
        workers = min(self.workers, len(chains))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _worker_chain,
                    [jobs[index] for index in chain],
                    ckpt_root,
                    resume_ok,
                ): chain
                for chain in chains
            }
            for future in as_completed(futures):
                chain = futures[future]
                try:
                    results = future.result()
                except Exception as exc:
                    # A worker that died outright (BrokenProcessPool,
                    # unpicklable payload) still yields records, not a
                    # crashed sweep.
                    for index in chain:
                        outcomes[index] = JobOutcome(
                            error=_error_record(
                                jobs[index], exc, retried=False
                            )
                        )
                    continue
                for index, outcome in zip(chain, results):
                    outcomes[index] = outcome

    def _account(
        self,
        jobs: Sequence[SimJob],
        outcomes: Sequence[JobOutcome],
        isolate: bool,
    ) -> None:
        for job, outcome in zip(jobs, outcomes):
            if outcome.cached:
                self.stats.jobs_cached += 1
            elif outcome.ok:
                self.stats.jobs_run += 1
                self.stats.wall_time_spent_s += outcome.elapsed_s
                if outcome.resumed_from is not None:
                    self.stats.jobs_resumed += 1
            else:
                self.stats.jobs_failed += 1
                if not isolate:
                    raise ReproError(
                        f"simulation of {job.workload!r} failed: "
                        f"{outcome.error['type']}: {outcome.error['error']}"
                    )
        metrics = self.metrics
        metrics.gauge("engine.jobs_run").set(self.stats.jobs_run)
        metrics.gauge("engine.jobs_cached").set(self.stats.jobs_cached)
        metrics.gauge("engine.jobs_resumed").set(self.stats.jobs_resumed)
        metrics.gauge("engine.jobs_failed").set(self.stats.jobs_failed)
        metrics.gauge("engine.wall_time_saved_s").set(
            self.stats.wall_time_saved_s
        )
        metrics.gauge("engine.wall_time_spent_s").set(
            self.stats.wall_time_spent_s
        )


def run_workload_groups(
    engine: ExperimentEngine,
    jobs: Sequence[SimJob],
    errors: List[Dict],
) -> Dict[str, List[SimulationResult]]:
    """Run jobs and group results by workload with failure isolation.

    Mirrors the legacy per-workload ``run_isolated`` closures: a group
    with any failed job contributes no results, and exactly one error
    record (its first failure, in job order) lands in ``errors``.
    """
    outcomes = engine.run(jobs)
    grouped: Dict[str, List[SimulationResult]] = {}
    failed: set = set()
    for job, outcome in zip(jobs, outcomes):
        name = job.group or job.workload
        if name in failed:
            continue
        if not outcome.ok:
            failed.add(name)
            grouped.pop(name, None)
            errors.append(outcome.error)
            continue
        grouped.setdefault(name, []).append(outcome.result)
    return grouped
