"""Parallel experiment engine: job specs, fan-out, and result caching.

Every paper figure and ablation is a grid of independent, deterministic
simulations.  The engine turns that grid into explicit :class:`SimJob`
specs and executes them through three interchangeable paths that are
proven equivalent by ``tests/test_engine_equivalence.py``:

* **in-process** (``workers=1``) — each job runs exactly like the legacy
  ``run_simulation`` call it replaces;
* **parallel** (``workers=N``) — jobs fan out over a
  ``ProcessPoolExecutor``; results are pickled back and re-ordered into
  submission order, so output never depends on completion order;
* **cached** — a :class:`~repro.harness.cache.ResultCache` hit replays
  the stored ``SimulationResult.to_dict()`` without simulating at all.

Because jobs are content-addressed, the HW_ONLY baseline a dozen sweeps
share is simulated once per (workload, budget) and replayed everywhere
else — the figure suite drops from hours to minutes.

Worker processes deliberately attach **no observer** unless the job asks
for interval sampling (``sample_interval``): observation hooks are off
by default in children, which cannot perturb results — the obs layer
never touches simulated timing (DESIGN.md §5b) — but keeps the pickled
result payload small.  Trace/metrics *export* needs the live observer
object and therefore stays an in-process, engine-bypassing concern of
the CLI.

Error isolation reuses ``run_isolated`` semantics per job: a failing
job becomes an error record (transient failures earn one retry), and
grouping helpers drop just that workload's rows from a figure.
"""

from __future__ import annotations

import dataclasses
import enum
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..config import (
    MachineConfig,
    PrefetchPolicy,
    SimulationConfig,
    TridentConfig,
)
from ..errors import CheckpointError, ReproError, WorkerCrashError
from ..faults.plan import FaultPlan
from ..logutil import get_logger
from ..obs import MetricsRegistry, Observer
from ..obs.spans import SpanRecorder, TraceContext
from ..obs.telemetry import format_engine_summary
from .cache import ResultCache
from .journal import job_key
from . import runner
from .runner import SimulationResult

_log = get_logger("engine")

#: Sentinel distinguishing "use the default cache" from "no cache".
_DEFAULT_CACHE = object()

#: Times a chain may break the process pool before its unfinished jobs
#: are recorded as crashed instead of resubmitted.
MAX_POOL_ATTEMPTS = 3


@dataclass(frozen=True)
class SimJob:
    """One simulation, fully specified and content-addressable.

    ``group`` names the error-isolation unit (default: the workload) —
    when any job of a group fails, figure helpers drop the whole group's
    rows, matching the legacy per-workload ``run_isolated`` closures.
    """

    workload: str
    config: SimulationConfig
    initial_distance_mode: Optional[str] = None
    fault_plan: Optional[FaultPlan] = None
    #: Attach an interval sampler in the worker (windowed IPC series on
    #: ``result.samples``); part of the cache key since it changes the
    #: result payload.
    sample_interval: Optional[int] = None
    group: str = ""
    #: Serialised ScenarioSpec when this job's workload is a DSL
    #: scenario (``workload`` then holds the scenario's name).
    scenario: Optional[Dict] = None
    #: Serialised TraceSpec when this job replays an external trace.
    trace: Optional[Dict] = None

    def spec(self) -> Dict:
        """The canonical JSON-able description hashed into the cache key.

        ``checkpoint_every`` is excluded: checkpoint cadence changes when
        the run *pauses to look*, never what it computes (chunked
        ``SMTCore.run`` calls are bit-identical to one call), so two jobs
        differing only in cadence must share one cache entry.

        Scenario/trace sources appear only when present, so builtin
        jobs keep their historical spec (cache entries, journal keys,
        and checkpoint prefixes all survive this field's addition).
        The trace's ``path`` is dropped: identity is the content hash.
        ``hw_prefetcher`` likewise appears only when a zoo policy is
        selected — every pre-zoo job spec hashes byte-identically
        (``tests/test_spec_hashes.py`` pins this).
        """
        config = _jsonify(dataclasses.asdict(self.config))
        config.pop("checkpoint_every", None)
        if config.get("hw_prefetcher") is None:
            config.pop("hw_prefetcher", None)
        payload = {
            "workload": self.workload,
            "config": config,
            "initial_distance_mode": self.initial_distance_mode,
            "fault_plan": (
                None if self.fault_plan is None else self.fault_plan.to_dict()
            ),
            "sample_interval": self.sample_interval,
        }
        if self.scenario is not None:
            payload["scenario"] = self.scenario
        if self.trace is not None:
            payload["trace"] = {
                k: v for k, v in self.trace.items() if k != "path"
            }
        return payload

    @property
    def source(self) -> str:
        """Where the workload comes from: builtin, scenario, or trace."""
        if self.scenario is not None:
            return "scenario"
        if self.trace is not None:
            return "trace"
        return "builtin"

    def total_budget(self) -> int:
        """Warmup + measured instructions (the resume-ordering key)."""
        return (
            self.config.warmup_instructions + self.config.max_instructions
        )

    def to_dict(self) -> Dict:
        """The full job as JSON — ``spec()`` plus the fields the cache
        key deliberately omits — so a journal can rebuild it."""
        payload = self.spec()
        payload["group"] = self.group
        payload["checkpoint_every"] = self.config.checkpoint_every
        if self.trace is not None:
            # Workers need the path; spec() deliberately dropped it.
            payload["trace"] = dict(self.trace)
        return payload

    @staticmethod
    def from_dict(raw: Dict) -> "SimJob":
        """Rebuild a job from :meth:`to_dict` (``resume-sweep``'s path)."""
        if not isinstance(raw, dict) or "workload" not in raw:
            raise ReproError(f"not a serialised SimJob: {raw!r}")
        config_raw = dict(raw.get("config") or {})
        if raw.get("checkpoint_every") is not None:
            config_raw["checkpoint_every"] = raw["checkpoint_every"]
        config = SimulationConfig.from_dict(config_raw)
        fault_raw = raw.get("fault_plan")
        return SimJob(
            workload=raw["workload"],
            config=config,
            initial_distance_mode=raw.get("initial_distance_mode"),
            fault_plan=(
                None if fault_raw is None else FaultPlan.from_dict(fault_raw)
            ),
            sample_interval=raw.get("sample_interval"),
            group=raw.get("group", ""),
            scenario=raw.get("scenario"),
            trace=raw.get("trace"),
        )


def _jsonify(value):
    """Recursively reduce to JSON-safe types (enums to values)."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def make_job(
    workload,
    policy: Union[PrefetchPolicy, str] = PrefetchPolicy.SELF_REPAIRING,
    machine: Optional[MachineConfig] = None,
    trident: Optional[TridentConfig] = None,
    max_instructions: int = 200_000,
    warmup_instructions: int = 0,
    overhead_only: bool = False,
    seed: int = 1,
    initial_distance_mode: Optional[str] = None,
    fault_plan: Optional[FaultPlan] = None,
    max_cycles: Optional[float] = None,
    wall_time_limit: Optional[float] = None,
    sample_interval: Optional[int] = None,
    fast: bool = True,
    checkpoint_every: Optional[int] = None,
    group: str = "",
    hw_prefetcher: Optional[str] = None,
) -> SimJob:
    """Build a :class:`SimJob` with ``run_simulation``'s signature.

    ``workload`` accepts a builtin benchmark name, a ``scenario:<name
    or file>`` / ``trace:<file>`` reference, or a ScenarioSpec /
    TraceSpec object — external sources are normalised into the job's
    ``scenario``/``trace`` fields here, once, so everything downstream
    (cache, journal, checkpoints, workers) sees plain data.

    ``policy`` additionally accepts a hardware-prefetcher zoo name
    (see :mod:`repro.hwprefetch.zoo`), which becomes ``HW_ONLY`` with
    ``hw_prefetcher`` set to that name.
    """
    from ..hwprefetch.zoo import resolve_policy

    policy, zoo_name = resolve_policy(policy)
    if zoo_name is not None:
        if hw_prefetcher is not None and hw_prefetcher != zoo_name:
            raise ReproError(
                f"policy {zoo_name!r} conflicts with "
                f"hw_prefetcher={hw_prefetcher!r}"
            )
        hw_prefetcher = zoo_name
    scenario = trace = None
    if not isinstance(workload, str) or ":" in workload:
        from ..scenarios import resolve_job_source

        ref = workload if isinstance(workload, str) else None
        workload, scenario, trace = resolve_job_source(workload)
        if not group and ref is not None:
            # Figures group/look up rows by the reference string they
            # were handed; keep that identity as the isolation group.
            group = ref
    config = SimulationConfig(
        machine=machine or MachineConfig(),
        trident=trident or TridentConfig(),
        policy=policy,
        max_instructions=max_instructions,
        warmup_instructions=warmup_instructions,
        overhead_only=overhead_only,
        seed=seed,
        max_cycles=max_cycles,
        wall_time_limit=wall_time_limit,
        fast=fast,
        checkpoint_every=checkpoint_every,
        hw_prefetcher=hw_prefetcher,
    )
    return SimJob(
        workload=workload,
        config=config,
        initial_distance_mode=initial_distance_mode,
        fault_plan=fault_plan,
        sample_interval=sample_interval,
        group=group,
        scenario=scenario,
        trace=trace,
    )


@dataclass
class JobOutcome:
    """What happened to one job: a result or an error record, never both."""

    result: Optional[SimulationResult] = None
    error: Optional[Dict] = None
    cached: bool = False
    elapsed_s: float = 0.0
    #: Committed-instruction count of the checkpoint this run resumed
    #: from (None: ran cold or replayed from the result cache).
    resumed_from: Optional[int] = None
    #: Worker-side telemetry spans (serialised dicts), carried back with
    #: the pickled outcome on the pool path; None when telemetry is off
    #: or the worker streamed them live (supervised path).
    spans: Optional[List[Dict]] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class EngineStats:
    """Cumulative counters over every ``run()`` of one engine."""

    jobs_run: int = 0
    jobs_cached: int = 0
    jobs_failed: int = 0
    #: Jobs that resumed from a stored checkpoint instead of running
    #: their whole prefix cold.
    jobs_resumed: int = 0
    #: Jobs reclaimed from a dead or lease-expired worker (supervisor).
    leases_reclaimed: int = 0
    #: Re-dispatches of reclaimed jobs.
    jobs_retried: int = 0
    #: Jobs quarantined as poison after repeated strikes.
    jobs_quarantined: int = 0
    #: Times a broken process pool was rebuilt mid-sweep.
    pool_rebuilds: int = 0
    #: Sum of the original wall time of every cache hit.
    wall_time_saved_s: float = 0.0
    wall_time_spent_s: float = 0.0

    def summary(self) -> str:
        """One-line fleet summary, through the single shared formatter
        (:func:`repro.obs.telemetry.format_engine_summary`) so this
        line and the fleet gauges can never disagree."""
        return format_engine_summary(
            {
                "run": self.jobs_run,
                "cached": self.jobs_cached,
                "resumed": self.jobs_resumed,
                "failed": self.jobs_failed,
                "reclaimed": self.leases_reclaimed,
                "retried": self.jobs_retried,
                "quarantined": self.jobs_quarantined,
                "spent": self.wall_time_spent_s,
                "saved": self.wall_time_saved_s,
            }
        )


def _execute_job(
    job: SimJob,
    ckpt_root: Optional[str] = None,
    resume_ok: bool = True,
    recorder: Optional[SpanRecorder] = None,
    context: Optional[TraceContext] = None,
) -> Tuple[SimulationResult, float, Optional[int]]:
    """Run one job to completion (no isolation).

    Returns ``(result, seconds, resumed_from)``.  With a checkpoint root,
    the job first looks for the largest stored snapshot of its own prefix
    at or before its budget and resumes from it — byte-identical to the
    cold run by the chunked-execution invariant — and offers its own
    snapshots back to the store as it runs.  Any checkpoint problem
    (corrupt file, stale stamp) silently degrades to a cold run.

    This is the single simulation seam for both the in-process path and
    pool workers; the baseline-reuse regression test counts invocations
    through ``runner.Simulation``.
    """
    from ..checkpoint import CheckpointStore, restore as restore_snapshot

    observer = None
    if job.sample_interval is not None:
        observer = Observer(sample_interval=job.sample_interval)
        if recorder is not None:
            # Live windowed IPC/miss-rate: each closed sample window is
            # forwarded through the recorder (and, supervised, over the
            # worker pipe) the moment it closes.
            observer.sample_sink = recorder.sample_sink(context)
    started = time.perf_counter()
    store: Optional[CheckpointStore] = None
    prefix = None
    if ckpt_root is not None:
        store = CheckpointStore(ckpt_root)
        prefix = store.prefix_key(job.spec())
    sim = None
    resumed_from: Optional[int] = None
    if store is not None and resume_ok:
        snapshot = store.best(prefix, job.total_budget())
        if snapshot is not None:
            restore_span = (
                recorder.begin("checkpoint-restore", context)
                if recorder is not None
                else None
            )
            try:
                sim = restore_snapshot(snapshot)
            except CheckpointError as exc:
                _log.debug("checkpoint restore failed, running cold: %s", exc)
                if restore_span is not None:
                    recorder.end(restore_span, ok=False)
            else:
                resumed_from = snapshot.committed
                if restore_span is not None:
                    recorder.end(
                        restore_span, ok=True, committed=snapshot.committed
                    )
    ckpt_sink = None
    if store is not None:
        if recorder is None:
            ckpt_sink = lambda s: store.save(prefix, s)  # noqa: E731
        else:
            def ckpt_sink(s, _store=store, _prefix=prefix):
                saved = _store.save(_prefix, s)
                if saved:
                    recorder.instant(
                        "checkpoint-capture",
                        context,
                        committed=s.core.stats.committed,
                    )
                return saved
    run_span = None
    if recorder is not None:
        run_span = recorder.begin(
            "run",
            context,
            workload=job.workload,
            policy=job.config.policy.value,
            budget=job.total_budget(),
            resumed_from=resumed_from,
            source=job.source,
        )
    try:
        if sim is None:
            workload = job.workload
            if job.scenario is not None or job.trace is not None:
                # External sources travel as data on the job; the
                # runnable Workload is rebuilt here, in whatever
                # process executes the job (Simulation accepts the
                # object in place of a registry name).
                from ..scenarios import materialize_workload

                workload = materialize_workload(
                    job.scenario, job.trace, job.config.seed
                )
            sim = runner.Simulation(
                workload,
                job.config,
                initial_distance_mode=job.initial_distance_mode,
                fault_plan=job.fault_plan,
                observer=observer,
            )
            if ckpt_sink is not None:
                sim.checkpoint_sink = ckpt_sink
            result = sim.run()
        else:
            # The snapshot carries the observer (and its partial sample
            # series) from the prefix run; only the sink and the cadence —
            # normalised away at capture — need re-attaching.
            if recorder is not None and sim.observer is not None:
                sim.observer.sample_sink = recorder.sample_sink(context)
            sim.checkpoint_sink = ckpt_sink
            if job.config.checkpoint_every is not None:
                sim.config = sim.config.replace(
                    checkpoint_every=job.config.checkpoint_every
                )
            result = sim.resume(job.config.max_instructions)
    except BaseException:
        if run_span is not None:
            recorder.end(run_span, ok=False)
        raise
    elapsed = time.perf_counter() - started
    if run_span is not None:
        recorder.end(run_span, ok=True, cycles=result.cycles)
    return result, elapsed, resumed_from


def _error_record(job: SimJob, exc: BaseException, retried: bool) -> Dict:
    record = {
        "workload": job.workload,
        "type": type(exc).__name__,
        "error": str(exc),
    }
    if retried:
        record["retried"] = True
    return record


def _worker(
    job: SimJob,
    ckpt_root: Optional[str] = None,
    resume_ok: bool = True,
    recorder: Optional[SpanRecorder] = None,
    context: Optional[TraceContext] = None,
) -> JobOutcome:
    """Pool entry point: isolate failures into records (picklable)."""

    def execute() -> Tuple[SimulationResult, float, Optional[int]]:
        # The recovery test suite monkeypatches ``_execute_job`` with
        # legacy three-argument fakes; the telemetry arguments are only
        # passed when a recorder is live.
        if recorder is None:
            return _execute_job(job, ckpt_root, resume_ok)
        return _execute_job(job, ckpt_root, resume_ok, recorder, context)

    try:
        result, elapsed, resumed = execute()
        return JobOutcome(
            result=result, elapsed_s=elapsed, resumed_from=resumed
        )
    except Exception as exc:
        if getattr(exc, "transient", False):
            if recorder is not None:
                recorder.instant(
                    "retry", context, transient=True,
                    error=type(exc).__name__,
                )
            try:
                result, elapsed, resumed = execute()
                return JobOutcome(
                    result=result, elapsed_s=elapsed, resumed_from=resumed
                )
            except Exception as retry_exc:
                return JobOutcome(
                    error=_error_record(job, retry_exc, retried=True)
                )
        return JobOutcome(error=_error_record(job, exc, retried=False))


#: Test seam for the broken-pool regression suite: when set to a path,
#: the first pool worker to claim it (O_EXCL) dies with ``os._exit`` —
#: the exact failure mode ``ProcessPoolExecutor`` reports as
#: ``BrokenProcessPool``.  Inherited by fork and spawn children alike
#: because it rides the environment.
_ENV_CRASH_ONCE = "REPRO_TEST_CRASH_ONCE"


def _maybe_crash_for_test() -> None:
    latch = os.environ.get(_ENV_CRASH_ONCE)
    if not latch:
        return
    try:
        fd = os.open(latch, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except OSError:
        return
    os.close(fd)
    os._exit(13)


def _worker_chain(
    jobs: List[SimJob],
    ckpt_root: Optional[str],
    resume_ok: bool,
    sweep_id: Optional[str] = None,
) -> List[JobOutcome]:
    """Run same-prefix jobs sequentially, ascending by budget.

    The jobs share a checkpoint prefix, so each run's end snapshot seeds
    the next one through the on-disk store: a multi-budget sweep pays
    for its longest member plus deltas instead of the sum of budgets.
    Submitted to the pool as one unit so the chain's data locality is
    not lost to scheduling.

    With a ``sweep_id`` (telemetry on) each job records its spans into a
    buffering worker-side recorder and carries them home attached to the
    pickled outcome — the pool path has no live channel back.
    """
    _maybe_crash_for_test()
    if sweep_id is None:
        return [_worker(job, ckpt_root, resume_ok) for job in jobs]
    recorder = SpanRecorder(TraceContext(sweep_id), role="worker")
    outcomes: List[JobOutcome] = []
    for job in jobs:
        context = TraceContext(sweep_id, job_key(job.spec()))
        outcome = _worker(job, ckpt_root, resume_ok, recorder, context)
        outcome.spans = recorder.drain()
        outcomes.append(outcome)
    return outcomes


class ExperimentEngine:
    """Executes :class:`SimJob` batches with caching and fan-out.

    ``workers=1`` (the default) runs jobs sequentially in-process —
    bit-identical to the legacy serial harness.  ``workers=N`` fans the
    uncached jobs out over N processes.  Either way ``run()`` returns
    one :class:`JobOutcome` per job **in submission order**.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Union[ResultCache, None, object] = _DEFAULT_CACHE,
        refresh: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        checkpoints: Union["CheckpointStore", None, object] = _DEFAULT_CACHE,
        journal=None,
        supervised: bool = False,
        chaos=None,
        retry=None,
        lease_s: float = 300.0,
        heartbeat_s: float = 1.0,
        telemetry=None,
    ) -> None:
        if not isinstance(workers, int) or workers < 1:
            raise ReproError(f"workers must be a positive int, got {workers!r}")
        self.workers = workers
        #: Fleet TelemetryHub, or None (the default: telemetry off, the
        #: engine pays one ``is not None`` check per lifecycle point).
        self.telemetry = telemetry
        if metrics is None and telemetry is not None:
            # Share one registry so the hub's fleet gauges and the
            # engine's counters land in the same snapshot.
            metrics = telemetry.metrics
        self.cache: Optional[ResultCache] = (
            ResultCache() if cache is _DEFAULT_CACHE else cache
        )
        #: With refresh=True every job is re-simulated and re-stored —
        #: and resume is disabled (a refresh must exercise the full
        #: prefix), though fresh snapshots are still captured.
        self.refresh = refresh
        if checkpoints is _DEFAULT_CACHE:
            # Default: checkpoint alongside the result cache; an engine
            # explicitly running uncached also runs checkpoint-less.
            from ..checkpoint import CheckpointStore

            self.checkpoints: Optional[CheckpointStore] = (
                CheckpointStore(self.cache.root)
                if self.cache is not None
                else None
            )
        else:
            self.checkpoints = checkpoints
        self.stats = EngineStats()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Durable WAL of job transitions (see repro.harness.journal);
        #: None journals nothing.
        self.journal = journal
        #: A bound ChaosSchedule accumulating injection counters, or
        #: None.  Chaos kills workers, so it forces the supervised path
        #: — an in-process SIGKILL would take the whole sweep down.
        self.chaos = None
        if chaos is not None:
            from ..faults.chaos import ChaosPlan

            plan = chaos if isinstance(chaos, ChaosPlan) else None
            if plan is None:
                raise ReproError(
                    f"chaos must be a ChaosPlan, got {chaos!r}"
                )
            self._chaos_plan = plan
            supervised = True
        else:
            self._chaos_plan = None
        self.supervisor = None
        if supervised:
            from .supervisor import WorkerSupervisor

            self.supervisor = WorkerSupervisor(
                workers=self.workers,
                lease_s=lease_s,
                heartbeat_s=heartbeat_s,
                retry=retry,
                journal=self.journal,
                metrics=self.metrics,
                telemetry=self.telemetry,
            )

    # ------------------------------------------------------------------
    def run(
        self, jobs: Sequence[SimJob], isolate: bool = True
    ) -> List[JobOutcome]:
        """Execute every job; outcomes come back in submission order.

        With ``isolate=False`` the first failure raises instead of
        becoming an error record (single-run CLI semantics).

        Completed results are committed to the result cache (and the
        journal) *as they finish*, not at the end — a SIGINT or a
        crashed sweep keeps everything that was done, and a resumed
        sweep replays it instead of recomputing.
        """
        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
        keys: List[Optional[str]] = [None] * len(jobs)
        hub = self.telemetry
        jkeys = [job_key(job.spec()) for job in jobs] if (
            self.journal is not None
            or self._chaos_plan is not None
            or hub is not None
        ) else [None] * len(jobs)
        if hub is not None:
            hub.sweep_started(self.workers)
        pending: List[int] = []
        for index, job in enumerate(jobs):
            self._journal_event(
                "submit", jkeys[index], job=job.to_dict()
            )
            if hub is not None:
                hub.job_submitted(jkeys[index])
            key = None
            if self.cache is not None:
                key = self.cache.key_for(job.spec())
            keys[index] = key
            if key is not None and not self.refresh:
                probe_started = time.perf_counter()
                outcome = self._replay(key)
                if hub is not None:
                    hub.cache_probe(
                        jkeys[index],
                        outcome is not None,
                        time.perf_counter() - probe_started,
                    )
                if outcome is not None:
                    outcomes[index] = outcome
                    self._journal_event("cached", jkeys[index])
                    if hub is not None:
                        hub.job_finished(
                            jkeys[index], ok=True, cached=True,
                            cycles=outcome.result.cycles,
                        )
                    continue
            pending.append(index)

        # Ascending budgets so a sweep's short runs seed its long ones
        # through the checkpoint store (outcomes still land at their
        # submission index, so output order is unchanged).
        pending.sort(key=lambda index: jobs[index].total_budget())

        committed: set = set()

        def commit(index: int, outcome: Optional[JobOutcome]) -> None:
            """Flush one finished job durably the moment it completes."""
            if outcome is None or index in committed:
                return
            committed.add(index)
            if hub is not None:
                hub.job_finished(
                    jkeys[index],
                    ok=outcome.ok,
                    cached=outcome.cached,
                    cycles=outcome.result.cycles if outcome.ok else 0.0,
                    spans=outcome.spans,
                )
                outcome.spans = None
            if outcome.ok and keys[index] is not None:
                self.cache.put(
                    keys[index],
                    jobs[index].spec(),
                    outcome.result.to_dict(),
                    outcome.elapsed_s,
                )
                if self.chaos is not None:
                    self.chaos.maybe_corrupt_cache(
                        self.cache.path_for(keys[index]), jkeys[index]
                    )

        if pending:
            try:
                if self.supervisor is not None:
                    self._run_supervised(
                        jobs, pending, outcomes, jkeys, commit
                    )
                elif self.workers > 1 and len(pending) > 1:
                    self._run_pool(jobs, pending, outcomes, jkeys, commit)
                else:
                    for index in pending:
                        self._journal_event("start", jkeys[index])
                        if hub is not None:
                            hub.job_scheduled(
                                jkeys[index], worker="in-process"
                            )
                        outcomes[index] = self._run_inprocess(
                            jobs[index], isolate, jkey=jkeys[index]
                        )
                        commit(index, outcomes[index])
                        self._journal_outcome(
                            jkeys[index], outcomes[index]
                        )
            except BaseException:
                # Cancelled or crashed mid-sweep: everything committed
                # so far is already durable; record the interruption.
                self._journal_event("interrupted", None)
                if hub is not None:
                    hub.instant("interrupted")
                    hub.flush()
                raise

        self._account(jobs, outcomes, isolate)
        if hub is not None:
            hub.flush()
        return outcomes

    # ------------------------------------------------------------------
    def _journal_event(self, event: str, key, **data) -> None:
        if self.journal is not None:
            self.journal.append(event, key=key, **data)

    def _journal_outcome(self, key, outcome: Optional[JobOutcome]) -> None:
        if self.journal is None or outcome is None:
            return
        if outcome.ok:
            self._journal_event("done", key, elapsed_s=outcome.elapsed_s)
        else:
            self._journal_event("failed", key, error=outcome.error)

    def _chaos_schedule(self, jkeys: Sequence[str]):
        """Bind the chaos plan to this engine's first job set (lazily);
        later runs reuse the same schedule so counters accumulate."""
        if self._chaos_plan is None:
            return None
        if self.chaos is None:
            self.chaos = self._chaos_plan.schedule(
                [k for k in jkeys if k is not None]
            )
            if self.journal is not None and self._chaos_plan.torn_journal:
                self.journal.write_filter = self.chaos.journal_filter()
        return self.chaos

    def run_all(self, jobs: Sequence[SimJob]) -> List[SimulationResult]:
        """``run()`` with failures raised — for sweeps without isolation."""
        outcomes = self.run(jobs, isolate=False)
        return [outcome.result for outcome in outcomes]

    # ------------------------------------------------------------------
    def _replay(self, key: str) -> Optional[JobOutcome]:
        payload = self.cache.get(key)
        if payload is None:
            return None
        try:
            result = SimulationResult.from_dict(payload["result"])
        except Exception:
            _log.debug("cache entry %s failed to replay; miss", key)
            return None
        elapsed = payload.get("elapsed_s", 0.0)
        saved = elapsed if isinstance(elapsed, (int, float)) else 0.0
        self.stats.wall_time_saved_s += saved
        return JobOutcome(result=result, cached=True, elapsed_s=saved)

    @property
    def _ckpt_root(self) -> Optional[str]:
        """The checkpoint root as a picklable worker argument."""
        return (
            str(self.checkpoints.root)
            if self.checkpoints is not None
            else None
        )

    def _run_inprocess(
        self, job: SimJob, isolate: bool, jkey: Optional[str] = None
    ) -> JobOutcome:
        resume_ok = not self.refresh
        recorder = context = None
        if self.telemetry is not None:
            # In-process jobs record straight into the hub's own
            # recorder — same process, no pickling or pipe needed.
            recorder = self.telemetry.recorder
            context = self.telemetry.job_context(jkey)
        if not isolate:
            if recorder is None:
                result, elapsed, resumed = _execute_job(
                    job, self._ckpt_root, resume_ok
                )
            else:
                result, elapsed, resumed = _execute_job(
                    job, self._ckpt_root, resume_ok, recorder, context
                )
            return JobOutcome(
                result=result, elapsed_s=elapsed, resumed_from=resumed
            )
        return _worker(job, self._ckpt_root, resume_ok, recorder, context)

    def _chains(
        self, jobs: Sequence[SimJob], pending: List[int]
    ) -> List[List[int]]:
        """Group pending job indexes into same-prefix chains.

        Same-prefix jobs become one sequential chain (ascending by
        budget — ``pending`` is already sorted): each member's end
        snapshot seeds the next through the on-disk store.  Distinct
        prefixes still fan out across the pool.
        """
        ckpt_root = self._ckpt_root
        if ckpt_root is None:
            return [[index] for index in pending]
        from ..checkpoint import CheckpointStore

        store = CheckpointStore(ckpt_root)
        by_prefix: Dict[str, List[int]] = {}
        for index in pending:
            prefix = store.prefix_key(jobs[index].spec())
            by_prefix.setdefault(prefix, []).append(index)
        return list(by_prefix.values())

    def _run_pool(
        self,
        jobs: Sequence[SimJob],
        pending: List[int],
        outcomes: List[Optional[JobOutcome]],
        jkeys: Sequence[Optional[str]],
        commit: Callable[[int, Optional[JobOutcome]], None],
    ) -> None:
        """The plain (unsupervised) fan-out path.

        A broken pool — one worker SIGKILLed or ``os._exit``ing tears
        down every sibling future in a ``ProcessPoolExecutor`` — no
        longer loses the batch: completed chains are committed, the pool
        is rebuilt, and only unfinished chains are resubmitted.  A chain
        that keeps breaking the pool is given up on after
        :data:`MAX_POOL_ATTEMPTS` tries and recorded as crashed.
        """
        ckpt_root = self._ckpt_root
        resume_ok = not self.refresh
        hub = self.telemetry
        sweep_id = hub.sweep_id if hub is not None else None
        remaining = self._chains(jobs, pending)
        attempts: Dict[Tuple[int, ...], int] = {}

        def record_chain(chain, results) -> None:
            for index, outcome in zip(chain, results):
                outcomes[index] = outcome
                commit(index, outcome)
                self._journal_outcome(jkeys[index], outcome)

        while remaining:
            workers = min(self.workers, len(remaining))
            pool = ProcessPoolExecutor(max_workers=workers)
            broken = False
            try:
                futures = {}
                for chain in remaining:
                    for index in chain:
                        self._journal_event("start", jkeys[index])
                        if hub is not None:
                            hub.job_scheduled(
                                jkeys[index],
                                attempt=attempts.get(tuple(chain), 0),
                                worker="pool",
                            )
                    # sweep_id is passed only when telemetry is live:
                    # recovery tests monkeypatch ``_worker_chain`` with
                    # legacy three-argument fakes.
                    chain_args = (
                        [jobs[index] for index in chain],
                        ckpt_root,
                        resume_ok,
                    )
                    if sweep_id is not None:
                        chain_args += (sweep_id,)
                    futures[pool.submit(
                        _worker_chain, *chain_args
                    )] = tuple(chain)
                for future in as_completed(futures):
                    chain = futures[future]
                    try:
                        results = future.result()
                    except BrokenProcessPool:
                        broken = True
                        break
                    except Exception as exc:
                        # A job whose *payload* failed (unpicklable
                        # result, say) yields records, not a crashed
                        # sweep — and not a retry, it would fail again.
                        results = [
                            JobOutcome(error=_error_record(
                                jobs[index], exc, retried=False
                            ))
                            for index in chain
                        ]
                    record_chain(chain, results)
                # Sweep up futures that finished before a break.
                if broken:
                    for future, chain in futures.items():
                        if outcomes[chain[0]] is not None:
                            continue
                        if not future.done() or future.cancelled():
                            continue
                        try:
                            record_chain(chain, future.result())
                        except Exception:
                            pass
            except BaseException:
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            pool.shutdown(wait=False, cancel_futures=True)
            if not broken:
                break
            self.stats.pool_rebuilds += 1
            _log.warning(
                "worker pool broke; rebuilding and resubmitting "
                "unfinished chains"
            )
            next_round: List[List[int]] = []
            for chain in remaining:
                if outcomes[chain[0]] is not None:
                    continue
                chain_id = tuple(chain)
                strikes = attempts.get(chain_id, 0) + 1
                attempts[chain_id] = strikes
                quarantining = strikes >= MAX_POOL_ATTEMPTS
                for index in chain:
                    self._journal_event(
                        "reclaimed", jkeys[index],
                        reason="BrokenProcessPool", attempts=strikes,
                    )
                    if hub is not None:
                        hub.job_reclaimed(
                            jkeys[index], attempt=strikes,
                            reason="BrokenProcessPool",
                            retrying=not quarantining,
                        )
                self.stats.leases_reclaimed += len(chain)
                if quarantining:
                    exc = WorkerCrashError(
                        f"chain crashed the worker pool {strikes} times"
                    )
                    for index in chain:
                        outcomes[index] = JobOutcome(
                            error=_error_record(
                                jobs[index], exc, retried=True
                            )
                        )
                        self._journal_event(
                            "quarantined", jkeys[index],
                            error=outcomes[index].error,
                        )
                        commit(index, outcomes[index])
                    self.stats.jobs_quarantined += len(chain)
                else:
                    self.stats.jobs_retried += len(chain)
                    next_round.append(chain)
            remaining = next_round

    def _run_supervised(
        self,
        jobs: Sequence[SimJob],
        pending: List[int],
        outcomes: List[Optional[JobOutcome]],
        jkeys: Sequence[Optional[str]],
        commit: Callable[[int, Optional[JobOutcome]], None],
    ) -> None:
        """The crash-safe path: chains under the worker supervisor."""
        chains = self._chains(jobs, pending)
        schedule = self._chaos_schedule(
            [jkeys[index] for index in pending]
        )
        units = [[jobs[index] for index in chain] for chain in chains]
        unit_keys = [[jkeys[index] for index in chain] for chain in chains]

        def on_outcome(unit_id: int, position: int, outcome) -> None:
            commit(chains[unit_id][position], outcome)

        supervisor = self.supervisor
        before = (supervisor.reclaimed, supervisor.retries,
                  supervisor.quarantined)
        results = supervisor.execute(
            units,
            unit_keys,
            self._ckpt_root,
            not self.refresh,
            chaos=schedule,
            on_outcome=on_outcome,
        )
        for chain, chain_results in zip(chains, results):
            for index, outcome in zip(chain, chain_results):
                if outcome is None:
                    outcome = JobOutcome(
                        error=_error_record(
                            jobs[index],
                            WorkerCrashError(
                                "job never produced an outcome"
                            ),
                            retried=False,
                        )
                    )
                outcomes[index] = outcome
                commit(index, outcome)
        self.stats.leases_reclaimed += supervisor.reclaimed - before[0]
        self.stats.jobs_retried += supervisor.retries - before[1]
        self.stats.jobs_quarantined += supervisor.quarantined - before[2]

    def _account(
        self,
        jobs: Sequence[SimJob],
        outcomes: Sequence[JobOutcome],
        isolate: bool,
    ) -> None:
        for job, outcome in zip(jobs, outcomes):
            if outcome.cached:
                self.stats.jobs_cached += 1
            elif outcome.ok:
                self.stats.jobs_run += 1
                self.stats.wall_time_spent_s += outcome.elapsed_s
                if outcome.resumed_from is not None:
                    self.stats.jobs_resumed += 1
            else:
                self.stats.jobs_failed += 1
                if not isolate:
                    raise ReproError(
                        f"simulation of {job.workload!r} failed: "
                        f"{outcome.error['type']}: {outcome.error['error']}"
                    )
        metrics = self.metrics
        metrics.gauge("engine.jobs_run").set(self.stats.jobs_run)
        metrics.gauge("engine.jobs_cached").set(self.stats.jobs_cached)
        metrics.gauge("engine.jobs_resumed").set(self.stats.jobs_resumed)
        metrics.gauge("engine.jobs_failed").set(self.stats.jobs_failed)
        metrics.gauge("engine.leases_reclaimed").set(
            self.stats.leases_reclaimed
        )
        metrics.gauge("engine.jobs_retried").set(self.stats.jobs_retried)
        metrics.gauge("engine.jobs_quarantined").set(
            self.stats.jobs_quarantined
        )
        metrics.gauge("engine.pool_rebuilds").set(self.stats.pool_rebuilds)
        metrics.gauge("engine.wall_time_saved_s").set(
            self.stats.wall_time_saved_s
        )
        metrics.gauge("engine.wall_time_spent_s").set(
            self.stats.wall_time_spent_s
        )
        if self.cache is not None:
            metrics.gauge("cache.quarantined").set(self.cache.quarantined)


def run_workload_groups(
    engine: ExperimentEngine,
    jobs: Sequence[SimJob],
    errors: List[Dict],
) -> Dict[str, List[SimulationResult]]:
    """Run jobs and group results by workload with failure isolation.

    Mirrors the legacy per-workload ``run_isolated`` closures: a group
    with any failed job contributes no results, and exactly one error
    record (its first failure, in job order) lands in ``errors``.
    """
    outcomes = engine.run(jobs)
    grouped: Dict[str, List[SimulationResult]] = {}
    failed: set = set()
    for job, outcome in zip(jobs, outcomes):
        name = job.group or job.workload
        if name in failed:
            continue
        if not outcome.ok:
            failed.add(name)
            grouped.pop(name, None)
            errors.append(outcome.error)
            continue
        grouped.setdefault(name, []).append(outcome.result)
    return grouped
