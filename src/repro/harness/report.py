"""Fixed-width table rendering and aggregation helpers.

Every experiment prints paper-style rows through these helpers, so the
bench output can be eyeballed against the paper's figures.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def fmt(value: Cell, precision: int = 3) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def percent(value: float, precision: int = 1) -> str:
    """0.231 -> '23.1%'."""
    return f"{100.0 * value:.{precision}f}%"


def speedup_percent(speedup: float, precision: int = 1) -> str:
    """1.231 -> '+23.1%' (the paper reports speedups as percentages)."""
    return f"{100.0 * (speedup - 1.0):+.{precision}f}%"


def arithmetic_mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def geometric_mean(values: Sequence[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render a fixed-width text table."""
    str_rows: List[List[str]] = [
        [fmt(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.rjust(widths[i]) if i else cell.ljust(widths[i])
            for i, cell in enumerate(cells)
        )

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    for row in str_rows:
        out.append(line(row))
    return "\n".join(out)


def render_errors(errors: Sequence[Dict]) -> str:
    """Render an experiment's per-workload error records (empty string
    when the sweep was clean)."""
    if not errors:
        return ""
    lines = [
        f"errors ({len(errors)} workload failure"
        f"{'s' if len(errors) != 1 else ''} isolated; rows above are the "
        "survivors)",
    ]
    lines.append("-" * len(lines[0]))
    for record in errors:
        retried = " (failed again after one retry)" if record.get("retried") else ""
        lines.append(
            f"  {record['workload']}: {record['type']}: "
            f"{record['error']}{retried}"
        )
    return "\n".join(lines)


def render_mapping(title: str, mapping: Dict[str, Cell]) -> str:
    """Render a simple key/value block."""
    width = max((len(k) for k in mapping), default=0)
    lines = [title, "=" * len(title)]
    for key, value in mapping.items():
        lines.append(f"{key.ljust(width)}  {fmt(value)}")
    return "\n".join(lines)


def render_timeline(timelines: Sequence[Dict]) -> str:
    """Render per-PC repair timelines (``PCTimeline.to_dict`` payloads).

    One block per prefetch group: the section-3.5.2 distance search as a
    cycle-stamped step list — insert at its initial distance, every ±1
    repair with the latency that drove it, and the maturity transition.
    """
    if not timelines:
        return "no repair timelines (no prefetches were inserted)"
    out: List[str] = []
    for tl in timelines:
        pcs = ",".join(str(pc) for pc in tl.get("load_pcs", []))
        head = (
            f"pc {tl['pc']} [{tl.get('kind', 'stride')}] loads=({pcs}) "
            f"dl_events={tl.get('dl_events', 0)} "
            f"final_distance={tl.get('final_distance')}"
        )
        if tl.get("mature"):
            head += f" mature@{fmt(tl.get('mature_cycle'), 0)}"
        out.append(head)
        out.append("-" * len(head))
        for step in tl.get("steps", []):
            cycle = fmt(step.get("cycle", 0.0), 0)
            kind = step.get("kind", "?")
            line = f"  cycle {cycle:>10s}  {kind:<7s}"
            if "distance" in step:
                line += f" distance={step['distance']}"
            if "avg_latency" in step:
                line += f" avg_latency={step['avg_latency']:.1f}"
            out.append(line)
        out.append("")
    return "\n".join(out).rstrip()
