"""Content-addressed on-disk cache for simulation results.

Every simulation here is deterministic (PR 2 made runs bit-for-bit
reproducible), so a result is a pure function of its full job
specification — workload, machine/Trident configuration, budgets, fault
plan, sampling interval — plus the simulator source itself.  The cache
exploits that: a :class:`ResultCache` entry is keyed by a stable SHA-256
over the canonical JSON of the job spec *and* a code-version stamp
hashed over every ``repro`` source file, so any change to the simulator
silently invalidates every prior entry.

Entries store ``SimulationResult.to_dict()`` (plus the wall time the
original run cost, so the engine can report time saved).  Writes are
atomic — payload goes to a same-directory temp file first, then
``os.replace`` — so concurrent writers (parallel engine workers, two
bench invocations) can never tear an entry; last writer wins with an
identical payload anyway.  A corrupted or truncated entry is treated as
a miss, never an error.

The cache root is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``; entries
live under ``<root>/results/<key[:2]>/<key>.json``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pathlib
import threading
from typing import Dict, Optional

from ..logutil import get_logger

_log = get_logger("cache")

#: Bumped whenever the entry payload layout changes; part of the key, so
#: old-layout entries become unreachable rather than misparsed.
SCHEMA_VERSION = 1

#: Environment override for the cache root directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Environment override for the code-version stamp (tests use this to
#: simulate a source change without editing files).
ENV_CODE_VERSION = "REPRO_CODE_VERSION"

_code_version_cache: Optional[str] = None

#: Monotonic suffix keeping same-thread temp files distinct too.
_tmp_counter = itertools.count()


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


def code_version() -> str:
    """A stamp that changes whenever any ``repro`` source file changes.

    SHA-256 over every ``.py`` file under the package directory (relative
    path + contents, sorted), memoised per process.  ``REPRO_CODE_VERSION``
    overrides it, which tests use to exercise invalidation.
    """
    env = os.environ.get(ENV_CODE_VERSION)
    if env:
        return env
    global _code_version_cache
    if _code_version_cache is None:
        package_root = pathlib.Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(package_root.glob("**/*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version_cache = digest.hexdigest()
    return _code_version_cache


def stable_hash(spec: Dict) -> str:
    """SHA-256 of the canonical (sorted, compact) JSON of ``spec``."""
    canonical = json.dumps(
        spec, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Content-addressed store of serialised simulation results.

    All I/O failure modes degrade to "cache off" behaviour: an unwritable
    root skips stores, an unreadable or corrupt entry is a miss.  The
    simulation always wins over the cache.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = pathlib.Path(root) if root else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    # Keys and paths.
    # ------------------------------------------------------------------
    def key_for(self, spec: Dict) -> str:
        """The content address of a job spec (code version included)."""
        return stable_hash(
            {
                "schema": SCHEMA_VERSION,
                "code_version": code_version(),
                "spec": spec,
            }
        )

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / "results" / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Lookup / store.
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict]:
        """The stored payload for ``key``, or None on miss/corruption.

        The payload is ``{"schema", "spec", "elapsed_s", "result"}``;
        anything that does not parse to that shape is a miss.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != SCHEMA_VERSION
            or not isinstance(payload.get("result"), dict)
        ):
            _log.debug("cache entry %s has a bad shape; treating as miss", key)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(
        self, key: str, spec: Dict, result: Dict, elapsed_s: float
    ) -> bool:
        """Atomically store one result; returns False when storage fails."""
        path = self.path_for(key)
        payload = {
            "schema": SCHEMA_VERSION,
            "spec": spec,
            "elapsed_s": elapsed_s,
            "result": result,
        }
        # Unique per process, thread, and call: concurrent writers (pool
        # workers, threaded benches) must never share a temp file.
        tmp = path.with_name(
            f".{path.name}.tmp.{os.getpid()}."
            f"{threading.get_ident()}.{next(_tmp_counter)}"
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Insertion order is preserved deliberately: a replayed
            # result's to_dict() must be byte-identical to the live
            # run's, ordering included (sorting here would alphabetise
            # nested dicts like the load-outcome breakdown).
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except OSError as exc:
            _log.debug("cache store failed for %s: %s", key, exc)
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self.stores += 1
        return True
