"""Content-addressed on-disk cache for simulation results.

Every simulation here is deterministic (PR 2 made runs bit-for-bit
reproducible), so a result is a pure function of its full job
specification — workload, machine/Trident configuration, budgets, fault
plan, sampling interval — plus the simulator source itself.  The cache
exploits that: a :class:`ResultCache` entry is keyed by a stable SHA-256
over the canonical JSON of the job spec *and* a code-version stamp
hashed over every ``repro`` source file, so any change to the simulator
silently invalidates every prior entry.

Entries store ``SimulationResult.to_dict()`` (plus the wall time the
original run cost, so the engine can report time saved).  Writes are
atomic and durable — payload goes to a same-directory temp file first,
is fsynced, then ``os.replace``d — so concurrent writers (parallel
engine workers, two bench invocations) can never tear an entry and a
power cut never leaves a half-entry under the final name; last writer
wins with an identical payload anyway.

The read path is checksum-verified: every entry carries ``sum``, a
truncated SHA-256 over the canonical JSON of its result payload.  An
entry that fails to parse, has the wrong shape, or fails its checksum
is **quarantined** — moved aside to ``<root>/quarantine/`` for autopsy,
logged, and treated as a miss so the job re-simulates (degrade to a
cold run, never an error).  A full disk degrades the whole cache to
cache-off mode for the rest of the process instead of failing every
store.

The cache root is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``; entries
live under ``<root>/results/<key[:2]>/<key>.json``.
"""

from __future__ import annotations

import errno
import hashlib
import itertools
import json
import os
import pathlib
import threading
from typing import Dict, Optional

from ..logutil import get_logger

_log = get_logger("cache")

#: errno values that mean "storage is out of room", not "this write is
#: bad": the store disables itself instead of failing every later write.
_DISK_FULL_ERRNOS = frozenset(
    code
    for code in (
        getattr(errno, "ENOSPC", None),
        getattr(errno, "EDQUOT", None),
    )
    if code is not None
)

#: Bumped whenever the entry payload layout changes; part of the key, so
#: old-layout entries become unreachable rather than misparsed.
SCHEMA_VERSION = 1

#: Environment override for the cache root directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Environment override for the code-version stamp (tests use this to
#: simulate a source change without editing files).
ENV_CODE_VERSION = "REPRO_CODE_VERSION"

_code_version_cache: Optional[str] = None

#: Monotonic suffix keeping same-thread temp files distinct too.
_tmp_counter = itertools.count()


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


def code_version() -> str:
    """A stamp that changes whenever any ``repro`` source file changes.

    SHA-256 over every ``.py`` file under the package directory (relative
    path + contents, sorted), memoised per process.  ``REPRO_CODE_VERSION``
    overrides it, which tests use to exercise invalidation.
    """
    env = os.environ.get(ENV_CODE_VERSION)
    if env:
        return env
    global _code_version_cache
    if _code_version_cache is None:
        package_root = pathlib.Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(package_root.glob("**/*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version_cache = digest.hexdigest()
    return _code_version_cache


def stable_hash(spec: Dict) -> str:
    """SHA-256 of the canonical (sorted, compact) JSON of ``spec``."""
    canonical = json.dumps(
        spec, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def payload_checksum(result: Dict) -> str:
    """Truncated stable hash guarding one entry's result payload."""
    return stable_hash(result)[:16]


class ResultCache:
    """Content-addressed store of serialised simulation results.

    All I/O failure modes degrade to "cache off" behaviour: an unwritable
    root skips stores, an unreadable or corrupt entry is a miss.  The
    simulation always wins over the cache.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = pathlib.Path(root) if root else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Entries moved aside after failing parse/shape/checksum checks.
        self.quarantined = 0
        #: Set once the disk fills up; all later stores become no-ops.
        self.disabled = False

    # ------------------------------------------------------------------
    # Keys and paths.
    # ------------------------------------------------------------------
    def key_for(self, spec: Dict) -> str:
        """The content address of a job spec (code version included)."""
        return stable_hash(
            {
                "schema": SCHEMA_VERSION,
                "code_version": code_version(),
                "spec": spec,
            }
        )

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / "results" / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Lookup / store.
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict]:
        """The stored payload for ``key``, or None on miss/corruption.

        The payload is ``{"schema", "spec", "elapsed_s", "result", "sum"}``;
        anything that does not parse to that shape, or whose ``sum`` does
        not match its result payload, is quarantined and counted a miss.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(raw)
            good_shape = (
                isinstance(payload, dict)
                and payload.get("schema") == SCHEMA_VERSION
                and isinstance(payload.get("result"), dict)
            )
        except ValueError:
            payload, good_shape = None, False
        if not good_shape:
            self._quarantine(key, path, "unparseable or bad shape")
            self.misses += 1
            return None
        expected = payload.get("sum")
        if expected is not None and expected != payload_checksum(
            payload["result"]
        ):
            self._quarantine(key, path, "checksum mismatch")
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(
        self, key: str, spec: Dict, result: Dict, elapsed_s: float
    ) -> bool:
        """Durably store one result; returns False when storage fails."""
        if self.disabled:
            return False
        path = self.path_for(key)
        payload = {
            "schema": SCHEMA_VERSION,
            "spec": spec,
            "elapsed_s": elapsed_s,
            "result": result,
            "sum": payload_checksum(result),
        }
        # Unique per process, thread, and call: concurrent writers (pool
        # workers, threaded benches) must never share a temp file.
        tmp = path.with_name(
            f".{path.name}.tmp.{os.getpid()}."
            f"{threading.get_ident()}.{next(_tmp_counter)}"
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Insertion order is preserved deliberately: a replayed
            # result's to_dict() must be byte-identical to the live
            # run's, ordering included (sorting here would alphabetise
            # nested dicts like the load-outcome breakdown).
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            if exc.errno in _DISK_FULL_ERRNOS:
                _log.warning(
                    "cache disk full (%s); disabling stores for this run",
                    exc,
                )
                self.disabled = True
            else:
                _log.debug("cache store failed for %s: %s", key, exc)
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self.stores += 1
        return True

    # ------------------------------------------------------------------
    # Corruption handling.
    # ------------------------------------------------------------------
    def quarantine_dir(self) -> pathlib.Path:
        return self.root / "quarantine"

    def _quarantine(self, key: str, path: pathlib.Path, reason: str) -> None:
        """Move a corrupt entry aside for autopsy; never raises."""
        _log.warning("cache entry %s %s; quarantining", key, reason)
        dest = self.quarantine_dir() / path.name
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
        except OSError:
            # Quarantine is best-effort: an undeletable corrupt entry
            # still reads as a miss, it just stays in place.
            try:
                path.unlink()
            except OSError:
                return
        self.quarantined += 1
