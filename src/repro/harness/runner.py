"""Simulation driver: couples workload, machine, hierarchy, Trident.

:class:`Simulation` assembles one run — a workload executing on the SMT
core over the cache hierarchy, with the hardware stream buffers and/or the
Trident runtime attached according to the
:class:`~repro.config.PrefetchPolicy` — and produces a
:class:`SimulationResult` holding every statistic the paper's figures
need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from ..config import (
    MachineConfig,
    PrefetchPolicy,
    SimulationConfig,
    TridentConfig,
)
from ..cpu.core import CoreStats, SMTCore
from ..errors import ConfigError
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..faults.watchdog import Watchdog
from ..hwprefetch.stream_buffer import StreamBufferPrefetcher
from ..logutil import get_logger
from ..memory.hierarchy import MemoryHierarchy
from ..memory.stats import MemoryStats
from ..obs import Observer
from ..trident.runtime import TridentRuntime
from ..workloads.base import Workload
from ..workloads.registry import BENCHMARK_NAMES, load_workload

_log = get_logger("harness")

#: Chunk stride while a checkpoint capture is waiting for a quiescent
#: point — small enough to catch a helper job finishing promptly, large
#: enough that the extra chunk-boundary bookkeeping stays negligible.
_CKPT_RETRY_STEP = 512


class _ReplaySample:
    """Stand-in for :class:`~repro.obs.sampling.Sample` on cache replay.

    ``Sample.to_dict`` emits *derived* ratios (ipc, miss_rate) alongside
    raw window deltas; reconstructing a real ``Sample`` from those would
    re-derive the ratios through float division and risk a last-ulp
    mismatch.  The replay sample just holds the stored mapping, so a
    replayed result's ``to_dict`` is byte-identical to the original's.
    """

    __slots__ = ("_data",)

    def __init__(self, data: Dict) -> None:
        self._data = dict(data)

    def __getattr__(self, name: str):
        try:
            return self._data[name]
        except KeyError:
            raise AttributeError(name) from None

    def to_dict(self) -> Dict:
        return dict(self._data)


@dataclass
class _ReplayCoreStats:
    """The slice of :class:`~repro.cpu.core.CoreStats` a result carries."""

    branch_mispredicts: int = 0
    loads_executed: int = 0
    misses_total: int = 0
    miss_count_by_pc: Dict[int, int] = field(default_factory=dict)


class _ReplayMemoryStats:
    """The slice of MemoryStats a result needs: the Figure-6 breakdown."""

    __slots__ = ("_breakdown",)

    def __init__(self, breakdown: Dict[str, float]) -> None:
        self._breakdown = dict(breakdown)

    def breakdown(self) -> Dict[str, float]:
        return dict(self._breakdown)


@dataclass
class SimulationResult:
    """Everything measured in one run."""

    workload: str
    policy: PrefetchPolicy
    instructions: int
    cycles: float
    core: CoreStats
    memory: MemoryStats
    #: Helper-thread activity as a fraction of total cycles (Figure 3).
    helper_active_fraction: float = 0.0
    helper_jobs: Dict[str, int] = field(default_factory=dict)
    traces_formed: int = 0
    traces_linked: int = 0
    dlt_events: int = 0
    prefetches_inserted: int = 0
    pointer_prefetches_inserted: int = 0
    repairs_applied: int = 0
    loads_matured: int = 0
    #: Fault-injection record (empty without a fault plan): events applied
    #: and the injector's chronological log.
    faults_applied: int = 0
    fault_log: tuple = ()
    #: Fraction of all demand-load misses that occurred inside hot traces
    #: and fraction attributable to prefetch-targeted loads (Figure 4).
    miss_trace_coverage: float = 0.0
    miss_prefetch_coverage: float = 0.0
    #: Load PCs that appeared in linked traces / got prefetches inserted.
    trace_load_pcs: frozenset = frozenset()
    targeted_load_pcs: frozenset = frozenset()
    #: Windowed time series (empty unless an observer with a sample
    #: interval was attached): tuple of repro.obs.sampling.Sample.
    samples: tuple = ()

    def miss_profile(self) -> Dict[int, int]:
        """Per-PC demand-miss counts from this run (Figure 4 input)."""
        return dict(self.core.miss_count_by_pc)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """This run's speedup relative to ``baseline`` (same workload)."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc

    def breakdown(self) -> Dict[str, float]:
        """Figure-6 load-outcome fractions."""
        return self.memory.breakdown()

    def to_dict(self) -> Dict:
        """JSON-serialisable summary (for tooling and the CLI)."""
        return {
            "workload": self.workload,
            "policy": self.policy.value,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "breakdown": self.breakdown(),
            "traces_formed": self.traces_formed,
            "traces_linked": self.traces_linked,
            "dlt_events": self.dlt_events,
            "prefetches_inserted": self.prefetches_inserted,
            "pointer_prefetches_inserted": self.pointer_prefetches_inserted,
            "repairs_applied": self.repairs_applied,
            "loads_matured": self.loads_matured,
            "helper_active_fraction": self.helper_active_fraction,
            "helper_jobs": dict(self.helper_jobs),
            "miss_trace_coverage": self.miss_trace_coverage,
            "miss_prefetch_coverage": self.miss_prefetch_coverage,
            "branch_mispredicts": self.core.branch_mispredicts,
            "loads_executed": self.core.loads_executed,
            "misses_total": self.core.misses_total,
            "faults_applied": self.faults_applied,
            "fault_log": [dict(entry) for entry in self.fault_log],
            "samples": [sample.to_dict() for sample in self.samples],
            # Cache-replay payload (JSON object keys must be strings, so
            # PCs are stringified; sorted for stable serialisation).
            "miss_by_pc": {
                str(pc): self.core.miss_count_by_pc[pc]
                for pc in sorted(self.core.miss_count_by_pc)
            },
            "trace_load_pcs": sorted(self.trace_load_pcs),
            "targeted_load_pcs": sorted(self.targeted_load_pcs),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output (cache replay).

        The replayed result supports everything the experiment harness
        uses — ``ipc``, ``speedup_over``, ``breakdown``, ``miss_profile``,
        the coverage fields, ``samples`` — and its own :meth:`to_dict`
        round-trips byte-identically (the differential test suite holds
        the engine to that).
        """
        core = _ReplayCoreStats(
            branch_mispredicts=data["branch_mispredicts"],
            loads_executed=data["loads_executed"],
            misses_total=data["misses_total"],
            miss_count_by_pc={
                int(pc): count
                for pc, count in data.get("miss_by_pc", {}).items()
            },
        )
        return cls(
            workload=data["workload"],
            policy=PrefetchPolicy(data["policy"]),
            instructions=data["instructions"],
            cycles=data["cycles"],
            core=core,
            memory=_ReplayMemoryStats(data["breakdown"]),
            helper_active_fraction=data["helper_active_fraction"],
            helper_jobs=dict(data["helper_jobs"]),
            traces_formed=data["traces_formed"],
            traces_linked=data["traces_linked"],
            dlt_events=data["dlt_events"],
            prefetches_inserted=data["prefetches_inserted"],
            pointer_prefetches_inserted=data["pointer_prefetches_inserted"],
            repairs_applied=data["repairs_applied"],
            loads_matured=data["loads_matured"],
            faults_applied=data["faults_applied"],
            fault_log=tuple(dict(entry) for entry in data["fault_log"]),
            miss_trace_coverage=data["miss_trace_coverage"],
            miss_prefetch_coverage=data["miss_prefetch_coverage"],
            trace_load_pcs=frozenset(data.get("trace_load_pcs", ())),
            targeted_load_pcs=frozenset(data.get("targeted_load_pcs", ())),
            samples=tuple(
                _ReplaySample(sample) for sample in data["samples"]
            ),
        )


class Simulation:
    """One configured run of one workload."""

    def __init__(
        self,
        workload: Union[str, Workload],
        config: Optional[SimulationConfig] = None,
        initial_distance_mode: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        self.config = config or SimulationConfig()
        if isinstance(workload, str):
            try:
                workload = load_workload(workload, seed=self.config.seed)
            except KeyError:
                raise ConfigError(
                    f"unknown workload {workload!r}; known: "
                    + ", ".join(BENCHMARK_NAMES)
                ) from None
        elif not isinstance(workload, Workload):
            raise ConfigError(
                f"workload must be a name or a Workload, got {workload!r}"
            )
        self.workload = workload

        machine = self.config.machine
        policy = self.config.policy

        self.hierarchy = MemoryHierarchy(machine)
        if policy.hardware_prefetching:
            if self.config.hw_prefetcher is not None:
                # A zoo policy replaces the stock stream buffers as the
                # hierarchy's hardware prefetcher (same hook, so the
                # fast/slow and resume/cold equivalences carry over).
                from ..hwprefetch.zoo import build_prefetcher

                self.hierarchy.stream_prefetcher = build_prefetcher(
                    self.config.hw_prefetcher, machine, self.hierarchy
                )
            else:
                self.hierarchy.stream_prefetcher = StreamBufferPrefetcher(
                    machine.stream_buffers,
                    self.hierarchy,
                    line_size=machine.line_size,
                )

        self.runtime: Optional[TridentRuntime] = None
        if policy.software_prefetching:
            self.runtime = TridentRuntime(
                program=workload.program,
                machine=machine,
                trident=self.config.trident,
                policy=policy,
                overhead_only=self.config.overhead_only,
                initial_distance_mode=initial_distance_mode,
            )

        self.core = SMTCore(
            program=workload.program,
            memory=workload.memory,
            hierarchy=self.hierarchy,
            config=machine,
            runtime=self.runtime,
            fast=self.config.fast,
        )

        # Resilience layer: commit-stall detection is always armed (it is
        # nearly free and only pathological runs ever trip it); cycle and
        # wall-time ceilings come from the config.  A fault plan arms the
        # injector against this run's components.
        self.watchdog = Watchdog(
            max_cycles=self.config.max_cycles,
            wall_time_limit=self.config.wall_time_limit,
        )
        self.core.watchdog = self.watchdog
        self.injector: Optional[FaultInjector] = None
        if fault_plan is not None:
            if not isinstance(fault_plan, FaultPlan):
                raise ConfigError(
                    f"fault_plan must be a FaultPlan, got {fault_plan!r}"
                )
            self.injector = FaultInjector(
                fault_plan, hierarchy=self.hierarchy, runtime=self.runtime
            )
            self.core.injector = self.injector

        # Observability: one attach call wires every component's emit
        # hooks.  Without an observer every hook stays None and the hot
        # paths pay a single attribute check.
        self.observer = observer
        if observer is not None:
            if not isinstance(observer, Observer):
                raise ConfigError(
                    f"observer must be a repro.obs.Observer, got {observer!r}"
                )
            self.hierarchy.attach_observer(observer)
            self.core.obs = observer
            if self.runtime is not None:
                self.runtime.attach_observer(observer)
            if self.injector is not None:
                self.injector.obs = observer

        # Checkpointing (repro.checkpoint).  ``checkpoint_sink`` is a
        # callable given this Simulation at capture-eligible chunk
        # boundaries — the end of the run, plus every
        # ``config.checkpoint_every`` committed instructions — returning
        # True when it stored a snapshot.  It is attached by the engine
        # or CLI *after* construction and is never part of simulated
        # state (a snapshot carries it as None).
        self.checkpoint_sink = None
        self.checkpoints_captured = 0
        # Measurement-start coordinates and the sampler boundary are
        # instance state (not ``run()`` locals) so a snapshot carries
        # them and ``resume()`` continues mid-stream.  The capture
        # schedule (cadence mark, final-call mark, sticky due flag) is
        # per-run-segment and recomputed by ``_complete``.
        self._measure_start = (0, 0.0)
        self._next_sample_at: Optional[int] = None
        self._next_ckpt_at: Optional[int] = None
        self._final_call_at: Optional[int] = None
        self._ckpt_due = False

    def __getstate__(self):
        """Snapshots never carry the sink (it closes over the store and
        is re-attached — or not — by whoever restores the snapshot), and
        the per-segment capture schedule is normalised away: it depends
        on this run's budget and cadence, not on simulated state, and is
        recomputed by ``_complete``.  Normalising keeps capture →
        restore → capture byte-identical and lets two runs with
        different budgets produce the same snapshot bytes at the same
        committed count."""
        state = dict(self.__dict__)
        state["checkpoint_sink"] = None
        state["checkpoints_captured"] = 0
        state["_next_ckpt_at"] = None
        state["_final_call_at"] = None
        state["_ckpt_due"] = False
        if state["config"].checkpoint_every is not None:
            state["config"] = state["config"].replace(checkpoint_every=None)
        return state

    def _cumulative_counters(self) -> Dict[str, float]:
        """Cumulative counter readings for the interval sampler."""
        committed, cycles = self.core.snapshot()
        runtime = self.runtime
        return {
            "instructions": committed,
            "cycles": cycles,
            "loads": self.core.stats.loads_executed,
            "misses": self.core.stats.misses_total,
            "total_load_latency": self.hierarchy.stats.total_load_latency,
            "repairs": (
                runtime.optimizer.stats.repairs_applied if runtime else 0
            ),
            "dl_events": runtime.dlt.events_fired if runtime else 0,
        }

    def _record_sample(self) -> None:
        """Close the current sampler window and advance the boundary."""
        obs = self.observer
        sample = obs.sampler.record(**self._cumulative_counters())
        obs.emit(
            "sample",
            sample.end_cycle,
            index=sample.index,
            ipc=sample.ipc,
            miss_rate=sample.miss_rate,
            avg_access_latency=sample.avg_access_latency,
            repairs=sample.repairs,
            dl_events=sample.dl_events,
        )
        self._next_sample_at = (
            self.core.stats.committed + obs.sampler.interval
        )

    def _maybe_checkpoint(self, committed: int, target: int) -> None:
        """Offer the sink a capture at an eligible chunk boundary.

        Eligible points: every ``checkpoint_every`` committed
        instructions (when configured), the final-call mark shortly
        before the end, and the end of the run (or a halt).  A capture
        can fail benignly — the helper thread may have an optimization
        job in flight, which cannot be snapshotted — so a due capture
        stays *due* until one succeeds; the chunk loop shortens its
        strides while a capture is pending so the next quiescent point
        is found within a few hundred instructions.  The final-call
        mark exists because the exact end of a run is not reliably
        quiescent: a capture slightly early still lets a longer run
        skip almost the whole prefix.
        """
        at_end = committed >= target or self.core.ctx.halted
        boundary = self._next_ckpt_at
        if boundary is not None and committed >= boundary:
            self._ckpt_due = True
            every = self.config.checkpoint_every
            while boundary <= committed:
                boundary += every
            self._next_ckpt_at = boundary
        final_call = self._final_call_at
        if final_call is not None and committed >= final_call:
            self._ckpt_due = True
            self._final_call_at = None
        if at_end:
            self._ckpt_due = True
        if self._ckpt_due and self.checkpoint_sink(self):
            self.checkpoints_captured += 1
            self._ckpt_due = False
        if at_end:
            # Nothing runs after the end; a still-pending capture is a
            # miss, not a carry-over into some later resume segment.
            self._ckpt_due = False

    def _run_measured(self, target: int) -> None:
        """Run the core to ``target`` committed instructions, closing a
        sampler window every ``interval`` instructions and offering the
        checkpoint sink captures at chunk boundaries.

        Chunked ``SMTCore.run`` calls are bit-identical to one call (the
        resilience experiment has always relied on this), so sampling
        and checkpointing change only when we *look*, never what
        happens.  One capture-ordering rule keeps snapshots
        prefix-exact when a sampler is attached: a snapshot must equal
        the state a longer cold run has at the same committed count.
        At a window boundary (or a halt) the longer run records the
        same sample, so capture follows the record; at an unaligned
        end-of-run the longer run records nothing, so capture precedes
        the tail record.
        """
        core = self.core
        obs = self.observer
        sampler = obs.sampler if obs is not None else None
        sink = self.checkpoint_sink
        if sampler is None and sink is None:
            core.run(target)
            return
        interval = sampler.interval if sampler is not None else None
        while not core.ctx.halted and core.stats.committed < target:
            stop = target
            if interval is not None and self._next_sample_at < stop:
                stop = self._next_sample_at
            if sink is not None:
                if self._ckpt_due:
                    # A capture is pending a quiescent point: short
                    # strides until one is found.
                    stop = min(
                        stop,
                        core.stats.committed + _CKPT_RETRY_STEP,
                    )
                else:
                    if (
                        self._next_ckpt_at is not None
                        and self._next_ckpt_at < stop
                    ):
                        stop = self._next_ckpt_at
                    if (
                        self._final_call_at is not None
                        and self._final_call_at < stop
                    ):
                        stop = self._final_call_at
            core.run(stop, drain=False)
            committed = core.stats.committed
            shared_boundary = False
            if interval is not None:
                shared_boundary = (
                    committed >= self._next_sample_at or core.ctx.halted
                )
                if shared_boundary:
                    self._record_sample()
            if sink is not None:
                self._maybe_checkpoint(committed, target)
            if (
                interval is not None
                and not shared_boundary
                and committed >= target
            ):
                self._record_sample()
        # The one drain the chunked calls skipped (see SMTCore.run).
        self.hierarchy.drain(int(core.cycles) + 1)

    def run(self) -> SimulationResult:
        """Execute the configured instruction budget and collect results."""
        cfg = self.config
        self._measure_start = (0, 0.0)
        if cfg.warmup_instructions > 0:
            self.core.run(cfg.warmup_instructions)
            self._measure_start = self.core.snapshot()
            # Measurement counters restart after warmup; cache, DLT,
            # trace, and repair state all persist (that is the point of
            # warming up).  Every stat holder resets *in place* — the
            # components cached references to these objects at construction
            # (and attach_observer time), so reassignment would silently
            # fork the accounting.
            self.core.stats.reset_measurement()
            self.hierarchy.stats.reset_measurement()
        obs = self.observer
        if obs is not None and obs.sampler is not None:
            obs.sampler.start(**self._cumulative_counters())
            self._next_sample_at = (
                self.core.stats.committed + obs.sampler.interval
            )
        return self._complete()

    def resume(
        self, max_instructions: Optional[int] = None
    ) -> SimulationResult:
        """Continue a restored run (see :mod:`repro.checkpoint`) to its
        — optionally raised — budget and collect results.

        Warmup, sampler start, and measurement-counter resets all
        happened before the snapshot was captured and are carried by it;
        this entry point only finishes the measured segment.  By the
        chunked-run invariant the outcome is byte-identical to a cold
        run at the same final budget.
        """
        cfg = self.config
        if max_instructions is not None:
            self.config = cfg = cfg.replace(
                max_instructions=max_instructions
            )
        target = cfg.warmup_instructions + cfg.max_instructions
        if self.core.stats.committed > target:
            raise ConfigError(
                f"cannot resume to {target} total instructions: the "
                f"snapshot is already at {self.core.stats.committed}"
            )
        return self._complete()

    def _complete(self) -> SimulationResult:
        """Run the measured segment to the configured budget and build
        the result (shared by :meth:`run` and :meth:`resume`)."""
        cfg = self.config
        start_committed, start_cycles = self._measure_start
        target = cfg.warmup_instructions + cfg.max_instructions
        self._next_ckpt_at = None
        self._final_call_at = None
        self._ckpt_due = False
        if self.checkpoint_sink is not None:
            committed = self.core.stats.committed
            every = cfg.checkpoint_every
            if every:
                self._next_ckpt_at = (committed // every + 1) * every
            remaining = target - committed
            if self.injector is not None and remaining > 2 * _CKPT_RETRY_STEP:
                # Insurance for fault-plan runs only: an open fault
                # window can make the end-of-run boundary non-quiescent,
                # so arm one extra capture shortly before the target.
                # Without an injector the end boundary always captures,
                # and the margin snapshot would be pure overhead.
                margin = max(
                    _CKPT_RETRY_STEP, min(8 * _CKPT_RETRY_STEP, remaining // 8)
                )
                self._final_call_at = target - margin
        self._run_measured(target)
        committed, cycles = self.core.snapshot()
        if self.injector is not None:
            self.injector.finish(cycles)
        stats = self.core.stats

        result = SimulationResult(
            workload=self.workload.name,
            policy=cfg.policy,
            instructions=committed - start_committed,
            cycles=cycles - start_cycles,
            core=stats,
            memory=self.hierarchy.stats,
        )
        if self.injector is not None:
            result.faults_applied = self.injector.faults_applied
            result.fault_log = tuple(self.injector.log)
        if stats.misses_total:
            result.miss_trace_coverage = (
                stats.misses_in_traces / stats.misses_total
            )
        runtime = self.runtime
        if runtime is not None:
            result.helper_active_fraction = runtime.helper.active_fraction(
                cycles
            )
            result.helper_jobs = dict(runtime.helper.jobs_by_kind)
            result.traces_formed = runtime.traces_formed
            result.traces_linked = runtime.traces_linked
            result.dlt_events = runtime.dlt.events_fired
            opt = runtime.optimizer.stats
            result.prefetches_inserted = opt.prefetches_inserted
            result.pointer_prefetches_inserted = (
                opt.pointer_prefetches_inserted
            )
            result.repairs_applied = opt.repairs_applied
            result.loads_matured = opt.loads_matured
            result.trace_load_pcs = frozenset(runtime.trace_load_pcs)
            result.targeted_load_pcs = frozenset(
                runtime.prefetch_targeted_pcs()
            )
            if stats.misses_total:
                covered = sum(
                    count
                    for pc, count in stats.miss_count_by_pc.items()
                    if pc in result.targeted_load_pcs
                )
                result.miss_prefetch_coverage = (
                    covered / stats.misses_total
                )
        obs = self.observer
        if obs is not None:
            if obs.sampler is not None:
                result.samples = tuple(obs.sampler.samples)
            # Consolidate the run's headline numbers into the registry so
            # --metrics-out is one self-contained document.
            obs.metrics.set_many(
                {
                    "run.ipc": result.ipc,
                    "run.instructions": result.instructions,
                    "run.cycles": result.cycles,
                    "run.traces_linked": result.traces_linked,
                    "run.repairs_applied": result.repairs_applied,
                    "run.loads_matured": result.loads_matured,
                    "run.helper_active_fraction": (
                        result.helper_active_fraction
                    ),
                    "run.faults_applied": result.faults_applied,
                }
            )
            _log.info(
                "run complete: %s/%s ipc=%.4f events=%d (%d dropped)",
                result.workload, cfg.policy.value, result.ipc,
                obs.ring.total_emitted, obs.ring.dropped,
            )
        return result


def run_simulation(
    workload: Union[str, Workload],
    policy: Union[PrefetchPolicy, str] = PrefetchPolicy.SELF_REPAIRING,
    machine: Optional[MachineConfig] = None,
    trident: Optional[TridentConfig] = None,
    max_instructions: int = 200_000,
    warmup_instructions: int = 0,
    overhead_only: bool = False,
    seed: int = 1,
    initial_distance_mode: Optional[str] = None,
    fault_plan: Optional[FaultPlan] = None,
    max_cycles: Optional[float] = None,
    wall_time_limit: Optional[float] = None,
    observer: Optional[Observer] = None,
    sample_interval: Optional[int] = None,
    fast: bool = True,
    hw_prefetcher: Optional[str] = None,
) -> SimulationResult:
    """Convenience one-call simulation (the quickstart entry point).

    ``policy`` accepts a :class:`~repro.config.PrefetchPolicy`, its
    string value, or a hardware-prefetcher zoo name (which runs as
    ``HW_ONLY`` with that engine — see :mod:`repro.hwprefetch.zoo`).

    Pass an :class:`~repro.obs.Observer` to collect metrics and trace
    events, or just ``sample_interval`` to get windowed IPC samples with
    a default observer.

    Raises :class:`~repro.errors.ConfigError` on invalid inputs and
    :class:`~repro.errors.SimulationStallError` when a watchdog budget
    (``max_cycles`` / ``wall_time_limit``) is exhausted mid-run.
    """
    from ..hwprefetch.zoo import resolve_policy

    policy, zoo_name = resolve_policy(policy)
    if zoo_name is not None:
        if hw_prefetcher is not None and hw_prefetcher != zoo_name:
            raise ConfigError(
                f"policy {zoo_name!r} conflicts with "
                f"hw_prefetcher={hw_prefetcher!r}"
            )
        hw_prefetcher = zoo_name
    if observer is None and sample_interval is not None:
        observer = Observer(sample_interval=sample_interval)
    config = SimulationConfig(
        machine=machine or MachineConfig(),
        trident=trident or TridentConfig(),
        policy=policy,
        max_instructions=max_instructions,
        warmup_instructions=warmup_instructions,
        overhead_only=overhead_only,
        seed=seed,
        max_cycles=max_cycles,
        wall_time_limit=wall_time_limit,
        fast=fast,
        hw_prefetcher=hw_prefetcher,
    )
    return Simulation(
        workload,
        config,
        initial_distance_mode=initial_distance_mode,
        fault_plan=fault_plan,
        observer=observer,
    ).run()
