"""Durable job journal: an append-only, checksummed write-ahead log of
fleet state.

Every state transition of every job in a sweep — submit, start, done,
failed, reclaimed, quarantined, cached — is one JSONL record appended to
``<dir>/journal.jsonl`` and fsynced before the engine moves on.  A
killed process, a SIGINT mid-sweep, or a torn write therefore never
loses *accounting*: :meth:`JobJournal.recover` replays the log —
skipping any record whose checksum does not verify, which is exactly
what a torn tail or a flipped bit looks like — and reconstructs the
per-job state machine, so ``repro resume-sweep`` can re-dispatch only
the work that never finished.

Design points, in the spirit of the paper's cheap-common-case rule:

* **Append-only.**  A record is one line; the only mutation the happy
  path ever performs is ``write + flush + fsync``.  No index, no seek,
  no in-place update to corrupt.
* **Self-verifying records.**  Each record carries ``sum``, a truncated
  SHA-256 over the canonical JSON of the rest of the record.  Recovery
  treats a line that fails to parse *or* to verify as absent — torn
  writes tear exactly one record, never the log.
* **Atomic rotation.**  :meth:`rotate` compacts history into one
  submit-plus-terminal-event pair per job, written to a temp file,
  fsynced, then ``os.replace``d over the live log — crash-safe at every
  instant.
* **Non-fatal by construction.**  Once open, append failures degrade to
  a disabled journal (logged) rather than failing the sweep; the journal
  observes the fleet, it must never kill it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import JournalError
from ..logutil import get_logger

_log = get_logger("journal")

#: Bumped when the record layout changes; old-version records are
#: skipped by recovery rather than misread.
FORMAT_VERSION = 1

#: The journal file name inside the journal directory.
JOURNAL_NAME = "journal.jsonl"

#: Every event recovery understands.  Unknown events are skipped (a
#: newer writer's log still recovers on an older reader).
EVENTS = (
    "sweep",        # sweep metadata (argv); not tied to a job key
    "submit",       # job entered the engine (data carries the job dict)
    "cached",       # replayed from the result cache, no simulation
    "start",        # dispatched to a worker
    "done",         # result committed
    "failed",       # job-level error record (worker survived)
    "reclaimed",    # worker died or lease expired; job requeued
    "quarantined",  # poisoned after repeated strikes; removed from play
    "interrupted",  # the sweep was cancelled (SIGINT/SIGTERM)
)

#: Events that end a job's life for resume purposes.
_TERMINAL = {"done", "failed", "quarantined", "cached"}


def _checksum(record: Dict) -> str:
    canonical = json.dumps(
        record, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass
class JobRecord:
    """The recovered state of one journaled job."""

    key: str
    state: str = "submitted"
    #: The ``SimJob.to_dict()`` payload from the submit record, if any —
    #: what ``resume-sweep`` rebuilds the job from.
    job: Optional[Dict] = None
    #: Times the job was reclaimed from a dead or expired worker.
    strikes: int = 0
    error: Optional[Dict] = None
    elapsed_s: float = 0.0

    @property
    def finished(self) -> bool:
        return self.state in ("done", "quarantined", "failed")


@dataclass
class JournalState:
    """What :meth:`JobJournal.recover` reconstructs from the log."""

    #: Per-key job records, in first-submit order.
    jobs: Dict[str, JobRecord] = field(default_factory=dict)
    #: The last ``sweep`` metadata record (argv of the original run).
    sweep: Optional[Dict] = None
    #: Highest sequence number seen (appends continue after it).
    last_seq: int = 0
    #: Records that parsed and verified.
    records: int = 0
    #: Lines dropped by the parse/checksum gate (torn or corrupt).
    skipped: int = 0
    #: Byte offset (into the journal file) of the first dropped line —
    #: where to look when diagnosing a torn or corrupted log.
    first_skipped_offset: Optional[int] = None
    interrupted: bool = False

    def unfinished(self) -> List[JobRecord]:
        """Jobs with no terminal event — what a resume re-dispatches."""
        return [r for r in self.jobs.values() if not r.finished]


class JobJournal:
    """Append-only checksummed journal under one directory.

    ``fsync=False`` trades durability for speed (tests, tmpfs); the
    default journals every transition through to the platform's disk
    before the engine proceeds.
    """

    def __init__(self, root: os.PathLike, fsync: bool = True) -> None:
        self.root = pathlib.Path(root)
        self.path = self.root / JOURNAL_NAME
        self.fsync = fsync
        self.disabled = False
        self.appended = 0
        self._seq = 0
        self._handle = None
        #: Chaos/test seam: a callable applied to each serialised line
        #: (checksum included) just before it is written.  The chaos
        #: harness uses it to tear a record mid-write.
        self.write_filter: Optional[Callable[[str], str]] = None
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise JournalError(
                f"cannot create journal directory {self.root}: {exc}"
            ) from None
        if self.path.exists():
            self._seq = self.recover().last_seq

    # ------------------------------------------------------------------
    # Append path.
    # ------------------------------------------------------------------
    def _open(self):
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(
        self, event: str, key: Optional[str] = None, **data
    ) -> Optional[int]:
        """Append one fsynced record; returns its sequence number.

        A journal that hits an I/O error disables itself (the sweep
        continues unjournalled) and returns None.
        """
        if self.disabled:
            return None
        if event not in EVENTS:
            raise JournalError(f"unknown journal event {event!r}")
        self._seq += 1
        record = {
            "v": FORMAT_VERSION,
            "seq": self._seq,
            "event": event,
            "key": key,
        }
        if data:
            record["data"] = data
        record["sum"] = _checksum(record)
        line = json.dumps(
            record, sort_keys=True, separators=(",", ":"), ensure_ascii=True
        )
        if self.write_filter is not None:
            line = self.write_filter(line)
        try:
            handle = self._open()
            handle.write(line + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        except OSError as exc:
            _log.warning("journal disabled after write failure: %s", exc)
            self.disabled = True
            return None
        self.appended += 1
        return self._seq

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    # ------------------------------------------------------------------
    # Recovery.
    # ------------------------------------------------------------------
    def recover(self) -> JournalState:
        """Replay the log into a :class:`JournalState`.

        Never raises on content: unparsable or checksum-failing lines
        (torn writes, bit rot) are counted in ``skipped`` and ignored, so
        a truncated log recovers to the longest verified prefix of each
        job's history.  Skips are *not* silent: a warning names the byte
        offset of the first dropped line and the counts, so a torn tail
        is diagnosable without replaying the recovery by hand.
        """
        state = JournalState()
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return state
        offset = 0
        for raw_line in raw.split(b"\n"):
            line_start = offset
            offset += len(raw_line) + 1
            if not raw_line.strip():
                continue
            try:
                record = self._verify(raw_line.decode("utf-8"))
            except UnicodeDecodeError:
                record = None
            if record is None:
                state.skipped += 1
                if state.first_skipped_offset is None:
                    state.first_skipped_offset = line_start
                continue
            state.records += 1
            state.last_seq = max(state.last_seq, record.get("seq", 0))
            self._apply(state, record)
        if state.skipped:
            _log.warning(
                "journal %s: dropped %d torn or corrupt line(s) "
                "(first at byte offset %d of %d); recovered %d "
                "verified record(s)",
                self.path,
                state.skipped,
                state.first_skipped_offset,
                len(raw),
                state.records,
            )
        return state

    @staticmethod
    def _verify(line: str) -> Optional[Dict]:
        try:
            record = json.loads(line)
        except ValueError:
            return None
        if not isinstance(record, dict) or record.get("v") != FORMAT_VERSION:
            return None
        expected = record.pop("sum", None)
        if expected != _checksum(record):
            return None
        return record

    @staticmethod
    def _apply(state: JournalState, record: Dict) -> None:
        event = record.get("event")
        data = record.get("data") or {}
        if event == "sweep":
            state.sweep = data
            return
        if event == "interrupted":
            state.interrupted = True
            return
        key = record.get("key")
        if not isinstance(key, str) or event not in EVENTS:
            return
        job = state.jobs.get(key)
        if job is None:
            job = state.jobs[key] = JobRecord(key=key)
        if event == "submit":
            if isinstance(data.get("job"), dict):
                job.job = data["job"]
            if job.state != "done":
                job.state = "submitted"
        elif event == "start":
            job.state = "running"
        elif event == "done":
            job.state = "done"
            job.error = None
            elapsed = data.get("elapsed_s")
            if isinstance(elapsed, (int, float)):
                job.elapsed_s = float(elapsed)
        elif event == "cached":
            job.state = "done"
            job.error = None
        elif event == "failed":
            job.state = "failed"
            job.error = data.get("error")
        elif event == "reclaimed":
            job.state = "submitted"
            job.strikes += 1
        elif event == "quarantined":
            job.state = "quarantined"
            job.error = data.get("error")

    # ------------------------------------------------------------------
    # Rotation.
    # ------------------------------------------------------------------
    def rotate(self) -> int:
        """Atomically compact the log to current state; returns records
        dropped.

        The compacted log carries, per job, one ``submit`` record (spec
        preserved) plus one terminal/last-state record — byte-for-byte a
        valid journal, so ``recover`` of the rotated log equals
        ``recover`` of the original.
        """
        state = self.recover()
        before = state.records + state.skipped
        self.close()
        tmp = self.path.with_name(
            f".{self.path.name}.rotate.{os.getpid()}"
        )
        seq = 0
        records: List[Dict] = []

        def emit(event, key=None, data=None):
            nonlocal seq
            seq += 1
            record = {
                "v": FORMAT_VERSION, "seq": seq, "event": event, "key": key,
            }
            if data:
                record["data"] = data
            record["sum"] = _checksum(record)
            records.append(record)

        if state.sweep is not None:
            emit("sweep", data=state.sweep)
        for key, job in state.jobs.items():
            emit("submit", key, {"job": job.job} if job.job else None)
            for _ in range(job.strikes):
                emit("reclaimed", key)
            if job.state == "running":
                emit("start", key)
            elif job.state == "done":
                emit("done", key, {"elapsed_s": job.elapsed_s})
            elif job.state == "failed":
                emit("failed", key, {"error": job.error})
            elif job.state == "quarantined":
                emit("quarantined", key, {"error": job.error})
        if state.interrupted:
            emit("interrupted")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(json.dumps(
                        record, sort_keys=True, separators=(",", ":"),
                        ensure_ascii=True,
                    ) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except OSError as exc:
            _log.warning("journal rotation failed: %s", exc)
            try:
                tmp.unlink()
            except OSError:
                pass
            return 0
        self._seq = seq
        return max(0, before - seq)


def job_key(spec: Dict) -> str:
    """The journal/chaos identity of a job: a stable hash of its spec.

    Deliberately excludes the code-version stamp the result cache mixes
    in — journal keys must survive a commit so chaos schedules and
    resumed sweeps stay aligned with their logs.
    """
    from .cache import stable_hash

    return stable_hash(spec)
