"""Programmatic verdicts on the paper's claims.

Each :class:`Claim` names a quantitative statement from the paper's
evaluation and a predicate over this reproduction's experiment results.
``evaluate_claims`` runs the necessary experiments once and grades every
claim REPRODUCED / DEVIATES, so a reader (or CI) can see at a glance where
the reproduction stands — the machine-checkable version of
EXPERIMENTS.md's summary table.

Use from the CLI::

    python -m repro claims --workloads mcf,art,swim --instructions 80000
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from . import experiments as E
from .report import render_table


@dataclass
class Claim:
    """One gradeable statement from the paper."""

    ident: str
    statement: str
    #: Receives the experiment-result cache; returns (ok, detail).
    check: Callable[[Dict], tuple]


@dataclass
class Verdict:
    claim: Claim
    ok: bool
    detail: str


def _results(cache: Dict, key: str, factory):
    if key not in cache:
        cache[key] = factory()
    return cache[key]


# ---------------------------------------------------------------------------
# Claim predicates.
# ---------------------------------------------------------------------------
def _hw_helps(cache):
    fig2 = cache["fig2"]
    ok = fig2.mean_speedup_8x8 > 1.0 and fig2.mean_speedup_4x4 > 1.0
    return ok, (
        f"4x4 {fig2.mean_speedup_4x4:.2f}x, 8x8 {fig2.mean_speedup_8x8:.2f}x"
    )


def _overhead_tiny(cache):
    fig3 = cache["fig3"]
    ok = fig3.mean_overhead < 0.02
    return ok, f"overhead-only slowdown {fig3.mean_overhead:.2%}"


def _coverage_high(cache):
    fig4 = cache["fig4"]
    ok = fig4.mean_trace_coverage > 0.6
    return ok, (
        f"{fig4.mean_trace_coverage:.0%} of misses in traces, "
        f"{fig4.mean_prefetch_coverage:.0%} prefetchable"
    )


def _repair_beats_basic(cache):
    fig5 = cache["fig5"]
    basic = fig5.mean_speedup("basic")
    repaired = fig5.mean_speedup("self_repairing")
    ok = repaired > basic and repaired > 1.03
    return ok, f"basic {basic:.3f}x vs self-repairing {repaired:.3f}x"


def _ordering_holds(cache):
    fig5 = cache["fig5"]
    basic = fig5.mean_speedup("basic")
    whole = fig5.mean_speedup("whole_object")
    repaired = fig5.mean_speedup("self_repairing")
    ok = basic <= whole * 1.02 and whole <= repaired * 1.02
    return ok, f"{basic:.3f} <= {whole:.3f} <= {repaired:.3f}"


def _prefetch_caused_misses_rare(cache):
    fig6 = cache["fig6"]
    worst = max(r["miss_due_to_prefetch"] for r in fig6.rows)
    mean = sum(r["miss_due_to_prefetch"] for r in fig6.rows) / len(fig6.rows)
    ok = mean < 0.05
    return ok, f"mean {mean:.2%}, worst {worst:.2%}"


def _combined_best(cache):
    fig9 = cache["fig9"]
    hw = fig9.mean_speedup("hw_only")
    combined = fig9.mean_speedup("combined")
    ok = combined >= hw
    return ok, f"HW {hw:.2f}x, combined {combined:.2f}x"


def _sw_competitive(cache):
    fig9 = cache["fig9"]
    hw = fig9.mean_speedup("hw_only")
    sw = fig9.mean_speedup("sw_only")
    ok = sw >= hw * 0.9
    return ok, f"SW-only {sw:.2f}x vs HW-only {hw:.2f}x"


def _software_outranks_zoo(cache):
    """The adaptivity claim, stress-tested: the self-repairing software
    prefetcher must outrank every *adaptive hardware* engine in the zoo,
    not just the paper's static stream-buffer baseline."""
    from ..hwprefetch.zoo import zoo_names

    tournament = cache["tournament"]
    by_policy = {
        e["policy"]: e["mean_speedup"] for e in tournament.ranking
    }
    repaired = by_policy["self_repairing"]
    zoo = {name: by_policy[name] for name in zoo_names() if name in by_policy}
    if not zoo:
        return False, "no zoo contenders ranked"
    best_name = max(zoo, key=lambda n: zoo[n])
    ok = all(repaired > speedup for speedup in zoo.values())
    return ok, (
        f"self_repairing {repaired:.3f}x vs best zoo engine "
        f"{best_name} {zoo[best_name]:.3f}x"
    )


def _tournament_complete(cache):
    """Structural claim on the harness itself: every contender produced
    a result on every workload and the ranking covers all of them."""
    tournament = cache["tournament"]
    contenders = set(tournament.contenders)
    complete = all(
        set(row["speedup"]) == contenders for row in tournament.rows
    )
    ranked = {entry["policy"] for entry in tournament.ranking}
    ok = bool(tournament.rows) and complete and ranked == contenders
    return ok, (
        f"{len(tournament.rows)} workloads x {len(contenders)} "
        f"contenders, {len(tournament.errors)} errors"
    )


CLAIMS: List[Claim] = [
    Claim(
        "fig2-hw-baseline",
        "Hardware stream buffers speed up the no-prefetch baseline",
        _hw_helps,
    ),
    Claim(
        "s5.1-overhead",
        "Running the optimizer without linking traces is nearly free "
        "(paper: 0.6%)",
        _overhead_tiny,
    ),
    Claim(
        "fig4-coverage",
        "Most load misses occur inside hot traces (paper: >85%)",
        _coverage_high,
    ),
    Claim(
        "fig5-headline",
        "Self-repairing beats non-adaptive software prefetching "
        "(paper: +23% vs +11%)",
        _repair_beats_basic,
    ),
    Claim(
        "fig5-ordering",
        "basic <= whole-object <= self-repairing on average",
        _ordering_holds,
    ),
    Claim(
        "fig6-displacement",
        "Misses caused by prefetch displacement are rare",
        _prefetch_caused_misses_rare,
    ),
    Claim(
        "fig9-combined",
        "Software + hardware prefetching combined is at least as good "
        "as hardware alone",
        _combined_best,
    ),
    Claim(
        "fig9-sw-competitive",
        "Software-only prefetching is competitive with the 8x8 buffers "
        "(paper: +11% better)",
        _sw_competitive,
    ),
    Claim(
        "tournament-sw-adaptivity",
        "Self-repairing software prefetching outranks every adaptive "
        "hardware engine in the zoo",
        _software_outranks_zoo,
    ),
    Claim(
        "tournament-complete",
        "The policy tournament ranks every contender on every workload",
        _tournament_complete,
    ),
]


def evaluate_claims(
    workloads: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
    engine=None,
    fast: bool = True,
) -> List[Verdict]:
    """Run the experiments each claim needs and grade all claims.

    An :class:`~repro.harness.engine.ExperimentEngine` may be passed so
    the figures share one cache/worker pool; figures that repeat a
    baseline (fig2's HW runs, fig9's) then cost one simulation total.
    """
    kwargs = dict(
        workloads=workloads, max_instructions=max_instructions,
        warmup=warmup, engine=engine, fast=fast,
    )
    cache: Dict = {
        "fig2": E.fig2_hw_baseline(**kwargs),
        "fig3": E.fig3_overhead(**kwargs),
        "fig4": E.fig4_coverage(**kwargs),
        "fig5": E.fig5_policies(**kwargs),
        "fig6": E.fig6_breakdown(**kwargs),
        "fig9": E.fig9_sw_vs_hw(**kwargs),
        "tournament": E.tournament(**kwargs),
    }
    verdicts = []
    for claim in CLAIMS:
        ok, detail = claim.check(cache)
        verdicts.append(Verdict(claim=claim, ok=ok, detail=detail))
    return verdicts


def render_verdicts(verdicts: Sequence[Verdict]) -> str:
    rows = [
        (
            v.claim.ident,
            "REPRODUCED" if v.ok else "DEVIATES",
            v.detail,
        )
        for v in verdicts
    ]
    passed = sum(1 for v in verdicts if v.ok)
    table = render_table(
        ["claim", "verdict", "measured"],
        rows,
        title=f"Paper claims: {passed}/{len(verdicts)} reproduced",
    )
    return table
