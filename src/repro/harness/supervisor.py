"""Supervised worker fleet: heartbeats, wall-time leases, and
lease-expiry reclamation over per-chain worker processes.

The plain pool path (:meth:`ExperimentEngine._run_pool`) is fine when
workers are well behaved: a ``ProcessPoolExecutor`` fans chains out and
the only failure it must survive is a broken pool.  The supervisor is
the path for a *hostile* world — the one the chaos harness creates on
purpose — where a worker can be SIGKILLed mid-job, hang forever, or die
silently between jobs of a chain:

* each dispatch is its **own process** holding one chain of same-prefix
  jobs, reporting per-job results over a pipe as they complete, so a
  crash after job k of n loses at most job k+1's attempt (k results are
  already committed parent-side);
* a daemon thread in the worker sends **heartbeats**; the parent tracks
  liveness and exposes it as fleet-health gauges;
* every job runs under a **wall-time lease**.  A worker that holds a
  job past its lease is presumed hung: the supervisor SIGKILLs it,
  revokes the lease, and *reclaims* the job;
* reclaimed jobs re-dispatch under a structured :class:`RetryPolicy`
  (exponential backoff with seeded jitter).  A job that takes down
  ``max_attempts`` workers in a row is **poison**: it is quarantined
  with a :class:`~repro.errors.PoisonJobError` record instead of
  wedging the sweep.

The no-failure path pays almost nothing: one fork per chain, one pipe
message per job, one clock comparison per poll tick — the simulation
itself dwarfs all of it (the "Helper Without Threads" rule: recovery
machinery must be cheap when nothing needs recovering).
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from multiprocessing import get_context
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import (
    LeaseExpiredError,
    PoisonJobError,
    WorkerCrashError,
)
from ..logutil import get_logger

_log = get_logger("supervisor")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter for reclaimed jobs."""

    #: Total dispatch attempts per job before quarantine.
    max_attempts: int = 3
    backoff_base_s: float = 0.1
    backoff_factor: float = 2.0
    #: Jitter as a +/- fraction of the backoff (decorrelates a herd of
    #: reclaimed jobs re-dispatching together).
    jitter: float = 0.25

    def delay(self, attempt: int, key: str) -> float:
        """Seconds to wait before dispatch attempt ``attempt`` (1-based
        retry count); seeded per key so schedules are reproducible."""
        import hashlib
        import random

        base = self.backoff_base_s * (
            self.backoff_factor ** max(0, attempt - 1)
        )
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
        rng = random.Random(int.from_bytes(digest[:8], "big"))
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


def _child_main(
    send,
    jobs,
    ckpt_root: Optional[str],
    resume_ok: bool,
    tokens: Sequence[Optional[str]],
    heartbeat_s: float,
    hang_s: float,
    sweep_id: Optional[str] = None,
    trace: Optional[Sequence] = None,
) -> None:
    """Worker entry: run a chain, streaming per-job outcomes.

    ``tokens`` is the chaos verdict per job ("pre"/"post" kill, "hang",
    or None); in production runs it is all None.  The heartbeat thread
    is a daemon so a hung main thread still beats — liveness and
    progress are deliberately separate signals (leases own progress).

    With a ``sweep_id`` (telemetry on) every span and interval-sampler
    window is streamed over the pipe as a ``("tele", None, dict)``
    message *as it happens*, so a SIGKILL mid-job — the chaos harness's
    favourite move — cannot lose the telemetry of work already done.
    ``trace`` carries one ``(job_key, attempt)`` pair per job.
    """
    from .engine import _worker

    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_s):
            try:
                send.send(("beat", None, None))
            except OSError:
                return

    recorder = None
    contexts: List = [None] * len(jobs)
    if sweep_id is not None:
        from ..obs.spans import SpanRecorder, TraceContext

        def sink(record, _send=send):
            _send.send(("tele", None, record))

        recorder = SpanRecorder(
            TraceContext(sweep_id), role="worker", sink=sink
        )
        contexts = [
            TraceContext(sweep_id, key, attempt)
            for key, attempt in (trace or [])
        ]
        while len(contexts) < len(jobs):
            contexts.append(TraceContext(sweep_id))

    threading.Thread(target=beat, daemon=True).start()
    try:
        for position, (job, token) in enumerate(zip(jobs, tokens)):
            if token == "pre":
                os.kill(os.getpid(), signal.SIGKILL)
            if token == "hang":
                time.sleep(hang_s)
            outcome = _worker(
                job, ckpt_root, resume_ok, recorder, contexts[position]
            )
            if token == "post":
                os.kill(os.getpid(), signal.SIGKILL)
            send.send(("done", position, outcome))
        send.send(("exit", None, None))
    except (BrokenPipeError, OSError):
        pass  # parent went away; nothing left to report to
    finally:
        stop.set()
        send.close()


@dataclass
class _Handle:
    """Parent-side state of one live worker process."""

    unit_id: int
    proc: object
    conn: object
    #: Index into the unit's job list of the first job this dispatch
    #: covers (earlier jobs already have outcomes).
    base: int
    lease_deadline: float
    last_beat: float
    finished: bool = False


@dataclass
class _Unit:
    """One chain of jobs moving through the supervisor."""

    jobs: List
    keys: List[str]
    outcomes: List
    next_index: int = 0
    attempts: Dict[int, int] = field(default_factory=dict)
    ready_at: float = 0.0

    @property
    def done(self) -> bool:
        return self.next_index >= len(self.jobs)


class WorkerSupervisor:
    """Dispatch chains of jobs to supervised worker processes.

    Counters are cumulative over the supervisor's life so an engine can
    report fleet health across several ``run()`` calls.
    """

    def __init__(
        self,
        workers: int = 1,
        lease_s: float = 300.0,
        heartbeat_s: float = 1.0,
        retry: Optional[RetryPolicy] = None,
        journal=None,
        metrics=None,
        clock: Callable[[], float] = time.monotonic,
        telemetry=None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.lease_s = float(lease_s)
        self.heartbeat_s = float(heartbeat_s)
        self.retry = retry or RetryPolicy()
        self.journal = journal
        self.metrics = metrics
        #: Fleet TelemetryHub (or None): workers stream spans/samples
        #: over their result pipe; the drain loop feeds them to the hub.
        self.telemetry = telemetry
        self._clock = clock
        self._ctx = get_context()
        self._active: Dict[int, _Handle] = {}
        # Fleet-health counters (mirrored into obs gauges).
        self.reclaimed = 0
        self.lease_expiries = 0
        self.crashes = 0
        self.retries = 0
        self.quarantined = 0
        self.heartbeats = 0
        self.dispatches = 0

    # ------------------------------------------------------------------
    def execute(
        self,
        units: Sequence[Sequence],
        keys: Sequence[Sequence[str]],
        ckpt_root: Optional[str],
        resume_ok: bool,
        chaos=None,
        on_outcome: Optional[Callable[[int, int, object], None]] = None,
    ) -> List[List[object]]:
        """Run every chain; returns per-unit outcome lists (unit order).

        ``on_outcome(unit_id, position, outcome)`` fires the moment a
        job's result crosses the pipe — before any other job finishes —
        so the caller can commit partial results durably (the property
        SIGINT flushing and crash recovery both lean on).
        """
        states = [
            _Unit(jobs=list(jobs), keys=list(unit_keys),
                  outcomes=[None] * len(jobs))
            for jobs, unit_keys in zip(units, keys)
        ]
        queue: List[int] = list(range(len(states)))
        try:
            while queue or self._active:
                self._launch_ready(
                    states, queue, ckpt_root, resume_ok, chaos
                )
                self._poll(states, queue, on_outcome)
            return [unit.outcomes for unit in states]
        except BaseException:
            self.shutdown()
            raise
        finally:
            self._set_gauges()

    # ------------------------------------------------------------------
    def _launch_ready(
        self, states, queue, ckpt_root, resume_ok, chaos
    ) -> None:
        now = self._clock()
        ready = [u for u in queue if states[u].ready_at <= now]
        for unit_id in ready:
            if len(self._active) >= self.workers:
                break
            queue.remove(unit_id)
            unit = states[unit_id]
            if unit.done:
                continue
            jobs = unit.jobs[unit.next_index:]
            tokens: List[Optional[str]] = []
            trace: List = []
            for offset, _job in enumerate(jobs):
                position = unit.next_index + offset
                attempt = unit.attempts.get(position, 0)
                decision = (
                    chaos.decision(unit.keys[position], attempt)
                    if chaos is not None else None
                )
                tokens.append(
                    decision.token() if decision is not None else None
                )
                trace.append((unit.keys[position], attempt))
            recv, send = self._ctx.Pipe(duplex=False)
            hang_s = chaos.plan.hang_s if chaos is not None else 0.0
            sweep_id = (
                self.telemetry.sweep_id
                if self.telemetry is not None else None
            )
            proc = self._ctx.Process(
                target=_child_main,
                args=(
                    send, jobs, ckpt_root, resume_ok, tokens,
                    self.heartbeat_s, hang_s, sweep_id, trace,
                ),
                daemon=True,
            )
            proc.start()
            send.close()  # parent keeps only the receive end
            self.dispatches += 1
            now = self._clock()
            self._active[unit_id] = _Handle(
                unit_id=unit_id, proc=proc, conn=recv,
                base=unit.next_index,
                lease_deadline=now + self.lease_s, last_beat=now,
            )
            self._journal("start", unit.keys[unit.next_index])
            if self.telemetry is not None:
                self.telemetry.job_scheduled(
                    unit.keys[unit.next_index],
                    attempt=unit.attempts.get(unit.next_index, 0),
                    worker=proc.pid,
                )

    # ------------------------------------------------------------------
    def _poll(self, states, queue, on_outcome) -> None:
        if not self._active:
            # Everything pending is in backoff: sleep to the earliest.
            soonest = min(
                (states[u].ready_at for u in queue), default=None
            )
            if soonest is not None:
                delay = soonest - self._clock()
                if delay > 0:
                    time.sleep(min(delay, 0.5))
            return
        timeout = self._poll_timeout(states, queue)
        conns = [h.conn for h in self._active.values()]
        try:
            readable = mp_connection.wait(conns, timeout)
        except OSError:
            readable = []
        by_conn = {h.conn: h for h in self._active.values()}
        for conn in readable:
            handle = by_conn.get(conn)
            if handle is not None:
                self._drain(handle, states, on_outcome)
        now = self._clock()
        for handle in list(self._active.values()):
            unit = states[handle.unit_id]
            if handle.finished:
                self._retire(handle)
            elif not handle.proc.is_alive():
                # One final drain: results may have landed in the pipe
                # just before the process died.
                self._drain(handle, states, on_outcome)
                if handle.finished:
                    self._retire(handle)
                elif not unit.done:
                    self._reclaim(handle, states, queue, crashed=True)
                else:
                    self._retire(handle)
            elif now > handle.lease_deadline:
                handle.proc.kill()
                handle.proc.join()
                self._drain(handle, states, on_outcome)
                if not unit.done:
                    self._reclaim(handle, states, queue, crashed=False)
                else:
                    self._retire(handle)
        if self.metrics is not None:
            self.metrics.gauge("fleet.live_workers").set(len(self._active))
        if self.telemetry is not None:
            self.telemetry.workers_busy(len(self._active), self.workers)
            self.telemetry.maybe_flush()

    def _poll_timeout(self, states, queue) -> float:
        now = self._clock()
        horizon = now + self.heartbeat_s
        for handle in self._active.values():
            horizon = min(horizon, handle.lease_deadline)
        for unit_id in queue:
            horizon = min(horizon, states[unit_id].ready_at)
        return min(max(horizon - now, 0.01), 0.5)

    # ------------------------------------------------------------------
    def _drain(self, handle: _Handle, states, on_outcome) -> None:
        unit = states[handle.unit_id]
        while True:
            try:
                if not handle.conn.poll():
                    return
                kind, position, payload = handle.conn.recv()
            except (EOFError, OSError):
                return
            if kind == "beat":
                handle.last_beat = self._clock()
                self.heartbeats += 1
            elif kind == "tele":
                if self.telemetry is not None:
                    self.telemetry.ingest(payload)
            elif kind == "done":
                index = handle.base + position
                unit.outcomes[index] = payload
                unit.next_index = max(unit.next_index, index + 1)
                handle.lease_deadline = self._clock() + self.lease_s
                key = unit.keys[index]
                if payload is not None and payload.ok:
                    self._journal(
                        "done", key, elapsed_s=payload.elapsed_s
                    )
                else:
                    self._journal(
                        "failed", key,
                        error=None if payload is None else payload.error,
                    )
                if not unit.done:
                    self._journal("start", unit.keys[unit.next_index])
                    if self.telemetry is not None:
                        self.telemetry.job_scheduled(
                            unit.keys[unit.next_index],
                            attempt=unit.attempts.get(
                                unit.next_index, 0
                            ),
                            worker=handle.proc.pid,
                        )
                if on_outcome is not None:
                    on_outcome(handle.unit_id, index, payload)
            elif kind == "exit":
                handle.finished = True

    def _retire(self, handle: _Handle) -> None:
        self._active.pop(handle.unit_id, None)
        try:
            handle.conn.close()
        except OSError:
            pass
        handle.proc.join()

    def _reclaim(self, handle: _Handle, states, queue, crashed: bool) -> None:
        """A worker died or overstayed its lease: revoke, retry or
        quarantine, and put the chain's remainder back in play."""
        from .engine import JobOutcome, _error_record

        self._retire(handle)
        unit = states[handle.unit_id]
        position = unit.next_index
        job = unit.jobs[position]
        key = unit.keys[position]
        attempts = unit.attempts.get(position, 0) + 1
        unit.attempts[position] = attempts
        self.reclaimed += 1
        if crashed:
            self.crashes += 1
            reason: Exception = WorkerCrashError(
                f"worker for {job.workload!r} died without reporting "
                f"(attempt {attempts})"
            )
        else:
            self.lease_expiries += 1
            reason = LeaseExpiredError(
                f"worker for {job.workload!r} exceeded its "
                f"{self.lease_s:.1f}s lease (attempt {attempts}); "
                "killed and reclaimed"
            )
        _log.warning("reclaimed job %s: %s", key[:12], reason)
        self._journal(
            "reclaimed", key,
            reason=type(reason).__name__, attempts=attempts,
        )
        if self.telemetry is not None:
            self.telemetry.job_reclaimed(
                key, attempt=attempts,
                reason=type(reason).__name__,
                retrying=attempts < self.retry.max_attempts,
            )
        if attempts >= self.retry.max_attempts:
            poison = PoisonJobError(
                f"job {job.workload!r} took down "
                f"{attempts} workers; quarantined "
                f"(last strike: {reason})",
                strikes=attempts,
            )
            outcome = JobOutcome(
                error=_error_record(job, poison, retried=True)
            )
            outcome.error["strikes"] = attempts
            unit.outcomes[position] = outcome
            unit.next_index = position + 1
            self.quarantined += 1
            self._journal("quarantined", key, error=outcome.error)
            unit.ready_at = self._clock()  # rest of the chain is innocent
        else:
            self.retries += 1
            unit.ready_at = self._clock() + self.retry.delay(attempts, key)
        if not unit.done:
            queue.append(handle.unit_id)

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Kill every live worker (SIGINT/SIGTERM path) and reset."""
        for handle in list(self._active.values()):
            try:
                handle.proc.kill()
            except (OSError, ValueError):
                pass
            handle.proc.join()
            try:
                handle.conn.close()
            except OSError:
                pass
        self._active.clear()

    # ------------------------------------------------------------------
    def _journal(self, event: str, key: str, **data) -> None:
        if self.journal is not None:
            self.journal.append(event, key=key, **data)

    def _set_gauges(self) -> None:
        if self.metrics is None:
            return
        gauges = {
            "fleet.live_workers": len(self._active),
            "fleet.lease_expiries": self.lease_expiries,
            "fleet.worker_crashes": self.crashes,
            "fleet.reclaimed": self.reclaimed,
            "fleet.retries": self.retries,
            "fleet.quarantined": self.quarantined,
            "fleet.heartbeats": self.heartbeats,
            "fleet.dispatches": self.dispatches,
        }
        for name, value in gauges.items():
            self.metrics.gauge(name).set(value)
