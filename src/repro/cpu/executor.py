"""Functional execution of every opcode.

The executor changes architectural state (registers, data memory) and
reports what the timing model needs: the effective address of memory
operations and the direction of branches.  It never touches the cache
hierarchy — timing is the core's job.

Dispatch is table-driven: one module-level handler per opcode, bound
into ``_DISPATCH`` at import time, so ``execute`` pays a single dict
lookup instead of walking an ``if/elif`` chain.  The same tables back
the pre-decoded fast path (:mod:`repro.cpu.fastpath`), which resolves
the handler once per instruction instead of once per dynamic execution.

``ExecResult`` is a single mutable object reused across calls to avoid a
per-instruction allocation; callers must consume it before the next
``execute``.
"""

from __future__ import annotations

from typing import Optional

from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode
from ..isa.registers import ZERO_REGISTER
from ..memory.mainmem import DataMemory
from .context import ThreadContext


#: Integer results wrap to signed 64 bits, as on Alpha.  (Without this,
#: multiply recurrences in the workloads grow into unbounded bignums.)
_U64 = (1 << 64) - 1
_SIGN = 1 << 63


def _wrap64(value: int) -> int:
    value &= _U64
    if value & _SIGN:
        value -= 1 << 64
    return value


class ExecResult:
    """Outcome of one functional step (reused; see module docstring)."""

    __slots__ = ("ea", "taken", "halted", "jump_target")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.ea: Optional[int] = None
        self.taken: Optional[bool] = None
        self.halted = False
        self.jump_target: Optional[int] = None


# ---------------------------------------------------------------------------
# ALU value functions: rd <- fn(a, b).  Shared by the generic executor and
# the decoded fast path; keyed by opcode so adding an opcode is one entry.
# ---------------------------------------------------------------------------
ALU_OPS = {
    Opcode.ADDQ: lambda a, b: _wrap64(int(a) + int(b)),
    Opcode.SUBQ: lambda a, b: _wrap64(int(a) - int(b)),
    Opcode.MULQ: lambda a, b: _wrap64(int(a) * int(b)),
    Opcode.AND: lambda a, b: int(a) & int(b),
    Opcode.OR: lambda a, b: int(a) | int(b),
    Opcode.XOR: lambda a, b: int(a) ^ int(b),
    Opcode.SLL: lambda a, b: _wrap64(int(a) << (int(b) & 63)),
    Opcode.SRL: lambda a, b: (int(a) & _U64) >> (int(b) & 63),
    Opcode.ADDF: lambda a, b: a + b,
    Opcode.SUBF: lambda a, b: a - b,
    Opcode.MULF: lambda a, b: a * b,
    Opcode.DIVF: lambda a, b: a / b if b else 0.0,
    Opcode.CMPEQ: lambda a, b: 1 if a == b else 0,
    Opcode.CMPLT: lambda a, b: 1 if a < b else 0,
    Opcode.CMPLE: lambda a, b: 1 if a <= b else 0,
}


# ---------------------------------------------------------------------------
# Per-opcode step handlers.  Signature: (inst, ctx, memory, result) -> None.
# Control flow is *reported*, not applied: branches set ``result.taken``
# (and ``result.jump_target`` for JMP) and the caller decides the next PC,
# because trace execution and original execution handle branches
# differently.
# ---------------------------------------------------------------------------
def _exec_ldq(inst, ctx, memory, result) -> None:
    regs = ctx.regs
    ea = int(regs[inst.ra]) + inst.disp
    result.ea = ea
    if inst.rd != ZERO_REGISTER:
        regs[inst.rd] = memory.read(ea)


def _exec_ldq_nf(inst, ctx, memory, result) -> None:
    regs = ctx.regs
    ea = int(regs[inst.ra]) + inst.disp
    result.ea = ea
    if inst.rd != ZERO_REGISTER:
        regs[inst.rd] = memory.read_quiet(ea)


def _exec_stq(inst, ctx, memory, result) -> None:
    regs = ctx.regs
    ea = int(regs[inst.ra]) + inst.disp
    result.ea = ea
    memory.write(ea, regs[inst.rd])


def _exec_prefetch(inst, ctx, memory, result) -> None:
    result.ea = int(ctx.regs[inst.ra]) + inst.disp


def _exec_lda(inst, ctx, memory, result) -> None:
    regs = ctx.regs
    if inst.rd != ZERO_REGISTER:
        regs[inst.rd] = int(regs[inst.ra]) + inst.disp


def _exec_move(inst, ctx, memory, result) -> None:
    regs = ctx.regs
    if inst.rd != ZERO_REGISTER:
        regs[inst.rd] = regs[inst.ra]


def _exec_nop(inst, ctx, memory, result) -> None:
    pass


def _exec_halt(inst, ctx, memory, result) -> None:
    result.halted = True
    ctx.halted = True


def _exec_br(inst, ctx, memory, result) -> None:
    result.taken = True


def _exec_beq(inst, ctx, memory, result) -> None:
    result.taken = ctx.regs[inst.ra] == 0


def _exec_bne(inst, ctx, memory, result) -> None:
    result.taken = ctx.regs[inst.ra] != 0


def _exec_blt(inst, ctx, memory, result) -> None:
    result.taken = ctx.regs[inst.ra] < 0


def _exec_bge(inst, ctx, memory, result) -> None:
    result.taken = ctx.regs[inst.ra] >= 0


def _exec_jmp(inst, ctx, memory, result) -> None:
    result.taken = True
    result.jump_target = int(ctx.regs[inst.ra])


def _make_exec_alu(op_fn):
    def exec_alu(inst, ctx, memory, result) -> None:
        regs = ctx.regs
        a = regs[inst.ra]
        b = regs[inst.rb] if inst.rb is not None else inst.imm
        value = op_fn(a, b)
        if inst.rd != ZERO_REGISTER:
            regs[inst.rd] = value

    return exec_alu


_DISPATCH = {
    Opcode.LDQ: _exec_ldq,
    Opcode.LDQ_NF: _exec_ldq_nf,
    Opcode.STQ: _exec_stq,
    Opcode.PREFETCH: _exec_prefetch,
    Opcode.LDA: _exec_lda,
    Opcode.MOVE: _exec_move,
    Opcode.NOP: _exec_nop,
    Opcode.HALT: _exec_halt,
    Opcode.BR: _exec_br,
    Opcode.BEQ: _exec_beq,
    Opcode.BNE: _exec_bne,
    Opcode.BLT: _exec_blt,
    Opcode.BGE: _exec_bge,
    Opcode.JMP: _exec_jmp,
}
for _op, _fn in ALU_OPS.items():
    _DISPATCH[_op] = _make_exec_alu(_fn)


class Executor:
    """Executes instructions against a context and data memory."""

    def __init__(self, memory: DataMemory) -> None:
        self.memory = memory
        self.result = ExecResult()

    def execute(self, inst: Instruction, ctx: ThreadContext) -> ExecResult:
        """Execute ``inst``; returns the shared :class:`ExecResult`."""
        result = self.result
        result.reset()
        handler = _DISPATCH.get(inst.opcode)
        if handler is None:
            raise ValueError(f"unhandled opcode {inst.opcode}")
        handler(inst, ctx, self.memory, result)
        return result

    @staticmethod
    def _alu(inst: Instruction, regs) -> float:
        """Evaluate a three-operand ALU instruction."""
        op_fn = ALU_OPS.get(inst.opcode)
        if op_fn is None:
            raise ValueError(f"unhandled opcode {inst.opcode}")
        a = regs[inst.ra]
        b = regs[inst.rb] if inst.rb is not None else inst.imm
        return op_fn(a, b)
