"""Functional execution of every opcode.

The executor changes architectural state (registers, data memory) and
reports what the timing model needs: the effective address of memory
operations and the direction of branches.  It never touches the cache
hierarchy — timing is the core's job.

``ExecResult`` is a single mutable object reused across calls to avoid a
per-instruction allocation; callers must consume it before the next
``execute``.
"""

from __future__ import annotations

from typing import Optional

from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode
from ..isa.registers import ZERO_REGISTER
from ..memory.mainmem import DataMemory
from .context import ThreadContext


#: Integer results wrap to signed 64 bits, as on Alpha.  (Without this,
#: multiply recurrences in the workloads grow into unbounded bignums.)
_U64 = (1 << 64) - 1
_SIGN = 1 << 63


def _wrap64(value: int) -> int:
    value &= _U64
    if value & _SIGN:
        value -= 1 << 64
    return value


class ExecResult:
    """Outcome of one functional step (reused; see module docstring)."""

    __slots__ = ("ea", "taken", "halted", "jump_target")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.ea: Optional[int] = None
        self.taken: Optional[bool] = None
        self.halted = False
        self.jump_target: Optional[int] = None


class Executor:
    """Executes instructions against a context and data memory."""

    def __init__(self, memory: DataMemory) -> None:
        self.memory = memory
        self.result = ExecResult()

    def execute(self, inst: Instruction, ctx: ThreadContext) -> ExecResult:
        """Execute ``inst``; returns the shared :class:`ExecResult`.

        Control flow is *reported*, not applied: branches set
        ``result.taken`` (and ``result.jump_target`` for JMP) and the
        caller decides the next PC, because trace execution and original
        execution handle branches differently.
        """
        result = self.result
        result.reset()
        regs = ctx.regs
        op = inst.opcode

        if op is Opcode.LDQ:
            ea = int(regs[inst.ra]) + inst.disp
            result.ea = ea
            if inst.rd != ZERO_REGISTER:
                regs[inst.rd] = self.memory.read(ea)
        elif op is Opcode.LDQ_NF:
            ea = int(regs[inst.ra]) + inst.disp
            result.ea = ea
            if inst.rd != ZERO_REGISTER:
                regs[inst.rd] = self.memory.read_quiet(ea)
        elif op is Opcode.STQ:
            ea = int(regs[inst.ra]) + inst.disp
            result.ea = ea
            self.memory.write(ea, regs[inst.rd])
        elif op is Opcode.PREFETCH:
            result.ea = int(regs[inst.ra]) + inst.disp
        elif op is Opcode.LDA:
            if inst.rd != ZERO_REGISTER:
                regs[inst.rd] = int(regs[inst.ra]) + inst.disp
        elif op is Opcode.MOVE:
            if inst.rd != ZERO_REGISTER:
                regs[inst.rd] = regs[inst.ra]
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.HALT:
            result.halted = True
            ctx.halted = True
        elif op is Opcode.BR:
            result.taken = True
        elif op is Opcode.BEQ:
            result.taken = regs[inst.ra] == 0
        elif op is Opcode.BNE:
            result.taken = regs[inst.ra] != 0
        elif op is Opcode.BLT:
            result.taken = regs[inst.ra] < 0
        elif op is Opcode.BGE:
            result.taken = regs[inst.ra] >= 0
        elif op is Opcode.JMP:
            result.taken = True
            result.jump_target = int(regs[inst.ra])
        else:
            value = self._alu(inst, regs)
            if inst.rd != ZERO_REGISTER:
                regs[inst.rd] = value
        return result

    @staticmethod
    def _alu(inst: Instruction, regs) -> float:
        """Evaluate a three-operand ALU instruction."""
        a = regs[inst.ra]
        b = regs[inst.rb] if inst.rb is not None else inst.imm
        op = inst.opcode
        if op is Opcode.ADDQ:
            return _wrap64(int(a) + int(b))
        if op is Opcode.SUBQ:
            return _wrap64(int(a) - int(b))
        if op is Opcode.MULQ:
            return _wrap64(int(a) * int(b))
        if op is Opcode.AND:
            return int(a) & int(b)
        if op is Opcode.OR:
            return int(a) | int(b)
        if op is Opcode.XOR:
            return int(a) ^ int(b)
        if op is Opcode.SLL:
            return _wrap64(int(a) << (int(b) & 63))
        if op is Opcode.SRL:
            return (int(a) & _U64) >> (int(b) & 63)
        if op is Opcode.ADDF:
            return a + b
        if op is Opcode.SUBF:
            return a - b
        if op is Opcode.MULF:
            return a * b
        if op is Opcode.DIVF:
            return a / b if b else 0.0
        if op is Opcode.CMPEQ:
            return 1 if a == b else 0
        if op is Opcode.CMPLT:
            return 1 if a < b else 0
        if op is Opcode.CMPLE:
            return 1 if a <= b else 0
        raise ValueError(f"unhandled opcode {op}")
