"""Architectural thread context: the register file and PC."""

from __future__ import annotations

from typing import List, Union

from ..isa.registers import NUM_REGISTERS, ZERO_REGISTER

Number = Union[int, float]


class ThreadContext:
    """One hardware context's architectural state.

    ``r31`` reads as zero and ignores writes (use :meth:`write_reg`).
    """

    __slots__ = ("regs", "pc", "halted")

    def __init__(self, entry: int = 0) -> None:
        self.regs: List[Number] = [0] * NUM_REGISTERS
        self.pc = entry
        self.halted = False

    def write_reg(self, index: int, value: Number) -> None:
        if index != ZERO_REGISTER:
            self.regs[index] = value

    def read_reg(self, index: int) -> Number:
        return self.regs[index]

    def reset(self, entry: int = 0) -> None:
        for i in range(NUM_REGISTERS):
            self.regs[i] = 0
        self.pc = entry
        self.halted = False
