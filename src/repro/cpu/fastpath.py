"""Pre-decoded fast interpreter for the SMT core.

The generic loop in :mod:`repro.cpu.core` re-decodes every instruction on
every dynamic execution: fetch the :class:`Instruction`, walk opcode
tests, chase ``self.X`` attributes, bounce through ``Executor.execute``,
``_issue``, ``_time_*`` and ``_retire``.  For deterministic workloads
that execute the same few hundred static instructions millions of times,
nearly all of that work is loop-invariant.

This module compiles each static instruction **once** into a closure
that performs the entire architectural + timing step — functional
execute, issue, per-kind timing, retire, next-PC — with every
loop-invariant operand (register indices, displacement, branch target,
latency, hierarchy methods, stat objects) pre-bound.  ``SMTCore`` then
executes ``handlers[pc]()`` per step, or a straight ``for`` over a
basic block of pure-register handlers when no runtime/injector needs
per-step hooks.

Correctness contract: every closure replicates the corresponding branch
of ``SMTCore._step_original`` / ``_step_trace`` *exactly* — same float
arithmetic in the same order, same stat-update order, same hook call
sites — so slow and fast paths produce byte-identical
``SimulationResult`` payloads.  ``tests/test_fastpath_equivalence.py``
and the golden fixtures under ``tests/data/golden/`` enforce this.

Mutability notes (why each capture is safe):

* ``ctx.regs``, ``core._reg_ready``, ``core._rob``, ``core._loadq`` and
  ``core._bp_table`` are lists assigned once in their owners' ``__init__``
  and only ever mutated in place.
* ``core.stats`` is one ``CoreStats`` for the core's lifetime;
  ``reset_measurement`` reassigns ``miss_count_by_pc``, so handlers read
  that dict through ``stats`` at call time, never capture it.
* Hierarchy/memory *methods* are stable (fault injection mutates fields
  like ``dram_latency_extra``, never rebinds methods), so bound methods
  are captured.
* ``PREFETCH`` handlers read ``inst.disp`` at call time: the
  self-repairing optimizer patches prefetch displacements in place
  (repro.core.repair), and a captured constant would silently undo
  every repair.  All other instruction fields are immutable after
  assembly and are captured.
"""

from __future__ import annotations

from ..isa.opcodes import (
    CONDITIONAL_BRANCHES,
    FP_ALU_OPCODES,
    INT_ALU_OPCODES,
    LOAD_OPCODES,
    Opcode,
)
from ..memory.stats import OutcomeKind
from .executor import ALU_OPS

#: The two L1-hit classifications, bound once so load handlers can test
#: ``LoadOutcome.is_miss`` with two identity checks instead of a
#: property call (identical truth value — see ``LoadOutcome.is_miss``).
_HIT = OutcomeKind.HIT
_HIT_PF = OutcomeKind.HIT_PREFETCHED

#: Opcodes whose handlers neither change control flow nor need per-step
#: hooks — eligible for batched basic-block execution.  Memory ops
#: qualify: the hierarchy keeps its own state and never reads the
#: core's scalar pipeline registers, so a load inside a batch sees
#: exactly the state it would see stepping one instruction at a time.
#: Control flow (branches, JMP, HALT) stays out: those write the fetch
#: stall / PC and must re-enter the dispatch loop.
BATCHABLE_OPCODES = frozenset(
    INT_ALU_OPCODES
    | FP_ALU_OPCODES
    | LOAD_OPCODES
    | {Opcode.STQ, Opcode.PREFETCH, Opcode.LDA, Opcode.MOVE, Opcode.NOP}
)

#: Branch-condition tests, keyed by opcode (ra is tested against zero).
_COND = {
    Opcode.BEQ: lambda v: v == 0,
    Opcode.BNE: lambda v: v != 0,
    Opcode.BLT: lambda v: v < 0,
    Opcode.BGE: lambda v: v >= 0,
}

_MEM_QUEUE = 64
_INT_LATENCY = 1
_MUL_LATENCY = 3
_FP_LATENCY = 4
_DIV_LATENCY = 12


#: Non-default ALU latencies; anything absent is ``_INT_LATENCY``.
#: Shared with ``SMTCore._time_alu`` so slow and fast paths cannot
#: disagree on a latency.
ALU_LATENCY = {
    Opcode.MULQ: _MUL_LATENCY,
    Opcode.DIVF: _DIV_LATENCY,
    Opcode.ADDF: _FP_LATENCY,
    Opcode.SUBF: _FP_LATENCY,
    Opcode.MULF: _FP_LATENCY,
}


def _alu_latency(op: Opcode) -> int:
    """The ``SMTCore._time_alu`` latency table, resolved at decode time."""
    return ALU_LATENCY.get(op, _INT_LATENCY)


#: Shared empty patch map for runtimes that never link traces.
_NO_TRACES: dict = {}


def _patch_lookup(runtime):
    """A bound ``dict.get`` for the fetch-time patch check.

    Handlers probe the code cache's patch map directly (one dict.get per
    committed instruction instead of two method calls).  Safe because the
    map is mutated in place by link/unlink, never reassigned, and
    ``overhead_only`` is fixed at runtime construction.
    """
    if runtime is None or runtime.overhead_only:
        return _NO_TRACES.get
    return runtime.code_cache._patch_map.get


def block_lengths(instructions) -> list:
    """``block_len[pc]`` = length of the straight-line batchable run
    starting at ``pc`` (always >= 1; boundary opcodes get 1)."""
    n = len(instructions)
    lens = [1] * n
    run = 0
    for i in range(n - 1, -1, -1):
        if instructions[i].opcode in BATCHABLE_OPCODES:
            run += 1
            lens[i] = run
        else:
            run = 0
    return lens


# ---------------------------------------------------------------------------
# Original-program handlers.  Each factory returns one zero-argument
# closure performing the full step for instruction ``inst`` at ``pc``.
#
# Every closure repeats the same inlined _issue/_retire sequences rather
# than calling shared helpers: the whole point of this module is that a
# step is ONE function call.
# ---------------------------------------------------------------------------
def compile_program(core):
    """Return ``(handlers, block_len)`` for ``core.program``."""
    instructions = core.program.instructions
    handlers = [_compile_original(core, pc, inst)
                for pc, inst in enumerate(instructions)]
    return handlers, block_lengths(instructions)


def _compile_original(core, pc, inst):
    op = inst.opcode
    if op in LOAD_OPCODES:
        return _orig_load(core, pc, inst)
    if op is Opcode.STQ:
        return _orig_store(core, pc, inst)
    if op is Opcode.PREFETCH:
        return _orig_prefetch(core, pc, inst)
    if op in CONDITIONAL_BRANCHES:
        return _orig_cond_branch(core, pc, inst)
    if op is Opcode.BR:
        return _orig_br(core, pc, inst)
    if op is Opcode.JMP:
        return _orig_jmp(core, pc, inst)
    if op is Opcode.HALT:
        return _orig_halt(core, pc, inst)
    if op is Opcode.NOP:
        return _orig_nop(core, pc, inst)
    if op is Opcode.LDA:
        return _orig_lda(core, pc, inst)
    if op is Opcode.MOVE:
        return _orig_move(core, pc, inst)
    if op in ALU_OPS:
        return _orig_alu(core, pc, inst)
    raise ValueError(f"unhandled opcode {op}")


def _orig_load(core, pc, inst):
    ctx = core.ctx
    regs = ctx.regs
    ready = core._reg_ready
    rob = core._rob
    rob_len = len(rob)
    loadq = core._loadq
    stats = core.stats
    runtime = core.runtime
    has_runtime = runtime is not None
    helper = runtime.helper if has_runtime else None
    patch_get = _patch_lookup(runtime)
    issue_cost = core._issue_cost
    interference = core.config.helper_interference
    read = (core.memory.read_quiet if inst.opcode is Opcode.LDQ_NF
            else core.memory.read)
    hier_load = core.hierarchy.load
    ra, rd, disp = inst.ra, inst.rd, inst.disp
    freads = rd != 31                      # functional register write
    twrites = rd is not None and rd != 31  # timing ready[] update
    next_pc = pc + 1
    enter_trace = core._enter_trace

    def step():
        ea = int(regs[ra]) + disp
        if freads:
            regs[rd] = read(ea)
        # _issue
        clock = core._issue_clock
        cost = issue_cost
        if has_runtime and helper.busy_until > clock:
            cost = issue_cost * interference
        issue = clock + cost
        stall = core._fetch_stall_until
        if issue < stall:
            issue = stall
        ri = core._rob_idx
        rob_limit = rob[ri]
        if issue < rob_limit:
            issue = rob_limit
        core._issue_clock = issue
        stats.committed += 1
        # _time_load
        access = issue
        addr_ready = ready[ra]
        if addr_ready > access:
            access = addr_ready
        li = core._loadq_idx
        lq_limit = loadq[li]
        if lq_limit > access:
            access = lq_limit
        outcome = hier_load(pc, ea, int(access))
        completion = access + outcome.latency
        loadq[li] = completion
        li += 1
        if li == _MEM_QUEUE:
            li = 0
        core._loadq_idx = li
        if twrites:
            ready[rd] = completion
        stats.loads_executed += 1
        kind = outcome.kind
        if kind is not _HIT and kind is not _HIT_PF:  # outcome.is_miss
            stats.misses_total += 1
            by_pc = stats.miss_count_by_pc
            by_pc[pc] = by_pc.get(pc, 0) + 1
        # _retire
        rob[ri] = completion
        ri += 1
        if ri == rob_len:
            ri = 0
        core._rob_idx = ri
        if completion > core._completion_max:
            core._completion_max = completion
        ctx.pc = next_pc
        if has_runtime:
            t = patch_get(next_pc)
            if t is not None:
                enter_trace(t, next_pc)

    return step


def _orig_store(core, pc, inst):
    ctx = core.ctx
    regs = ctx.regs
    ready = core._reg_ready
    rob = core._rob
    rob_len = len(rob)
    stats = core.stats
    runtime = core.runtime
    has_runtime = runtime is not None
    helper = runtime.helper if has_runtime else None
    patch_get = _patch_lookup(runtime)
    issue_cost = core._issue_cost
    interference = core.config.helper_interference
    write = core.memory.write
    hier_store = core.hierarchy.store
    ra, rd, disp = inst.ra, inst.rd, inst.disp
    next_pc = pc + 1
    enter_trace = core._enter_trace

    def step():
        ea = int(regs[ra]) + disp
        write(ea, regs[rd])
        clock = core._issue_clock
        cost = issue_cost
        if has_runtime and helper.busy_until > clock:
            cost = issue_cost * interference
        issue = clock + cost
        stall = core._fetch_stall_until
        if issue < stall:
            issue = stall
        ri = core._rob_idx
        rob_limit = rob[ri]
        if issue < rob_limit:
            issue = rob_limit
        core._issue_clock = issue
        stats.committed += 1
        completion = max(issue, ready[ra], ready[rd]) + 1
        hier_store(ea, int(completion))
        rob[ri] = completion
        ri += 1
        if ri == rob_len:
            ri = 0
        core._rob_idx = ri
        if completion > core._completion_max:
            core._completion_max = completion
        ctx.pc = next_pc
        if has_runtime:
            t = patch_get(next_pc)
            if t is not None:
                enter_trace(t, next_pc)

    return step


def _orig_prefetch(core, pc, inst):
    ctx = core.ctx
    regs = ctx.regs
    ready = core._reg_ready
    rob = core._rob
    rob_len = len(rob)
    stats = core.stats
    runtime = core.runtime
    has_runtime = runtime is not None
    helper = runtime.helper if has_runtime else None
    patch_get = _patch_lookup(runtime)
    issue_cost = core._issue_cost
    interference = core.config.helper_interference
    hier_prefetch = core.hierarchy.software_prefetch
    ra = inst.ra
    next_pc = pc + 1
    enter_trace = core._enter_trace

    def step():
        ea = int(regs[ra]) + inst.disp  # disp read live: repairs patch it
        clock = core._issue_clock
        cost = issue_cost
        if has_runtime and helper.busy_until > clock:
            cost = issue_cost * interference
        issue = clock + cost
        stall = core._fetch_stall_until
        if issue < stall:
            issue = stall
        ri = core._rob_idx
        rob_limit = rob[ri]
        if issue < rob_limit:
            issue = rob_limit
        core._issue_clock = issue
        stats.committed += 1
        access = max(issue, ready[ra])
        hier_prefetch(ea, int(access))
        completion = access
        rob[ri] = completion
        ri += 1
        if ri == rob_len:
            ri = 0
        core._rob_idx = ri
        if completion > core._completion_max:
            core._completion_max = completion
        ctx.pc = next_pc
        if has_runtime:
            t = patch_get(next_pc)
            if t is not None:
                enter_trace(t, next_pc)

    return step


def _orig_cond_branch(core, pc, inst):
    ctx = core.ctx
    regs = ctx.regs
    ready = core._reg_ready
    rob = core._rob
    rob_len = len(rob)
    bp = core._bp_table
    stats = core.stats
    runtime = core.runtime
    has_runtime = runtime is not None
    helper = runtime.helper if has_runtime else None
    patch_get = _patch_lookup(runtime)
    issue_cost = core._issue_cost
    interference = core.config.helper_interference
    penalty = core.config.mispredict_penalty
    cond = _COND[inst.opcode]
    ra, target = inst.ra, inst.target
    slot = pc & 4095
    fall_pc = pc + 1
    enter_trace = core._enter_trace

    def step():
        taken = cond(regs[ra])
        clock = core._issue_clock
        cost = issue_cost
        if has_runtime and helper.busy_until > clock:
            cost = issue_cost * interference
        issue = clock + cost
        stall = core._fetch_stall_until
        if issue < stall:
            issue = stall
        ri = core._rob_idx
        rob_limit = rob[ri]
        if issue < rob_limit:
            issue = rob_limit
        core._issue_clock = issue
        stats.committed += 1
        stats.conditional_branches += 1
        resolve = max(issue, ready[ra]) + _INT_LATENCY
        # _predict_branch
        counter = bp[slot]
        predicted = counter >= 2
        if taken:
            if counter < 3:
                bp[slot] = counter + 1
        else:
            if counter > 0:
                bp[slot] = counter - 1
        if predicted != taken:
            stats.branch_mispredicts += 1
            core._fetch_stall_until = resolve + penalty
        completion = resolve
        next_pc = target if taken else fall_pc
        if has_runtime:
            runtime.on_branch(pc, taken, target, issue)
        rob[ri] = completion
        ri += 1
        if ri == rob_len:
            ri = 0
        core._rob_idx = ri
        if completion > core._completion_max:
            core._completion_max = completion
        ctx.pc = next_pc
        if has_runtime:
            t = patch_get(next_pc)
            if t is not None:
                enter_trace(t, next_pc)

    return step


def _orig_br(core, pc, inst):
    ctx = core.ctx
    rob = core._rob
    rob_len = len(rob)
    stats = core.stats
    runtime = core.runtime
    has_runtime = runtime is not None
    helper = runtime.helper if has_runtime else None
    patch_get = _patch_lookup(runtime)
    issue_cost = core._issue_cost
    interference = core.config.helper_interference
    target = inst.target
    enter_trace = core._enter_trace

    def step():
        clock = core._issue_clock
        cost = issue_cost
        if has_runtime and helper.busy_until > clock:
            cost = issue_cost * interference
        issue = clock + cost
        stall = core._fetch_stall_until
        if issue < stall:
            issue = stall
        ri = core._rob_idx
        rob_limit = rob[ri]
        if issue < rob_limit:
            issue = rob_limit
        core._issue_clock = issue
        stats.committed += 1
        completion = issue
        rob[ri] = completion
        ri += 1
        if ri == rob_len:
            ri = 0
        core._rob_idx = ri
        if completion > core._completion_max:
            core._completion_max = completion
        ctx.pc = target
        if has_runtime:
            t = patch_get(target)
            if t is not None:
                enter_trace(t, target)

    return step


def _orig_jmp(core, pc, inst):
    ctx = core.ctx
    regs = ctx.regs
    ready = core._reg_ready
    rob = core._rob
    rob_len = len(rob)
    stats = core.stats
    runtime = core.runtime
    has_runtime = runtime is not None
    helper = runtime.helper if has_runtime else None
    patch_get = _patch_lookup(runtime)
    issue_cost = core._issue_cost
    interference = core.config.helper_interference
    penalty = core.config.mispredict_penalty
    ra = inst.ra
    enter_trace = core._enter_trace

    def step():
        next_pc = int(regs[ra])
        clock = core._issue_clock
        cost = issue_cost
        if has_runtime and helper.busy_until > clock:
            cost = issue_cost * interference
        issue = clock + cost
        stall = core._fetch_stall_until
        if issue < stall:
            issue = stall
        ri = core._rob_idx
        rob_limit = rob[ri]
        if issue < rob_limit:
            issue = rob_limit
        core._issue_clock = issue
        stats.committed += 1
        resolve = max(issue, ready[ra]) + _INT_LATENCY
        core._fetch_stall_until = resolve + penalty
        completion = resolve
        rob[ri] = completion
        ri += 1
        if ri == rob_len:
            ri = 0
        core._rob_idx = ri
        if completion > core._completion_max:
            core._completion_max = completion
        ctx.pc = next_pc
        if has_runtime:
            t = patch_get(next_pc)
            if t is not None:
                enter_trace(t, next_pc)

    return step


def _orig_halt(core, pc, inst):
    ctx = core.ctx
    rob = core._rob
    rob_len = len(rob)
    stats = core.stats
    runtime = core.runtime
    has_runtime = runtime is not None
    helper = runtime.helper if has_runtime else None
    patch_get = _patch_lookup(runtime)
    issue_cost = core._issue_cost
    interference = core.config.helper_interference
    next_pc = pc + 1

    def step():
        ctx.halted = True
        clock = core._issue_clock
        cost = issue_cost
        if has_runtime and helper.busy_until > clock:
            cost = issue_cost * interference
        issue = clock + cost
        stall = core._fetch_stall_until
        if issue < stall:
            issue = stall
        ri = core._rob_idx
        rob_limit = rob[ri]
        if issue < rob_limit:
            issue = rob_limit
        core._issue_clock = issue
        stats.committed += 1
        completion = issue
        rob[ri] = completion
        ri += 1
        if ri == rob_len:
            ri = 0
        core._rob_idx = ri
        if completion > core._completion_max:
            core._completion_max = completion
        ctx.pc = next_pc
        # halted: no trace-entry check (matches _step_original's guard)

    return step


def _orig_nop(core, pc, inst):
    ctx = core.ctx
    rob = core._rob
    rob_len = len(rob)
    stats = core.stats
    runtime = core.runtime
    has_runtime = runtime is not None
    helper = runtime.helper if has_runtime else None
    patch_get = _patch_lookup(runtime)
    issue_cost = core._issue_cost
    interference = core.config.helper_interference
    next_pc = pc + 1
    enter_trace = core._enter_trace

    def step():
        clock = core._issue_clock
        cost = issue_cost
        if has_runtime and helper.busy_until > clock:
            cost = issue_cost * interference
        issue = clock + cost
        stall = core._fetch_stall_until
        if issue < stall:
            issue = stall
        ri = core._rob_idx
        rob_limit = rob[ri]
        if issue < rob_limit:
            issue = rob_limit
        core._issue_clock = issue
        stats.committed += 1
        completion = issue
        rob[ri] = completion
        ri += 1
        if ri == rob_len:
            ri = 0
        core._rob_idx = ri
        if completion > core._completion_max:
            core._completion_max = completion
        ctx.pc = next_pc
        if has_runtime:
            t = patch_get(next_pc)
            if t is not None:
                enter_trace(t, next_pc)

    return step


def _orig_lda(core, pc, inst):
    return _orig_reg_op(core, pc, inst, kind="lda")


def _orig_move(core, pc, inst):
    return _orig_reg_op(core, pc, inst, kind="move")


def _orig_alu(core, pc, inst):
    return _orig_reg_op(core, pc, inst, kind="alu")


def _orig_reg_op(core, pc, inst, kind):
    """LDA / MOVE / three-operand ALU: pure register ops, ALU timing."""
    ctx = core.ctx
    regs = ctx.regs
    ready = core._reg_ready
    rob = core._rob
    rob_len = len(rob)
    stats = core.stats
    runtime = core.runtime
    has_runtime = runtime is not None
    helper = runtime.helper if has_runtime else None
    patch_get = _patch_lookup(runtime)
    issue_cost = core._issue_cost
    interference = core.config.helper_interference
    ra, rb, rd = inst.ra, inst.rb, inst.rd
    imm, disp = inst.imm, inst.disp
    op_fn = ALU_OPS.get(inst.opcode)
    latency = _alu_latency(inst.opcode)
    is_lda = kind == "lda"
    is_move = kind == "move"
    fwrites = rd != 31                     # functional write guard
    twrites = rd is not None and rd != 31  # timing ready[] guard
    has_ra = ra is not None
    has_rb = rb is not None
    next_pc = pc + 1
    enter_trace = core._enter_trace

    def step():
        if is_lda:
            if fwrites:
                regs[rd] = int(regs[ra]) + disp
        elif is_move:
            if fwrites:
                regs[rd] = regs[ra]
        else:
            a = regs[ra]
            b = regs[rb] if has_rb else imm
            value = op_fn(a, b)
            if fwrites:
                regs[rd] = value
        clock = core._issue_clock
        cost = issue_cost
        if has_runtime and helper.busy_until > clock:
            cost = issue_cost * interference
        issue = clock + cost
        stall = core._fetch_stall_until
        if issue < stall:
            issue = stall
        ri = core._rob_idx
        rob_limit = rob[ri]
        if issue < rob_limit:
            issue = rob_limit
        core._issue_clock = issue
        stats.committed += 1
        # _time_alu
        start = issue
        if has_ra:
            r = ready[ra]
            if r > start:
                start = r
        if has_rb:
            r = ready[rb]
            if r > start:
                start = r
        completion = start + latency
        if twrites:
            ready[rd] = completion
        rob[ri] = completion
        ri += 1
        if ri == rob_len:
            ri = 0
        core._rob_idx = ri
        if completion > core._completion_max:
            core._completion_max = completion
        ctx.pc = next_pc
        if has_runtime:
            t = patch_get(next_pc)
            if t is not None:
                enter_trace(t, next_pc)

    return step


# ---------------------------------------------------------------------------
# Trace handlers.  One closure per body index; each advances
# ``core._trace_idx`` itself (or finishes/exits the trace), replicating
# ``SMTCore._step_trace``.  Traces only execute under a runtime, so the
# issue-interference check is unconditional here.
# ---------------------------------------------------------------------------
def compile_trace(core, trace):
    """Return the per-index step closures for ``trace.body``."""
    body = trace.body
    last = len(body) - 1
    return [_compile_trace_step(core, trace, idx, idx == last)
            for idx, tinst in enumerate(body)]


def _compile_trace_step(core, trace, idx, is_last):
    tinst = trace.body[idx]
    op = tinst.inst.opcode
    if op in LOAD_OPCODES:
        return _trace_load(core, trace, idx, is_last)
    if op is Opcode.STQ:
        return _trace_store(core, trace, idx, is_last)
    if op is Opcode.PREFETCH:
        return _trace_prefetch(core, trace, idx, is_last)
    if op in CONDITIONAL_BRANCHES or op is Opcode.JMP:
        # _step_trace routes JMP through the conditional-branch arm
        # (taken is always True), so a hand-built trace containing one
        # predicts/exits exactly like the generic loop.
        return _trace_cond_branch(core, trace, idx, is_last)
    if op is Opcode.HALT:
        return _trace_halt(core, trace, idx)
    # BR, NOP, LDA, MOVE and ALU ops all share the plain-advance tail.
    return _trace_plain(core, trace, idx, is_last)


def _trace_prologue(core, trace, idx):
    """Shared decode-time captures for the trace factories."""
    tinst = trace.body[idx]
    return tinst, tinst.inst, tinst.orig_pc, tinst.synthetic


def _trace_load(core, trace, idx, is_last):
    ctx = core.ctx
    regs = ctx.regs
    ready = core._reg_ready
    rob = core._rob
    rob_len = len(rob)
    loadq = core._loadq
    stats = core.stats
    runtime = core.runtime
    helper = runtime.helper
    patch_get = _patch_lookup(runtime)
    issue_cost = core._issue_cost
    interference = core.config.helper_interference
    tinst, inst, orig_pc, synthetic = _trace_prologue(core, trace, idx)
    read = (core.memory.read_quiet if inst.opcode is Opcode.LDQ_NF
            else core.memory.read)
    hier_load = core.hierarchy.load
    hier_load_syn = core.hierarchy.load_synthetic
    ra, rd, disp = inst.ra, inst.rd, inst.disp
    freads = rd != 31
    twrites = rd is not None and rd != 31
    next_idx = idx + 1
    enter_trace = core._enter_trace

    def step():
        ea = int(regs[ra]) + disp
        if freads:
            regs[rd] = read(ea)
        clock = core._issue_clock
        cost = issue_cost
        if helper.busy_until > clock:
            cost = issue_cost * interference
        issue = clock + cost
        stall = core._fetch_stall_until
        if issue < stall:
            issue = stall
        ri = core._rob_idx
        rob_limit = rob[ri]
        if issue < rob_limit:
            issue = rob_limit
        core._issue_clock = issue
        if synthetic:
            stats.synthetic_executed += 1
        else:
            stats.committed += 1
            stats.trace_committed += 1
        # _time_load (tagged with the original PC)
        access = issue
        addr_ready = ready[ra]
        if addr_ready > access:
            access = addr_ready
        li = core._loadq_idx
        lq_limit = loadq[li]
        if lq_limit > access:
            access = lq_limit
        if synthetic:
            outcome = hier_load_syn(ea, int(access))
        else:
            outcome = hier_load(orig_pc, ea, int(access))
        completion = access + outcome.latency
        loadq[li] = completion
        li += 1
        if li == _MEM_QUEUE:
            li = 0
        core._loadq_idx = li
        if twrites:
            ready[rd] = completion
        if not synthetic:
            stats.loads_executed += 1
            kind = outcome.kind
            if kind is not _HIT and kind is not _HIT_PF:  # is_miss
                stats.misses_total += 1
                stats.misses_in_traces += 1
                by_pc = stats.miss_count_by_pc
                by_pc[orig_pc] = by_pc.get(orig_pc, 0) + 1
            runtime.on_trace_load(orig_pc, trace, ea, outcome, access)
        rob[ri] = completion
        ri += 1
        if ri == rob_len:
            ri = 0
        core._rob_idx = ri
        if completion > core._completion_max:
            core._completion_max = completion
        if is_last:
            core._finish_trace(trace, completed=True)
            next_pc = trace.fallthrough_pc
            ctx.pc = next_pc
            t = patch_get(next_pc)
            if t is not None:
                enter_trace(t, next_pc)
        else:
            core._trace_idx = next_idx

    return step


def _trace_store(core, trace, idx, is_last):
    ctx = core.ctx
    regs = ctx.regs
    ready = core._reg_ready
    rob = core._rob
    rob_len = len(rob)
    stats = core.stats
    runtime = core.runtime
    helper = runtime.helper
    patch_get = _patch_lookup(runtime)
    issue_cost = core._issue_cost
    interference = core.config.helper_interference
    tinst, inst, orig_pc, synthetic = _trace_prologue(core, trace, idx)
    write = core.memory.write
    hier_store = core.hierarchy.store
    ra, rd, disp = inst.ra, inst.rd, inst.disp
    next_idx = idx + 1
    enter_trace = core._enter_trace

    def step():
        ea = int(regs[ra]) + disp
        write(ea, regs[rd])
        clock = core._issue_clock
        cost = issue_cost
        if helper.busy_until > clock:
            cost = issue_cost * interference
        issue = clock + cost
        stall = core._fetch_stall_until
        if issue < stall:
            issue = stall
        ri = core._rob_idx
        rob_limit = rob[ri]
        if issue < rob_limit:
            issue = rob_limit
        core._issue_clock = issue
        if synthetic:
            stats.synthetic_executed += 1
        else:
            stats.committed += 1
            stats.trace_committed += 1
        completion = max(issue, ready[ra], ready[rd]) + 1
        hier_store(ea, int(completion))
        rob[ri] = completion
        ri += 1
        if ri == rob_len:
            ri = 0
        core._rob_idx = ri
        if completion > core._completion_max:
            core._completion_max = completion
        if is_last:
            core._finish_trace(trace, completed=True)
            next_pc = trace.fallthrough_pc
            ctx.pc = next_pc
            t = patch_get(next_pc)
            if t is not None:
                enter_trace(t, next_pc)
        else:
            core._trace_idx = next_idx

    return step


def _trace_prefetch(core, trace, idx, is_last):
    ctx = core.ctx
    regs = ctx.regs
    ready = core._reg_ready
    rob = core._rob
    rob_len = len(rob)
    stats = core.stats
    runtime = core.runtime
    helper = runtime.helper
    patch_get = _patch_lookup(runtime)
    issue_cost = core._issue_cost
    interference = core.config.helper_interference
    tinst, inst, orig_pc, synthetic = _trace_prologue(core, trace, idx)
    hier_prefetch = core.hierarchy.software_prefetch
    ra = inst.ra
    next_idx = idx + 1
    enter_trace = core._enter_trace

    def step():
        ea = int(regs[ra]) + inst.disp  # disp read live: repairs patch it
        clock = core._issue_clock
        cost = issue_cost
        if helper.busy_until > clock:
            cost = issue_cost * interference
        issue = clock + cost
        stall = core._fetch_stall_until
        if issue < stall:
            issue = stall
        ri = core._rob_idx
        rob_limit = rob[ri]
        if issue < rob_limit:
            issue = rob_limit
        core._issue_clock = issue
        if synthetic:
            stats.synthetic_executed += 1
        else:
            stats.committed += 1
            stats.trace_committed += 1
        access = max(issue, ready[ra])
        hier_prefetch(ea, int(access))
        completion = access
        rob[ri] = completion
        ri += 1
        if ri == rob_len:
            ri = 0
        core._rob_idx = ri
        if completion > core._completion_max:
            core._completion_max = completion
        if is_last:
            core._finish_trace(trace, completed=True)
            next_pc = trace.fallthrough_pc
            ctx.pc = next_pc
            t = patch_get(next_pc)
            if t is not None:
                enter_trace(t, next_pc)
        else:
            core._trace_idx = next_idx

    return step


def _trace_cond_branch(core, trace, idx, is_last):
    ctx = core.ctx
    regs = ctx.regs
    ready = core._reg_ready
    rob = core._rob
    rob_len = len(rob)
    bp = core._bp_table
    stats = core.stats
    runtime = core.runtime
    helper = runtime.helper
    patch_get = _patch_lookup(runtime)
    issue_cost = core._issue_cost
    interference = core.config.helper_interference
    penalty = core.config.mispredict_penalty
    tinst, inst, orig_pc, synthetic = _trace_prologue(core, trace, idx)
    cond = _COND.get(inst.opcode) or (lambda v: True)  # JMP: always taken
    ra, target = inst.ra, inst.target
    expected = tinst.expected_taken
    slot = orig_pc & 4095
    exit_fall_pc = orig_pc + 1
    next_idx = idx + 1
    enter_trace = core._enter_trace

    def step():
        taken = cond(regs[ra])
        clock = core._issue_clock
        cost = issue_cost
        if helper.busy_until > clock:
            cost = issue_cost * interference
        issue = clock + cost
        stall = core._fetch_stall_until
        if issue < stall:
            issue = stall
        ri = core._rob_idx
        rob_limit = rob[ri]
        if issue < rob_limit:
            issue = rob_limit
        core._issue_clock = issue
        if synthetic:
            stats.synthetic_executed += 1
        else:
            stats.committed += 1
            stats.trace_committed += 1
        stats.conditional_branches += 1
        resolve = max(issue, ready[ra]) + _INT_LATENCY
        counter = bp[slot]
        predicted = counter >= 2
        if taken:
            if counter < 3:
                bp[slot] = counter + 1
        else:
            if counter > 0:
                bp[slot] = counter - 1
        if predicted != taken:
            stats.branch_mispredicts += 1
            core._fetch_stall_until = resolve + penalty
        completion = resolve
        rob[ri] = completion
        ri += 1
        if ri == rob_len:
            ri = 0
        core._rob_idx = ri
        if completion > core._completion_max:
            core._completion_max = completion
        if taken != expected:
            stats.trace_exits_early += 1
            core._finish_trace(trace, completed=False)
            exit_pc = target if taken else exit_fall_pc
            ctx.pc = exit_pc
            t = patch_get(exit_pc)
            if t is not None:
                enter_trace(t, exit_pc)
        elif is_last:
            core._finish_trace(trace, completed=True)
            next_pc = trace.fallthrough_pc
            ctx.pc = next_pc
            t = patch_get(next_pc)
            if t is not None:
                enter_trace(t, next_pc)
        else:
            core._trace_idx = next_idx

    return step


def _trace_halt(core, trace, idx):
    ctx = core.ctx
    rob = core._rob
    rob_len = len(rob)
    stats = core.stats
    runtime = core.runtime
    helper = runtime.helper
    patch_get = _patch_lookup(runtime)
    issue_cost = core._issue_cost
    interference = core.config.helper_interference
    tinst, inst, orig_pc, synthetic = _trace_prologue(core, trace, idx)

    def step():
        ctx.halted = True
        clock = core._issue_clock
        cost = issue_cost
        if helper.busy_until > clock:
            cost = issue_cost * interference
        issue = clock + cost
        stall = core._fetch_stall_until
        if issue < stall:
            issue = stall
        ri = core._rob_idx
        rob_limit = rob[ri]
        if issue < rob_limit:
            issue = rob_limit
        core._issue_clock = issue
        if synthetic:
            stats.synthetic_executed += 1
        else:
            stats.committed += 1
            stats.trace_committed += 1
        completion = issue
        rob[ri] = completion
        ri += 1
        if ri == rob_len:
            ri = 0
        core._rob_idx = ri
        if completion > core._completion_max:
            core._completion_max = completion
        # Matches _step_trace's halted tail: drop the trace without
        # finishing it (no obs emit, no on_trace_execution).
        core._trace = None

    return step


def _trace_plain(core, trace, idx, is_last):
    """BR, NOP, LDA, MOVE and ALU ops inside a trace."""
    ctx = core.ctx
    regs = ctx.regs
    ready = core._reg_ready
    rob = core._rob
    rob_len = len(rob)
    stats = core.stats
    runtime = core.runtime
    helper = runtime.helper
    patch_get = _patch_lookup(runtime)
    issue_cost = core._issue_cost
    interference = core.config.helper_interference
    tinst, inst, orig_pc, synthetic = _trace_prologue(core, trace, idx)
    op = inst.opcode
    ra, rb, rd = inst.ra, inst.rb, inst.rd
    imm, disp = inst.imm, inst.disp
    op_fn = ALU_OPS.get(op)
    latency = _alu_latency(op)
    is_lda = op is Opcode.LDA
    is_move = op is Opcode.MOVE
    # BR and NOP complete at issue; everything else goes through ALU
    # timing (matching _step_trace's elif ordering).
    issue_completes = op is Opcode.BR or op is Opcode.NOP
    fwrites = rd != 31
    twrites = rd is not None and rd != 31
    has_ra = ra is not None
    has_rb = rb is not None
    next_idx = idx + 1
    enter_trace = core._enter_trace

    def step():
        if is_lda:
            if fwrites:
                regs[rd] = int(regs[ra]) + disp
        elif is_move:
            if fwrites:
                regs[rd] = regs[ra]
        elif op_fn is not None:
            a = regs[ra]
            b = regs[rb] if has_rb else imm
            value = op_fn(a, b)
            if fwrites:
                regs[rd] = value
        clock = core._issue_clock
        cost = issue_cost
        if helper.busy_until > clock:
            cost = issue_cost * interference
        issue = clock + cost
        stall = core._fetch_stall_until
        if issue < stall:
            issue = stall
        ri = core._rob_idx
        rob_limit = rob[ri]
        if issue < rob_limit:
            issue = rob_limit
        core._issue_clock = issue
        if synthetic:
            stats.synthetic_executed += 1
        else:
            stats.committed += 1
            stats.trace_committed += 1
        if issue_completes:
            completion = issue
        else:
            start = issue
            if has_ra:
                r = ready[ra]
                if r > start:
                    start = r
            if has_rb:
                r = ready[rb]
                if r > start:
                    start = r
            completion = start + latency
            if twrites:
                ready[rd] = completion
        rob[ri] = completion
        ri += 1
        if ri == rob_len:
            ri = 0
        core._rob_idx = ri
        if completion > core._completion_max:
            core._completion_max = completion
        if is_last:
            core._finish_trace(trace, completed=True)
            next_pc = trace.fallthrough_pc
            ctx.pc = next_pc
            t = patch_get(next_pc)
            if t is not None:
                enter_trace(t, next_pc)
        else:
            core._trace_idx = next_idx

    return step


# ---------------------------------------------------------------------------
# Batched basic blocks.  The batched loop in ``SMTCore._run_fast`` (taken
# only when neither a runtime nor an injector needs per-step hooks) can
# go one step further than calling per-instruction closures in sequence:
# a straight-line run of pure-register instructions touches no memory,
# no control flow, and no hook, so the scalar pipeline state
# (``_issue_clock``, ``_rob_idx``, ``_completion_max``, the fetch stall)
# can live in locals for the whole run and be written back once.  That
# removes the per-instruction closure call and every per-instruction
# ``core.<attr>`` read/write, while performing the *identical* float
# arithmetic in the identical order.
#
# ``stats.committed`` is accumulated and added once per run: nothing
# observes it between the instructions of a batch (the watchdog clamp in
# ``_run_fast`` guarantees checks land on batch boundaries), and integer
# addition is associative.  ``_fetch_stall_until`` is read once: only
# branch/jump handlers write it, and a batch contains none.  The memory
# hierarchy is called through the same bound methods with the same
# arguments in the same order as the per-instruction handlers, so every
# fill, outcome and memory stat is identical.
# ---------------------------------------------------------------------------
_K_LDA, _K_MOVE, _K_ALU, _K_NOP = 0, 1, 2, 3
_K_LOAD, _K_STORE, _K_PREFETCH = 4, 5, 6


def compile_batches(core):
    """Return ``batches[pc]`` = one closure executing the whole batchable
    run starting at ``pc``, or None where the run is a single
    instruction (the per-instruction handler wins there).

    Only used by cores running without runtime/injector hooks, so the
    helper-interference check compiles away entirely (matching the
    per-instruction handlers, which compiled it away for the same
    reason when ``core.runtime`` is None).
    """
    instructions = core.program.instructions
    lens = block_lengths(instructions)
    batches = [None] * len(instructions)
    for pc, ln in enumerate(lens):
        if ln >= 2:
            batches[pc] = _compile_batch(
                core, pc, instructions[pc:pc + ln]
            )
    return batches


def _compile_batch(core, pc, insts):
    ctx = core.ctx
    regs = ctx.regs
    ready = core._reg_ready
    rob = core._rob
    rob_len = len(rob)
    loadq = core._loadq
    stats = core.stats
    issue_cost = core._issue_cost
    read = core.memory.read
    read_quiet = core.memory.read_quiet
    write = core.memory.write
    hier_load = core.hierarchy.load
    hier_store = core.hierarchy.store
    hier_prefetch = core.hierarchy.software_prefetch
    n = len(insts)
    next_pc = pc + n

    specs = []
    for i, inst in enumerate(insts):
        op = inst.opcode
        if op is Opcode.LDA:
            kind = _K_LDA
        elif op is Opcode.MOVE:
            kind = _K_MOVE
        elif op is Opcode.NOP:
            kind = _K_NOP
        elif op in LOAD_OPCODES:
            kind = _K_LOAD
        elif op is Opcode.STQ:
            kind = _K_STORE
        elif op is Opcode.PREFETCH:
            kind = _K_PREFETCH
        else:
            kind = _K_ALU
        rd = inst.rd
        specs.append((
            kind,
            ALU_OPS.get(op),
            rd,
            inst.ra,
            inst.rb,
            inst.imm,
            inst.disp,
            _alu_latency(op),
            rd != 31,                       # fwrites (as _orig_reg_op)
            rd is not None and rd != 31,    # twrites
            inst.ra is not None,
            inst.rb is not None,
            pc + i,                         # this instruction's pc
            read_quiet if op is Opcode.LDQ_NF else read,
            inst,                           # PREFETCH reads disp live
        ))
    specs = tuple(specs)

    def run_block():
        clock = core._issue_clock
        stall = core._fetch_stall_until
        ri = core._rob_idx
        li = core._loadq_idx
        cmax = core._completion_max
        for (kind, op_fn, rd, ra, rb, imm, disp, latency,
             fwrites, twrites, has_ra, has_rb, ipc,
             read_fn, inst_ref) in specs:
            # Functional execute (same per-kind expressions as the
            # per-instruction factories).
            if kind == _K_ALU:
                b = regs[rb] if has_rb else imm
                value = op_fn(regs[ra], b)
                if fwrites:
                    regs[rd] = value
            elif kind == _K_LOAD:
                ea = int(regs[ra]) + disp
                if fwrites:
                    regs[rd] = read_fn(ea)
            elif kind == _K_LDA:
                if fwrites:
                    regs[rd] = int(regs[ra]) + disp
            elif kind == _K_MOVE:
                if fwrites:
                    regs[rd] = regs[ra]
            elif kind == _K_STORE:
                ea = int(regs[ra]) + disp
                write(ea, regs[rd])
            elif kind == _K_PREFETCH:
                # disp read live: repairs patch it in place
                ea = int(regs[ra]) + inst_ref.disp
            # _issue (no runtime => no interference arm).
            issue = clock + issue_cost
            if issue < stall:
                issue = stall
            lim = rob[ri]
            if issue < lim:
                issue = lim
            clock = issue
            # Per-kind timing (mirrors _time_alu / _time_load / the
            # store and prefetch arms of the per-instruction handlers).
            if kind <= _K_ALU:  # LDA / MOVE / ALU
                start = issue
                if has_ra:
                    r = ready[ra]
                    if r > start:
                        start = r
                if has_rb:
                    r = ready[rb]
                    if r > start:
                        start = r
                completion = start + latency
                if twrites:
                    ready[rd] = completion
            elif kind == _K_LOAD:
                access = issue
                addr_ready = ready[ra]
                if addr_ready > access:
                    access = addr_ready
                lq_limit = loadq[li]
                if lq_limit > access:
                    access = lq_limit
                outcome = hier_load(ipc, ea, int(access))
                completion = access + outcome.latency
                loadq[li] = completion
                li += 1
                if li == _MEM_QUEUE:
                    li = 0
                if twrites:
                    ready[rd] = completion
                stats.loads_executed += 1
                okind = outcome.kind
                if okind is not _HIT and okind is not _HIT_PF:  # is_miss
                    stats.misses_total += 1
                    by_pc = stats.miss_count_by_pc
                    by_pc[ipc] = by_pc.get(ipc, 0) + 1
            elif kind == _K_NOP:
                completion = issue
            elif kind == _K_STORE:
                completion = max(issue, ready[ra], ready[rd]) + 1
                hier_store(ea, int(completion))
            else:  # _K_PREFETCH
                access = max(issue, ready[ra])
                hier_prefetch(ea, int(access))
                completion = access
            # _retire
            rob[ri] = completion
            ri += 1
            if ri == rob_len:
                ri = 0
            if completion > cmax:
                cmax = completion
        core._issue_clock = clock
        core._rob_idx = ri
        core._loadq_idx = li
        core._completion_max = cmax
        stats.committed += n
        ctx.pc = next_pc

    return run_block
