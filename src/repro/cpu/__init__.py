"""Processor substrate: thread contexts, functional executor, timing core."""

from .context import ThreadContext
from .core import CoreStats, SMTCore
from .executor import ExecResult, Executor

__all__ = ["CoreStats", "ExecResult", "Executor", "SMTCore", "ThreadContext"]
