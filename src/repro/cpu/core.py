"""The SMT core timing model.

SMTSIM (the paper's simulator) is a cycle-accurate 20-stage out-of-order
SMT model.  Re-running that per-cycle in Python is not viable, so the core
here is a *dataflow timing model* — the standard critical-path abstraction
of an OOO machine:

* instructions issue in program order at ``issue_width`` per cycle;
* each instruction *completes* at ``max(issue, sources ready) + latency``;
  completions do not block later issues, so independent work overlaps;
* a ROB window constrains issue: instruction *k* cannot issue before
  instruction *k − rob_entries* completed (a full window stalls the
  front end exactly like a real ROB);
* a 64-entry memory queue likewise bounds loads in flight;
* a mispredicted branch stalls fetch until ``resolve + penalty``.

This reproduces the behaviours the paper's results rest on: independent
strided misses overlap (memory-level parallelism, bounded by the ROB and
the fill bus), dependent pointer-chasing misses serialise, long-latency
loads that feed branches hurt doubly, and software prefetch instructions
cost issue bandwidth but never stall.

The core executes two kinds of instruction streams: the original program,
and linked hot traces (entered when the PC hits a patched address, exited
when a trace branch goes the unexpected way).  A narrow hook interface
(duck-typed ``runtime``) lets Trident observe branches, trace loads, and
trace executions without the core knowing anything about optimization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..config import MachineConfig
from ..isa.opcodes import Opcode
from ..isa.program import Program
from ..memory.hierarchy import MemoryHierarchy
from ..memory.mainmem import DataMemory
from .context import ThreadContext
from .executor import Executor
from .fastpath import (
    ALU_LATENCY,
    compile_batches,
    compile_program,
    compile_trace,
)

#: Execution latencies (cycles) by opcode class.
_INT_LATENCY = 1
_MUL_LATENCY = 3
_FP_LATENCY = 4
_DIV_LATENCY = 12
_MEM_QUEUE = 64


@dataclass
class CoreStats:
    """Counters the harness reads after a run."""

    committed: int = 0            # original-program instructions
    synthetic_executed: int = 0   # optimizer-inserted instructions
    trace_committed: int = 0      # original instructions executed via traces
    loads_executed: int = 0
    branch_mispredicts: int = 0
    conditional_branches: int = 0
    trace_entries: int = 0
    trace_exits_early: int = 0
    #: Demand-load misses, total and within hot traces (Figure 4).
    misses_total: int = 0
    misses_in_traces: int = 0
    #: Misses per original load PC, both inside and outside traces.
    miss_count_by_pc: Dict[int, int] = field(default_factory=dict)

    def reset_measurement(self) -> None:
        """Zero the per-measurement counters at the end of warmup.

        ``committed`` is left alone — it drives the run budget and the
        harness measures IPC from snapshots.
        """
        self.loads_executed = 0
        self.branch_mispredicts = 0
        self.conditional_branches = 0
        self.misses_total = 0
        self.misses_in_traces = 0
        self.miss_count_by_pc = {}


class SMTCore:
    """Single main-thread timing simulation with hot-trace execution."""

    def __init__(
        self,
        program: Program,
        memory: DataMemory,
        hierarchy: MemoryHierarchy,
        config: MachineConfig,
        runtime: Optional[object] = None,
        fast: bool = True,
    ) -> None:
        self.program = program
        self.memory = memory
        self.hierarchy = hierarchy
        self.config = config
        self.runtime = runtime
        #: Use the pre-decoded fast interpreter (repro.cpu.fastpath).
        #: ``fast=False`` keeps the generic step loop; both paths are
        #: byte-identical (tests/test_fastpath_equivalence.py).
        self.fast = fast
        #: Resilience hooks (repro.faults), injected by the Simulation:
        #: a FaultInjector ticked every step, and a Watchdog checked every
        #: ``watchdog.check_interval`` steps.  Both optional and duck-typed.
        self.injector: Optional[object] = None
        self.watchdog: Optional[object] = None
        #: Observability hook (repro.obs): one attribute check per emit
        #: site when disabled.  Consecutive entries of the same trace
        #: collapse to one event so hot loops don't flood the ring.
        self.obs: Optional[object] = None
        self._obs_last_trace: Optional[int] = None

        self.ctx = ThreadContext(entry=program.entry)
        self.executor = Executor(memory)
        self.stats = CoreStats()

        # Timing state.
        self._issue_cost = 1.0 / config.issue_width
        self._issue_clock = 0.0
        self._fetch_stall_until = 0.0
        self._completion_max = 0.0
        self._reg_ready = [0.0] * 32
        self._rob = [0.0] * config.rob_entries
        self._rob_idx = 0
        self._loadq = [0.0] * _MEM_QUEUE
        self._loadq_idx = 0

        # Branch predictor: 2-bit counters, direct-mapped by branch PC.
        self._bp_table = [2] * 4096

        # Trace execution state.
        self._trace = None
        self._trace_idx = 0
        self._trace_entry_issue = 0.0

        # Fast-path state: per-PC decoded handlers + basic-block run
        # lengths for the program (built lazily on the first run), and
        # the handler list for the currently-executing trace.
        self._fast_handlers = None
        self._fast_block_len = None
        self._fast_batches = None
        self._trace_handlers = None

    # ------------------------------------------------------------------
    # Checkpointing (repro.checkpoint): the fast-path caches are closures
    # over live component state and cannot (and need not) be pickled —
    # they are pure derived state, rebuilt lazily by the next run call
    # (and eagerly for a mid-trace core by checkpoint.restore, which
    # needs the handler list before the next step).
    _VOLATILE = (
        "_fast_handlers",
        "_fast_block_len",
        "_fast_batches",
        "_trace_handlers",
    )

    def __getstate__(self):
        state = dict(self.__dict__)
        for name in self._VOLATILE:
            state[name] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    @property
    def cycles(self) -> float:
        """Total execution time so far (critical-path completion)."""
        return max(self._completion_max, self._issue_clock)

    def snapshot(self) -> tuple:
        """(committed, cycles) — for interval IPC measurements."""
        return (self.stats.committed, self.cycles)

    # ------------------------------------------------------------------
    # Timing helpers.
    # ------------------------------------------------------------------
    def _issue(self) -> float:
        """Advance the front end and return this instruction's issue time."""
        cost = self._issue_cost
        runtime = self.runtime
        if runtime is not None and runtime.helper_busy_until > self._issue_clock:
            cost *= self.config.helper_interference
        issue = self._issue_clock + cost
        if issue < self._fetch_stall_until:
            issue = self._fetch_stall_until
        rob_limit = self._rob[self._rob_idx]
        if issue < rob_limit:
            issue = rob_limit
        self._issue_clock = issue
        return issue

    def _retire(self, completion: float) -> None:
        self._rob[self._rob_idx] = completion
        self._rob_idx += 1
        if self._rob_idx == len(self._rob):
            self._rob_idx = 0
        if completion > self._completion_max:
            self._completion_max = completion

    def _predict_branch(self, pc: int, taken: bool) -> bool:
        """Update the 2-bit predictor; return True on a correct prediction."""
        slot = pc & 4095
        counter = self._bp_table[slot]
        predicted = counter >= 2
        if taken:
            if counter < 3:
                self._bp_table[slot] = counter + 1
        else:
            if counter > 0:
                self._bp_table[slot] = counter - 1
        return predicted == taken

    # ------------------------------------------------------------------
    # Per-kind timing.  Each returns the completion time.
    # ------------------------------------------------------------------
    def _time_load(
        self, inst, issue: float, ea: int, tag_pc: int, synthetic: bool
    ):
        ready = self._reg_ready
        access = issue
        addr_ready = ready[inst.ra]
        if addr_ready > access:
            access = addr_ready
        lq_limit = self._loadq[self._loadq_idx]
        if lq_limit > access:
            access = lq_limit
        outcome = self.hierarchy.load(
            tag_pc, ea, int(access)
        ) if not synthetic else self.hierarchy.load_synthetic(ea, int(access))
        completion = access + outcome.latency
        self._loadq[self._loadq_idx] = completion
        self._loadq_idx += 1
        if self._loadq_idx == _MEM_QUEUE:
            self._loadq_idx = 0
        if inst.rd is not None and inst.rd != 31:
            ready[inst.rd] = completion
        return completion, outcome, access

    def _time_alu(self, inst, issue: float) -> float:
        ready = self._reg_ready
        start = issue
        ra = inst.ra
        if ra is not None and ready[ra] > start:
            start = ready[ra]
        rb = inst.rb
        if rb is not None and ready[rb] > start:
            start = ready[rb]
        completion = start + ALU_LATENCY.get(inst.opcode, _INT_LATENCY)
        if inst.rd is not None and inst.rd != 31:
            ready[inst.rd] = completion
        return completion

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------
    def run(self, max_instructions: int, drain: bool = True) -> CoreStats:
        """Run until ``max_instructions`` original instructions or HALT.

        ``drain=False`` skips the end-of-call fill drain — for callers
        that stop mid-run to sample and resume: the drain looks one cycle
        ahead, so draining at a chunk boundary would install fills
        earlier than an unchunked run and fork the cache state.

        Raises :class:`~repro.errors.SimulationStallError` when an armed
        watchdog sees a commit stall or an exhausted cycle or wall-time
        budget.
        """
        watchdog = self.watchdog
        if watchdog is not None:
            watchdog.start()
            watchdog.reset_progress()
        if self.fast:
            self._run_fast(max_instructions)
        else:
            self._run_slow(max_instructions)
        if drain:
            self.hierarchy.drain(int(self.cycles) + 1)
        return self.stats

    def _run_slow(self, budget: int) -> None:
        """The generic re-decoding step loop (``fast=False``)."""
        stats = self.stats
        injector = self.injector
        watchdog = self.watchdog
        steps_until_check = 0
        if watchdog is not None:
            steps_until_check = watchdog.check_interval
        while not self.ctx.halted and stats.committed < budget:
            if self._trace is not None:
                self._step_trace()
            else:
                self._step_original()
            runtime = self.runtime
            if runtime is not None:
                runtime.tick(self._issue_clock)
            if injector is not None:
                injector.tick(self._issue_clock, stats.committed)
            if watchdog is not None:
                steps_until_check -= 1
                if steps_until_check <= 0:
                    steps_until_check = watchdog.check_interval
                    watchdog.check(stats.committed, self.cycles)

    def _run_fast(self, budget: int) -> None:
        """Pre-decoded dispatch loop; see :mod:`repro.cpu.fastpath`.

        Two variants.  With a runtime or injector attached, every step
        is followed by the same ``runtime.tick``/``injector.tick``/
        watchdog sequence as :meth:`_run_slow`, in the same order, so
        helper-thread dispatch and fault timing are cycle-identical.
        Without them, straight-line runs of pure-register instructions
        execute as a batch: no memory, branch, or hook can fire inside
        a batch, and the watchdog clamp below makes every
        ``watchdog.check`` land on the exact step it would have in the
        per-step loop.
        """
        ctx = self.ctx
        stats = self.stats
        runtime = self.runtime
        injector = self.injector
        watchdog = self.watchdog
        handlers = self._fast_handlers
        if handlers is None:
            handlers, self._fast_block_len = compile_program(self)
            self._fast_handlers = handlers
        check_interval = 0
        steps_until_check = 0
        if watchdog is not None:
            check_interval = watchdog.check_interval
            steps_until_check = check_interval

        if runtime is not None or injector is not None:
            while not ctx.halted and stats.committed < budget:
                if self._trace is not None:
                    self._trace_handlers[self._trace_idx]()
                else:
                    handlers[ctx.pc]()
                if runtime is not None:
                    runtime.tick(self._issue_clock)
                if injector is not None:
                    injector.tick(self._issue_clock, stats.committed)
                if watchdog is not None:
                    steps_until_check -= 1
                    if steps_until_check <= 0:
                        steps_until_check = check_interval
                        watchdog.check(stats.committed, self.cycles)
            return

        # No per-step hooks: batched basic-block execution.  (Traces
        # cannot be active here — entering one requires a runtime.)
        # Full blocks run as a single pre-compiled closure that keeps
        # the scalar pipeline state in locals (see fastpath.compile_
        # batches); clamped runs — budget tail or a watchdog boundary —
        # fall back to stepping the per-instruction handlers.
        block_len = self._fast_block_len
        batches = self._fast_batches
        if batches is None:
            batches = compile_batches(self)
            self._fast_batches = batches
        while not ctx.halted and stats.committed < budget:
            pc = ctx.pc
            run_len = block_len[pc]
            remaining = budget - stats.committed
            if run_len > remaining:
                run_len = remaining
            if watchdog is not None:
                if run_len > steps_until_check:
                    run_len = steps_until_check
            if run_len > 1:
                if run_len == block_len[pc]:
                    batches[pc]()
                else:
                    for handler in handlers[pc:pc + run_len]:
                        handler()
            else:
                handlers[pc]()
                run_len = 1
            if watchdog is not None:
                steps_until_check -= run_len
                if steps_until_check <= 0:
                    steps_until_check = check_interval
                    watchdog.check(stats.committed, self.cycles)

    def _enter_trace_if_patched(self, pc: int) -> None:
        runtime = self.runtime
        if runtime is None:
            return
        trace = runtime.trace_at(pc)
        if trace is not None:
            self._enter_trace(trace, pc)

    def _enter_trace(self, trace, pc: int) -> None:
        """Switch execution into ``trace`` (the PC hit a patched head).

        Split from :meth:`_enter_trace_if_patched` so decoded fast-path
        handlers, which probe the patch map themselves, can enter
        directly without re-resolving the trace.
        """
        self._trace = trace
        self._trace_idx = 0
        self._trace_entry_issue = self._issue_clock
        if self.fast:
            # Decoded handlers are cached on the trace, keyed on
            # body identity + length: derived traces are new
            # objects (no stale cache), and in-place patches to
            # prefetch displacements are read live by the handlers
            # so they never invalidate the cache.
            cached = getattr(trace, "_fast_cache", None)
            if (
                cached is not None
                and cached[0] is trace.body
                and cached[1] == len(trace.body)
            ):
                self._trace_handlers = cached[2]
            else:
                handlers = compile_trace(self, trace)
                trace._fast_cache = (trace.body, len(trace.body), handlers)
                self._trace_handlers = handlers
        self.stats.trace_entries += 1
        obs = self.obs
        if obs is not None and trace.trace_id != self._obs_last_trace:
            self._obs_last_trace = trace.trace_id
            obs.emit(
                "trace_enter",
                self._issue_clock,
                trace_id=trace.trace_id,
                pc=pc,
            )

    def _step_original(self) -> None:
        ctx = self.ctx
        pc = ctx.pc
        inst = self.program.instructions[pc]
        res = self.executor.execute(inst, ctx)
        issue = self._issue()
        stats = self.stats
        stats.committed += 1

        next_pc = pc + 1
        op = inst.opcode
        if res.ea is not None:
            if inst.is_load:
                completion, outcome, _access = self._time_load(
                    inst, issue, res.ea, pc, synthetic=False
                )
                stats.loads_executed += 1
                if outcome.is_miss:
                    stats.misses_total += 1
                    by_pc = stats.miss_count_by_pc
                    by_pc[pc] = by_pc.get(pc, 0) + 1
            elif op is Opcode.STQ:
                ready = self._reg_ready
                completion = max(issue, ready[inst.ra], ready[inst.rd]) + 1
                self.hierarchy.store(res.ea, int(completion))
            else:  # PREFETCH in original code (rare; legal)
                access = max(issue, self._reg_ready[inst.ra])
                self.hierarchy.software_prefetch(res.ea, int(access))
                completion = access
        elif res.taken is not None:
            if op is Opcode.BR:
                completion = issue
                next_pc = inst.target
            elif op is Opcode.JMP:
                resolve = max(issue, self._reg_ready[inst.ra]) + _INT_LATENCY
                self._fetch_stall_until = (
                    resolve + self.config.mispredict_penalty
                )
                completion = resolve
                next_pc = res.jump_target
            else:
                taken = res.taken
                stats.conditional_branches += 1
                resolve = max(issue, self._reg_ready[inst.ra]) + _INT_LATENCY
                if not self._predict_branch(pc, taken):
                    stats.branch_mispredicts += 1
                    self._fetch_stall_until = (
                        resolve + self.config.mispredict_penalty
                    )
                completion = resolve
                if taken:
                    next_pc = inst.target
                runtime = self.runtime
                if runtime is not None:
                    runtime.on_branch(pc, taken, inst.target, self._issue_clock)
        elif res.halted:
            completion = issue
        elif op is Opcode.NOP or op is Opcode.HALT:
            completion = issue
        else:
            completion = self._time_alu(inst, issue)

        self._retire(completion)
        ctx.pc = next_pc
        if not ctx.halted:
            self._enter_trace_if_patched(next_pc)

    def _step_trace(self) -> None:
        trace = self._trace
        body = trace.body
        tinst = body[self._trace_idx]
        inst = tinst.inst
        ctx = self.ctx
        res = self.executor.execute(inst, ctx)
        issue = self._issue()
        stats = self.stats
        synthetic = tinst.synthetic
        if synthetic:
            stats.synthetic_executed += 1
        else:
            stats.committed += 1
            stats.trace_committed += 1

        exit_pc = None
        op = inst.opcode
        if res.ea is not None:
            if inst.is_load:
                completion, outcome, access = self._time_load(
                    inst, issue, res.ea, tinst.orig_pc, synthetic=synthetic
                )
                if not synthetic:
                    stats.loads_executed += 1
                    if outcome.is_miss:
                        stats.misses_total += 1
                        stats.misses_in_traces += 1
                        by_pc = stats.miss_count_by_pc
                        by_pc[tinst.orig_pc] = by_pc.get(tinst.orig_pc, 0) + 1
                    runtime = self.runtime
                    if runtime is not None:
                        runtime.on_trace_load(
                            tinst.orig_pc, trace, res.ea, outcome, access
                        )
            elif op is Opcode.STQ:
                ready = self._reg_ready
                completion = max(issue, ready[inst.ra], ready[inst.rd]) + 1
                self.hierarchy.store(res.ea, int(completion))
            else:  # PREFETCH
                access = max(issue, self._reg_ready[inst.ra])
                self.hierarchy.software_prefetch(res.ea, int(access))
                completion = access
        elif res.taken is not None and op is not Opcode.BR:
            taken = res.taken
            stats.conditional_branches += 1
            resolve = max(issue, self._reg_ready[inst.ra]) + _INT_LATENCY
            if not self._predict_branch(tinst.orig_pc, taken):
                stats.branch_mispredicts += 1
                self._fetch_stall_until = (
                    resolve + self.config.mispredict_penalty
                )
            completion = resolve
            if taken != tinst.expected_taken:
                exit_pc = inst.target if taken else tinst.orig_pc + 1
        elif op is Opcode.BR:
            completion = issue
        elif res.halted:
            completion = issue
        elif op is Opcode.NOP:
            completion = issue
        else:
            completion = self._time_alu(inst, issue)

        self._retire(completion)

        if ctx.halted:
            self._trace = None
            return

        if exit_pc is not None:
            stats.trace_exits_early += 1
            self._finish_trace(trace, completed=False)
            ctx.pc = exit_pc
            self._enter_trace_if_patched(exit_pc)
            return

        self._trace_idx += 1
        if self._trace_idx >= len(body):
            self._finish_trace(trace, completed=True)
            next_pc = trace.fallthrough_pc
            ctx.pc = next_pc
            self._enter_trace_if_patched(next_pc)

    def _finish_trace(self, trace, completed: bool) -> None:
        self._trace = None
        self._trace_idx = 0
        obs = self.obs
        if obs is not None and not completed:
            obs.emit(
                "trace_exit",
                self._issue_clock,
                trace_id=trace.trace_id,
                early=True,
            )
        runtime = self.runtime
        if runtime is not None:
            duration = self._issue_clock - self._trace_entry_issue
            runtime.on_trace_execution(
                trace, duration, completed, self._issue_clock
            )
