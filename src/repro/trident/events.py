"""Optimization events and the hardware event queue.

Trident's monitoring hardware communicates with the software optimizer
through *hot events*.  Two kinds matter for this paper:

* :class:`HotTraceEvent` — the branch profiler saw a trace head get hot and
  captured a branch-direction bitmap for it (section 3.2, Trace Formation);
* :class:`DelinquentLoadEvent` — the DLT classified a load inside a linked
  hot trace as delinquent (section 3.3).

The queue is bounded like a hardware structure: when it is full, new events
are dropped (and counted) rather than stalling anything.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple, Union


@dataclass(frozen=True)
class HotTraceEvent:
    """A hot trace head plus its captured branch directions."""

    head_pc: int
    directions: Tuple[bool, ...]
    cycle: float


@dataclass(frozen=True)
class DelinquentLoadEvent:
    """A load in a hot trace crossed the delinquency thresholds."""

    load_pc: int
    trace_id: int
    cycle: float


Event = Union[HotTraceEvent, DelinquentLoadEvent]


@dataclass
class EventQueueStats:
    enqueued: int = 0
    dropped: int = 0
    hot_trace_events: int = 0
    delinquent_load_events: int = 0


class EventQueue:
    """Bounded FIFO of optimization events."""

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self._queue: Deque[Event] = deque()
        self.stats = EventQueueStats()

    def push(self, event: Event) -> bool:
        """Enqueue; returns False (and counts a drop) when full."""
        if len(self._queue) >= self.capacity:
            self.stats.dropped += 1
            return False
        self._queue.append(event)
        self.stats.enqueued += 1
        if isinstance(event, HotTraceEvent):
            self.stats.hot_trace_events += 1
        else:
            self.stats.delinquent_load_events += 1
        return True

    def pop(self) -> Optional[Event]:
        if self._queue:
            return self._queue.popleft()
        return None

    def __len__(self) -> int:
        return len(self._queue)

    def pending_delinquent_pcs(self) -> set:
        """Load PCs with an event already waiting (for dedupe)."""
        return {
            e.load_pc
            for e in self._queue
            if isinstance(e, DelinquentLoadEvent)
        }
