"""The helper-thread model: registration structure plus cost accounting.

Trident spawns the optimizer as a helper thread on a spare SMT context.
The paper's own measurements say the helper is cheap (startup 2000 cycles,
active ≈2.2% of the time, ≤0.6% slowdown), so we model it as a *cost and
occupancy* account rather than a second simulated instruction stream (see
DESIGN.md's substitution table):

* an optimization job occupies the helper from dispatch until
  ``startup + work`` cycles later; its effects (linking a trace, patching a
  prefetch) apply at completion;
* while the helper is busy, the core charges the main thread the
  configured fetch/issue interference;
* total busy cycles feed Figure 3.

The :class:`RegistrationStructure` carries the fields the paper lists
(section 3.1); they are descriptive here — the fast-spawn mechanism they
enable is represented by the fixed startup cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass
class RegistrationStructure:
    """Per-process helper-thread registration (paper section 3.1)."""

    helper_entry_point: int = 0
    stack_pointer: int = 0
    global_data_pointer: int = 0
    code_cache_pointer: int = 0
    priority: int = 1  # helpers run at lower priority than the main thread


@dataclass
class HelperJob:
    """One scheduled optimization: runs ``apply`` at ``ready`` cycles."""

    ready: float
    apply: Callable[[], None]
    kind: str
    dispatched_at: float


class HelperThread:
    """Occupancy model of the optimization helper thread."""

    def __init__(self, startup_cycles: int) -> None:
        self.startup_cycles = startup_cycles
        self.registration = RegistrationStructure()
        self._job: Optional[HelperJob] = None
        #: Cycle until which the helper occupies its hardware context.
        self.busy_until: float = 0.0
        self.total_busy_cycles: float = 0.0
        self.jobs_run = 0
        self.jobs_by_kind: dict = {}
        # Fault-injection state (repro.faults): while stalled the helper
        # context is descheduled — the in-flight job is pushed back and no
        # new job dispatches.
        self.stalled_until: float = 0.0
        self.stalls = 0
        self.jobs_failed = 0
        #: Observability hook (repro.obs): set by the Simulation.
        self.obs = None

    @property
    def idle(self) -> bool:
        return self._job is None

    def available(self, cycle: float) -> bool:
        """True when a new job may dispatch at ``cycle``."""
        return self._job is None and cycle >= self.stalled_until

    def stall(self, cycle: float, duration: float) -> None:
        """Fault hook: deschedule the helper for ``duration`` cycles.

        An in-flight job resumes where it left off once the context comes
        back (its completion slips by the stall), and the extra occupancy
        is charged to the Figure-3 account.
        """
        self.stalled_until = max(self.stalled_until, cycle + duration)
        self.stalls += 1
        job = self._job
        if job is not None:
            job.ready += duration
            self.busy_until = job.ready
            self.total_busy_cycles += duration

    def fail_current_job(self) -> Optional[str]:
        """Fault hook: kill the in-flight job (its effects never apply).

        Returns the dropped job's kind, or None when the helper was idle.
        """
        job = self._job
        if job is None:
            return None
        self._job = None
        self.busy_until = 0.0
        self.jobs_failed += 1
        obs = self.obs
        if obs is not None:
            obs.emit(
                "helper_fail",
                None,
                job=job.kind,
                began=job.dispatched_at,
            )
        return job.kind

    def schedule(
        self,
        cycle: float,
        work_cycles: float,
        apply: Callable[[], None],
        kind: str,
    ) -> HelperJob:
        """Dispatch a job at ``cycle``; it completes after startup + work."""
        if self._job is not None:
            raise RuntimeError("helper thread already busy")
        duration = self.startup_cycles + work_cycles
        job = HelperJob(
            ready=cycle + duration,
            apply=apply,
            kind=kind,
            dispatched_at=cycle,
        )
        self._job = job
        self.busy_until = job.ready
        self.total_busy_cycles += duration
        obs = self.obs
        if obs is not None:
            obs.emit("helper_begin", cycle, job=kind, ready=job.ready)
        return job

    def tick(self, cycle: float) -> bool:
        """Apply the running job if it has completed; True when it did."""
        job = self._job
        if job is None or cycle < job.ready:
            return False
        self._job = None
        self.jobs_run += 1
        self.jobs_by_kind[job.kind] = self.jobs_by_kind.get(job.kind, 0) + 1
        obs = self.obs
        if obs is not None:
            # Everything the job's apply() emits (repairs, links,
            # maturity) is stamped at the job's completion cycle.
            obs.now = job.ready
            obs.emit(
                "helper_end",
                job.ready,
                job=job.kind,
                began=job.dispatched_at,
            )
        job.apply()
        return True

    def active_fraction(self, total_cycles: float) -> float:
        """Helper-busy cycles as a fraction of ``total_cycles`` (Figure 3)."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.total_busy_cycles / total_cycles)
