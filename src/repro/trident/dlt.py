"""The Delinquent Load Table (DLT) — paper section 3.3.

A 2-way associative, LRU-replaced hardware table, tagged by load PC,
updated on every committed load that belongs to a linked hot trace.  Each
entry tracks, per the paper:

* **access counter** — accesses in the current monitoring window (window
  size N = 256 by default);
* **miss counter** and **total miss latency** — giving the window's miss
  rate and average miss latency;
* **stride state** — last effective address, last stride, and a 4-bit
  confidence counter incremented by 1 on a matching stride and decremented
  by 7 on a mismatch; the load is *stride predictable* at confidence 15;
* **mature flag** — set by the optimizer when a load cannot be (further)
  helped; a mature load never fires events until its entry is evicted.

At the end of a window (access counter reaching N), the load is delinquent
iff its miss counter reached the threshold (8 ⇒ 3% at N=256) *and* its
average miss latency exceeds half the L2-miss latency.  A delinquent load
fires an event; its counters are left in place for the optimizer to read
and are cleared by the helper thread (``clear_window``).  Otherwise the
counters reset and monitoring continues.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import DLTConfig


@dataclass
class DLTEntry:
    """One monitored load."""

    tag: int  # load PC
    access_counter: int = 0
    miss_counter: int = 0
    total_miss_latency: int = 0
    stride: int = 0
    confidence: int = 0
    last_addr: Optional[int] = None
    mature: bool = False
    #: An event fired for this window and awaits optimizer processing.
    event_pending: bool = False

    def miss_rate(self) -> float:
        if self.access_counter == 0:
            return 0.0
        return self.miss_counter / self.access_counter

    def average_miss_latency(self) -> float:
        if self.miss_counter == 0:
            return 0.0
        return self.total_miss_latency / self.miss_counter

    def average_access_latency(self, l1_latency: int) -> float:
        """The repair metric of section 3.5.2: hit latency plus the
        window's amortised miss latency."""
        if self.access_counter == 0:
            return float(l1_latency)
        return l1_latency + self.total_miss_latency / self.access_counter


class DelinquentLoadTable:
    """Set-associative table of :class:`DLTEntry`, LRU per set."""

    def __init__(
        self, config: DLTConfig, delinquency_latency_threshold: float
    ) -> None:
        self.config = config
        #: Average miss latency a load must exceed to be delinquent
        #: (half the L2-miss latency in the paper).
        self.latency_threshold = delinquency_latency_threshold
        self._num_sets = max(1, config.entries // config.associativity)
        self._sets: Dict[int, OrderedDict] = {}
        self.evictions = 0
        self.events_fired = 0
        self.windows_evaluated = 0
        #: Observability hook (repro.obs).  ``set_mature`` runs inside
        #: helper-job closures, so its emits use the observer's logical
        #: clock (the job's completion cycle).
        self.obs = None

    # ------------------------------------------------------------------
    def _bucket(self, pc: int) -> OrderedDict:
        index = pc % self._num_sets
        bucket = self._sets.get(index)
        if bucket is None:
            bucket = OrderedDict()
            self._sets[index] = bucket
        return bucket

    def peek(self, pc: int) -> Optional[DLTEntry]:
        """Probe without allocating *or* touching LRU order.

        Observability reads go through here so an attached observer can
        never perturb replacement decisions (enabled and disabled runs
        must stay bit-for-bit identical).
        """
        return self._bucket(pc).get(pc)

    def lookup(self, pc: int) -> Optional[DLTEntry]:
        """Probe without allocating (used by the optimizer)."""
        bucket = self._bucket(pc)
        entry = bucket.get(pc)
        if entry is not None:
            bucket.move_to_end(pc)
        return entry

    def _lookup_or_allocate(self, pc: int) -> DLTEntry:
        bucket = self._bucket(pc)
        entry = bucket.get(pc)
        if entry is not None:
            bucket.move_to_end(pc)
            return entry
        if len(bucket) >= self.config.associativity:
            bucket.popitem(last=False)  # LRU; clears mature with the entry
            self.evictions += 1
        entry = DLTEntry(tag=pc)
        bucket[pc] = entry
        return entry

    # ------------------------------------------------------------------
    def update(
        self, pc: int, addr: int, is_miss: bool, miss_latency: int
    ) -> bool:
        """Record one committed hot-trace load; True when an event fires."""
        entry = self._lookup_or_allocate(pc)
        cfg = self.config

        # Stride tracking happens on every access (not just misses).
        if entry.last_addr is not None:
            stride = addr - entry.last_addr
            if stride == entry.stride:
                entry.confidence = min(
                    cfg.confidence_max, entry.confidence + cfg.confidence_up
                )
            else:
                entry.confidence = max(
                    0, entry.confidence - cfg.confidence_down
                )
                entry.stride = stride
        entry.last_addr = addr

        if entry.event_pending:
            # Window counters stay frozen until the helper thread clears
            # them (paper section 3.3).  The event is re-offered: the
            # runtime may have been unable to service it when it first
            # fired (helper busy, trace being optimized).
            return True

        entry.access_counter += 1
        if is_miss:
            entry.miss_counter += 1
            entry.total_miss_latency += miss_latency

        if entry.access_counter < cfg.access_window:
            return False

        # End of the monitoring window: evaluate delinquency.
        self.windows_evaluated += 1
        delinquent = (
            not entry.mature
            and entry.miss_counter >= cfg.miss_threshold
            and entry.average_miss_latency() > self.latency_threshold
        )
        if delinquent:
            entry.event_pending = True
            self.events_fired += 1
            return True
        # Not delinquent: reset and re-examine over the next window.
        self._reset_window(entry)
        return False

    @staticmethod
    def _reset_window(entry: DLTEntry) -> None:
        entry.access_counter = 0
        entry.miss_counter = 0
        entry.total_miss_latency = 0

    # ------------------------------------------------------------------
    # Optimizer-side operations.
    # ------------------------------------------------------------------
    def clear_window(self, pc: int) -> None:
        """Helper thread finished with this load: restart its window."""
        entry = self.lookup(pc)
        if entry is not None:
            self._reset_window(entry)
            entry.event_pending = False

    def evict(self, pc: int) -> bool:
        """Forcibly evict a load's entry (fault injection's eviction
        storm); True when an entry was dropped.  Indistinguishable from a
        capacity eviction: monitoring state and the mature flag are lost."""
        bucket = self._bucket(pc)
        if bucket.pop(pc, None) is None:
            return False
        self.evictions += 1
        return True

    def set_mature(self, pc: int) -> None:
        entry = self.lookup(pc)
        if entry is not None:
            newly = not entry.mature
            entry.mature = True
            entry.event_pending = False
            self._reset_window(entry)
            obs = self.obs
            if obs is not None and newly:
                obs.emit("mature", None, pc=pc)

    def is_stride_predictable(self, pc: int) -> bool:
        """True when the 4-bit confidence counter is saturated (15)."""
        entry = self.lookup(pc)
        return (
            entry is not None
            and entry.confidence >= self.config.confidence_max
        )

    def predicted_stride(self, pc: int) -> Optional[int]:
        entry = self.lookup(pc)
        if (
            entry is not None
            and entry.confidence >= self.config.confidence_max
            and entry.stride != 0
        ):
            return entry.stride
        return None

    def is_delinquent_now(self, pc: int) -> bool:
        """Partial-window delinquency check (section 3.4.1): when the
        optimizer scans a trace's other loads, a load part-way through its
        window is judged on its current counters, pro-rated."""
        entry = self.lookup(pc)
        if entry is None or entry.mature or entry.access_counter == 0:
            return False
        cfg = self.config
        required = cfg.miss_threshold * (
            entry.access_counter / cfg.access_window
        )
        # Require at least one miss so the latency average is meaningful.
        if entry.miss_counter < max(1.0, required):
            return False
        return entry.average_miss_latency() > self.latency_threshold

    # ------------------------------------------------------------------
    def entries(self) -> List[DLTEntry]:
        """All live entries (testing / statistics)."""
        result: List[DLTEntry] = []
        for bucket in self._sets.values():
            result.extend(bucket.values())
        return result
