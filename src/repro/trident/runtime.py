"""TridentRuntime: the event-driven optimization framework, assembled.

This object implements the narrow hook interface the
:class:`~repro.cpu.core.SMTCore` drives:

* ``trace_at(pc)`` — the code-cache patch check at fetch;
* ``on_branch`` — feeds the branch profiler (original-code branches only);
* ``on_trace_load`` — feeds the DLT and fires delinquent-load events;
* ``on_trace_execution`` — feeds the watch table;
* ``tick`` — completes helper-thread jobs and dispatches queued events;
* ``helper_busy_until`` — lets the core charge SMT interference.

Event flow (paper section 3.2): profiler saturation → HotTraceEvent →
helper forms, base-optimizes and links a trace; DLT window crossing →
DelinquentLoadEvent → helper inserts or repairs prefetches.  The watch
table's optimization flag suppresses further events for a trace already
being re-optimized.

``overhead_only`` reproduces the paper's section-5.1 cost measurement: the
optimizer runs (and charges interference) but its traces are never linked,
so the main thread executes unmodified code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Set

from ..config import MachineConfig, PrefetchPolicy, TridentConfig
from ..core.optimizer import PrefetchOptimizer
from ..isa.program import Program
from ..logutil import get_logger
from ..memory.stats import LoadOutcome
from .branch_profiler import BranchProfiler
from .code_cache import CodeCache
from .dlt import DelinquentLoadTable
from .events import DelinquentLoadEvent, EventQueue, HotTraceEvent
from .helper_thread import HelperThread
from .optimizations import optimize_trace_body
from .trace import HotTrace, TraceIdAllocator
from .trace_formation import form_trace
from .watch_table import WatchTable

_log = get_logger("trident")


@dataclass
class _LinkTraceApply:
    """Helper-job completion: link a freshly formed trace.

    An object rather than a closure so an in-flight job can ride inside a
    simulator snapshot (repro.checkpoint); both fields are already part
    of the simulated object graph, so pickling preserves identity.
    """

    runtime: "TridentRuntime"
    trace: HotTrace

    def __call__(self) -> None:
        rt = self.runtime
        trace = self.trace
        rt.code_cache.link(trace)
        rt.watch_table.register(
            trace.trace_id, trace.head_pc, len(trace.body)
        )
        rt.traces_linked += 1
        rt.trace_load_pcs.update(trace.load_pcs())
        if rt.obs is not None:
            # Runs inside the helper job: stamped at job completion
            # via the observer's logical clock.
            rt.obs.emit(
                "trace_link",
                None,
                trace_id=trace.trace_id,
                head_pc=trace.head_pc,
                length=len(trace.body),
            )
        _log.debug(
            "linked trace %d @ pc %d (%d instructions)",
            trace.trace_id, trace.head_pc, len(trace.body),
        )


@dataclass
class _OptimizeApply:
    """Helper-job completion: run the optimizer's action, then reset the
    watch-table optimization flag — "before the optimizer finishes, it
    resets the hot trace's optimization flag" — on both the old and (if
    regenerated) the new trace's entries.  Picklable for the same reason
    as :class:`_LinkTraceApply`."""

    runtime: "TridentRuntime"
    trace: HotTrace
    inner: Callable[[], None]

    def __call__(self) -> None:
        rt = self.runtime
        watch = rt.watch_table
        try:
            self.inner()
        finally:
            watch.set_optimizing(self.trace.trace_id, False)
            current = rt.code_cache.lookup(self.trace.head_pc)
            if current is not None:
                watch.set_optimizing(current.trace_id, False)


class TridentRuntime:
    """Everything Trident: monitoring hardware + helper-thread optimizer."""

    def __init__(
        self,
        program: Program,
        machine: MachineConfig,
        trident: TridentConfig,
        policy: PrefetchPolicy,
        overhead_only: bool = False,
        initial_distance_mode: Optional[str] = None,
    ) -> None:
        self.program = program
        self.machine = machine
        self.trident = trident
        self.policy = policy
        self.overhead_only = overhead_only

        self.profiler = BranchProfiler(trident)
        self.watch_table = WatchTable(trident.watch_table_entries)
        self.dlt = DelinquentLoadTable(
            trident.dlt,
            delinquency_latency_threshold=machine.l2_miss_latency / 2,
        )
        self.code_cache = CodeCache()
        self.helper = HelperThread(machine.helper_startup_cycles)
        self.events = EventQueue()
        #: Per-runtime trace ids: identically-configured runs number
        #: their traces identically (exported traces are reproducible).
        self.trace_ids = TraceIdAllocator()
        self.optimizer = PrefetchOptimizer(
            machine=machine,
            trident=trident,
            policy=policy,
            dlt=self.dlt,
            watch_table=self.watch_table,
            code_cache=self.code_cache,
            initial_distance_mode=initial_distance_mode,
            trace_ids=self.trace_ids,
        )
        self.traces_formed = 0
        self.traces_linked = 0
        self.traces_backed_out = 0
        # Fault-injection hooks (repro.faults): delinquent-load events
        # fired before this cycle are discarded (a misbehaving event bus).
        self.drop_dlt_events_until = 0.0
        self.dlt_events_dropped = 0
        #: Original PCs of loads that ever appeared in a linked trace.
        self.trace_load_pcs = set()
        #: Backout bookkeeping: head PC -> times its trace was unlinked.
        self._backout_counts = {}

        # Phase-aware mature clearing (optional; section 3.5.2's noted
        # future work).
        self.phase_changes = 0
        self._phase_loads = 0
        self._phase_misses = 0
        self._phase_prev_rate: Optional[float] = None

        # Observability hook (repro.obs): attach_observer wires this
        # runtime plus every sub-component it owns.
        self.obs = None
        self._m_dl_events = None

    def attach_observer(self, obs) -> None:
        """Wire the observer through Trident: runtime, DLT, helper,
        optimizer.  One call from the Simulation covers the subsystem."""
        self.obs = obs
        self._m_dl_events = obs.metrics.counter("trident.dl_events")
        self.dlt.obs = obs
        self.helper.obs = obs
        self.optimizer.attach_observer(obs)

    # ------------------------------------------------------------------
    # Core-facing hooks.
    # ------------------------------------------------------------------
    @property
    def helper_busy_until(self) -> float:
        return self.helper.busy_until

    def trace_at(self, pc: int) -> Optional[HotTrace]:
        if self.overhead_only:
            return None
        return self.code_cache.lookup(pc)

    def on_branch(
        self, pc: int, taken: bool, target: Optional[int], cycle: float
    ) -> None:
        event = self.profiler.on_branch(pc, taken, target, cycle)
        if event is not None:
            self.events.push(event)

    def on_trace_load(
        self,
        load_pc: int,
        trace: HotTrace,
        ea: int,
        outcome: LoadOutcome,
        cycle: float,
    ) -> None:
        if not self.policy.software_prefetching:
            return
        if self.trident.phase_detection:
            self._observe_phase(outcome.is_miss, cycle)
        fired = self.dlt.update(
            load_pc, ea, outcome.is_miss, outcome.miss_latency
        )
        if not fired:
            return
        if cycle < self.drop_dlt_events_until:
            # Fault window: the event is lost.  The window restarts so the
            # load must re-earn delinquency once the bus heals.
            self.dlt_events_dropped += 1
            self.dlt.clear_window(load_pc)
            if self.obs is not None:
                self.obs.emit(
                    "dl_event_lost", cycle, pc=load_pc,
                    trace_id=trace.trace_id,
                )
            return
        if self.watch_table.is_optimizing(trace.trace_id):
            # Re-optimization in flight: the DLT entry stays pending and
            # the event re-fires once the flag clears.
            return
        pushed = self.events.push(
            DelinquentLoadEvent(
                load_pc=load_pc, trace_id=trace.trace_id, cycle=cycle
            )
        )
        if pushed:
            self.watch_table.set_optimizing(trace.trace_id, True)
            obs = self.obs
            if obs is not None:
                self._m_dl_events.inc()
                entry = self.dlt.peek(load_pc)
                fields = {"pc": load_pc, "trace_id": trace.trace_id}
                if entry is not None:
                    fields["miss_rate"] = entry.miss_rate()
                    fields["avg_miss_latency"] = entry.average_miss_latency()
                obs.emit("dl_event", cycle, **fields)

    def on_trace_execution(
        self, trace: HotTrace, duration: float, completed: bool, cycle: float
    ) -> None:
        self.watch_table.record_execution(trace.trace_id, duration, completed)
        self._maybe_back_out(trace, cycle)

    def _maybe_back_out(self, trace: HotTrace, cycle: float = 0.0) -> None:
        """The watch table's second duty: back out of a trace whose
        captured path keeps diverging from actual execution (the paper's
        "identify and back out of hot traces that are under-performing").

        An unlinked head may be re-captured (the profiler may record a
        better direction mix next time), a bounded number of times.
        """
        entry = self.watch_table.lookup(trace.trace_id)
        if entry is None or entry.being_optimized:
            return
        cfg = self.trident
        if entry.executions < cfg.backout_min_executions:
            return
        ratio = entry.completed_executions / entry.executions
        if ratio >= cfg.backout_completion_threshold:
            return
        self.code_cache.unlink(trace)
        self.watch_table.remove(trace.trace_id)
        self.traces_backed_out += 1
        if self.obs is not None:
            self.obs.emit(
                "trace_unlink",
                cycle,
                trace_id=trace.trace_id,
                head_pc=trace.head_pc,
                completion_ratio=ratio,
            )
        _log.debug(
            "backed out trace %d @ pc %d (completion ratio %.2f)",
            trace.trace_id, trace.head_pc, ratio,
        )
        attempts = self._backout_counts.get(trace.head_pc, 0) + 1
        self._backout_counts[trace.head_pc] = attempts
        if attempts <= cfg.backout_max_retries:
            self.profiler.forget(trace.head_pc)
        # else: the head stays captured — no further traces for it.

    # ------------------------------------------------------------------
    # Phase detection (optional extension; off by default).
    # ------------------------------------------------------------------
    def _observe_phase(self, is_miss: bool, cycle: float = 0.0) -> None:
        cfg = self.trident
        self._phase_loads += 1
        if is_miss:
            self._phase_misses += 1
        if self._phase_loads < cfg.phase_interval_loads:
            return
        rate = self._phase_misses / self._phase_loads
        self._phase_loads = 0
        self._phase_misses = 0
        prev = self._phase_prev_rate
        self._phase_prev_rate = rate
        if prev is None:
            return
        floor = max(prev, 0.02)
        if abs(rate - prev) > cfg.phase_shift_threshold * floor:
            self._on_phase_change(cycle, prev_rate=prev, new_rate=rate)

    def _on_phase_change(
        self,
        cycle: float = 0.0,
        prev_rate: float = 0.0,
        new_rate: float = 0.0,
    ) -> None:
        """A working-set shift: matured loads may be tunable again, so
        clear every mature flag (DLT entries and repair records) and
        refresh the records' budgets."""
        self.phase_changes += 1
        if self.obs is not None:
            self.obs.emit(
                "phase_change",
                cycle,
                prev_miss_rate=prev_rate,
                new_miss_rate=new_rate,
            )
        _log.info(
            "phase change at cycle %.0f (miss rate %.3f -> %.3f)",
            cycle, prev_rate, new_rate,
        )
        for entry in self.dlt.entries():
            entry.mature = False
        seen = set()
        for trace in self.code_cache.linked_traces():
            for record in trace.meta.get("records", {}).values():
                if id(record) in seen:
                    continue
                seen.add(id(record))
                if record.kind != "stride":
                    continue
                record.mature = False
                record.pinned_repairs = 0
                record.consecutive_increases = 0
                record.prev_avg_latency = None
                record.repairs_left = max(
                    record.repairs_left, record.max_distance
                )

    def tick(self, cycle: float) -> None:
        # Called once per committed instruction: inline the idle case
        # (no job in flight) instead of paying helper.tick/available
        # calls to discover there is nothing to do.
        helper = self.helper
        if helper._job is None:
            if len(self.events) and cycle >= helper.stalled_until:
                self._dispatch(self.events.pop(), cycle)
            return
        helper.tick(cycle)
        if helper.available(cycle) and len(self.events):
            self._dispatch(self.events.pop(), cycle)

    def fail_helper_job(self) -> Optional[str]:
        """Fault hook: kill the in-flight helper job and recover.

        The job's effects are lost, so every watch-table optimization
        flag is cleared — otherwise the killed job's trace would be
        frozen out of optimization forever — and pending DLT windows
        restart so delinquency re-fires against the healed helper.
        """
        kind = self.helper.fail_current_job()
        if kind is None:
            return None
        self.watch_table.clear_optimizing_flags()
        for entry in self.dlt.entries():
            if entry.event_pending:
                self.dlt.clear_window(entry.tag)
        return kind

    # ------------------------------------------------------------------
    # Event dispatch (the helper thread's work).
    # ------------------------------------------------------------------
    def _dispatch(self, event, cycle: float) -> None:
        if isinstance(event, HotTraceEvent):
            self._dispatch_hot_trace(event, cycle)
        else:
            self._dispatch_delinquent_load(event, cycle)

    def _dispatch_hot_trace(self, event: HotTraceEvent, cycle: float) -> None:
        if self.code_cache.lookup(event.head_pc) is not None:
            return  # already linked (duplicate event)
        trace = form_trace(
            self.program, event.head_pc, event.directions, self.trident,
            ids=self.trace_ids,
        )
        if trace is None:
            return
        body, _counts = optimize_trace_body(trace.body)
        trace.body = body
        self.traces_formed += 1
        work = len(body) * self.trident.optimizer_cycles_per_instruction
        self.helper.schedule(
            cycle, work, _LinkTraceApply(runtime=self, trace=trace),
            kind="form",
        )

    def _dispatch_delinquent_load(
        self, event: DelinquentLoadEvent, cycle: float
    ) -> None:
        trace = self.code_cache.trace_by_id(event.trace_id)
        if trace is None:
            # The trace was replaced or backed out while the event
            # waited; restart the load's window — if it is still
            # delinquent under the current trace it will fire again.
            self.dlt.clear_window(event.load_pc)
            return
        job = self.optimizer.process_delinquent_load(trace, event.load_pc)
        if job is None:
            self.watch_table.set_optimizing(trace.trace_id, False)
            self.dlt.clear_window(event.load_pc)
            return
        self.helper.schedule(
            cycle,
            job.work_cycles,
            _OptimizeApply(runtime=self, trace=trace, inner=job.apply),
            kind=job.kind,
        )

    # ------------------------------------------------------------------
    # Reporting helpers.
    # ------------------------------------------------------------------
    def prefetch_targeted_pcs(self) -> Set[int]:
        """Original PCs of loads ever targeted by an inserted prefetch."""
        return set(self.optimizer.stats.loads_targeted)
