"""Hot-trace representation.

A hot trace is a streamlined, straight-line copy of the basic blocks that
executed together, produced by :mod:`repro.trident.trace_formation`.
Conditional branches inside the trace carry their *expected* direction; an
execution that disagrees exits the trace back into the original binary
(handled by the core).  Instructions the optimizer inserts (prefetches and
their non-faulting dereference loads) are marked ``synthetic``: they
execute and consume issue slots but are not counted as program
instructions, matching the paper's "IPC results correspond to only the
number of instructions the original code would have executed".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..isa.instruction import Instruction

_trace_ids = itertools.count(1)


def next_trace_id() -> int:
    return next(_trace_ids)


class TraceIdAllocator:
    """Per-runtime trace-id sequence.

    Each :class:`~repro.trident.runtime.TridentRuntime` owns one, so two
    identically-configured runs number their traces identically — the
    observability layer's exported event streams (which carry trace ids)
    must be byte-for-byte reproducible.  The module-global counter
    remains as the fallback for direct ``form_trace``/``derive`` calls
    (tests, tooling), where only uniqueness matters.
    """

    def __init__(self) -> None:
        self._ids = itertools.count(1)

    def next(self) -> int:
        return next(self._ids)


@dataclass(eq=False)
class TraceInstruction:
    """One instruction inside a hot trace."""

    inst: Instruction
    #: PC of the original instruction this one derives from.  Synthetic
    #: instructions carry the PC of the load they serve (for attribution).
    orig_pc: int
    #: For conditional branches: the direction the trace expects.
    expected_taken: Optional[bool] = None
    #: True for optimizer-inserted instructions.
    synthetic: bool = False

    def copy(self) -> "TraceInstruction":
        return TraceInstruction(
            inst=self.inst.copy(),
            orig_pc=self.orig_pc,
            expected_taken=self.expected_taken,
            synthetic=self.synthetic,
        )


@dataclass(eq=False)
class HotTrace:
    """A formed (possibly prefetch-optimized) hot trace."""

    trace_id: int
    head_pc: int
    body: List[TraceInstruction]
    #: Where execution continues after the last trace instruction.
    fallthrough_pc: int
    #: Optimizer bookkeeping (prefetch records live here; see
    #: repro.core.repair).  The paper stores this in "a memory buffer used
    #: by the optimizer" — same thing.
    meta: Dict = field(default_factory=dict)
    #: Number of times this trace has been re-optimized.
    version: int = 0

    def __len__(self) -> int:
        return len(self.body)

    @property
    def original_length(self) -> int:
        """Instructions excluding optimizer-inserted ones."""
        return sum(1 for t in self.body if not t.synthetic)

    def load_pcs(self) -> List[int]:
        """Original PCs of the (non-synthetic) loads in this trace."""
        return [
            t.orig_pc for t in self.body if t.inst.is_load and not t.synthetic
        ]

    def find_load(self, orig_pc: int) -> Optional[TraceInstruction]:
        for t in self.body:
            if t.orig_pc == orig_pc and t.inst.is_load and not t.synthetic:
                return t
        return None

    def prefetch_instructions(self) -> List[TraceInstruction]:
        return [t for t in self.body if t.inst.is_prefetch]

    def __getstate__(self):
        """Drop the fast interpreter's compiled-handler cache (closures
        over core state; derived, rebuilt on the next trace entry) so
        traces checkpoint cleanly (repro.checkpoint)."""
        state = dict(self.__dict__)
        state.pop("_fast_cache", None)
        return state

    def derive(
        self,
        body: List[TraceInstruction],
        ids: Optional[TraceIdAllocator] = None,
    ) -> "HotTrace":
        """A re-optimized successor trace (new id, same head, bumped
        version); meta is carried over so repair state survives."""
        return HotTrace(
            trace_id=ids.next() if ids is not None else next_trace_id(),
            head_pc=self.head_pc,
            body=body,
            fallthrough_pc=self.fallthrough_pc,
            meta=dict(self.meta),
            version=self.version + 1,
        )
