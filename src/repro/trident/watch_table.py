"""The watch table: per-trace performance monitoring.

Per the paper (section 3.2 table): each entry tracks a linked trace's
starting PC, length, *minimal execution time*, and an optimization flag.
The minimal execution time is the best pass ever observed — the paper uses
it as "the best possible scenario where all loads in the trace potentially
hit in the cache", the denominator of the maximal prefetch distance
(section 3.5.2).  The optimization flag marks a trace currently being
re-optimized so further delinquent-load events for it are suppressed.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional


@dataclass
class WatchEntry:
    trace_id: int
    head_pc: int
    length: int
    min_execution_time: float = float("inf")
    total_completed_time: float = 0.0
    executions: int = 0
    completed_executions: int = 0
    being_optimized: bool = False

    def average_execution_time(self) -> Optional[float]:
        """Mean completed-pass time (equation 2's denominator source)."""
        if self.completed_executions == 0:
            return None
        return self.total_completed_time / self.completed_executions


class WatchTable:
    """LRU table of the traces currently linked into execution."""

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()  # trace_id -> WatchEntry
        self.evictions = 0

    def register(self, trace_id: int, head_pc: int, length: int) -> WatchEntry:
        """Start watching a newly linked trace."""
        if trace_id in self._entries:
            entry = self._entries[trace_id]
            self._entries.move_to_end(trace_id)
            return entry
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        entry = WatchEntry(trace_id=trace_id, head_pc=head_pc, length=length)
        self._entries[trace_id] = entry
        return entry

    def remove(self, trace_id: int) -> None:
        self._entries.pop(trace_id, None)

    def lookup(self, trace_id: int) -> Optional[WatchEntry]:
        entry = self._entries.get(trace_id)
        if entry is not None:
            self._entries.move_to_end(trace_id)
        return entry

    def record_execution(
        self, trace_id: int, duration: float, completed: bool
    ) -> None:
        """Record one pass through a trace.

        Only *completed* passes update the minimal execution time: an early
        exit runs a prefix of the trace and would understate the time the
        full trace needs.
        """
        entry = self._entries.get(trace_id)
        if entry is None:
            return
        entry.executions += 1
        if completed:
            entry.completed_executions += 1
            entry.total_completed_time += duration
            if duration > 0 and duration < entry.min_execution_time:
                entry.min_execution_time = duration

    def min_execution_time(self, trace_id: int) -> Optional[float]:
        """Best completed-pass time, or None before any completion."""
        entry = self._entries.get(trace_id)
        if entry is None or entry.min_execution_time == float("inf"):
            return None
        return entry.min_execution_time

    def set_optimizing(self, trace_id: int, value: bool) -> None:
        entry = self._entries.get(trace_id)
        if entry is not None:
            entry.being_optimized = value

    def clear_optimizing_flags(self) -> int:
        """Drop every optimization-in-flight flag (recovery after a killed
        helper job); returns how many were set."""
        cleared = 0
        for entry in self._entries.values():
            if entry.being_optimized:
                entry.being_optimized = False
                cleared += 1
        return cleared

    def is_optimizing(self, trace_id: int) -> bool:
        entry = self._entries.get(trace_id)
        return entry.being_optimized if entry is not None else False

    def __len__(self) -> int:
        return len(self._entries)
