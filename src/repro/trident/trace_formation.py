"""Trace formation: streamline blocks along a captured branch bitmap.

Given a hot head PC and the branch directions the profiler captured, walk
the original program statically: follow unconditional branches, consume one
direction bit per conditional branch, and stop when the walk returns to the
head (a closed loop), the bitmap runs out, an unsupported instruction
(JMP/HALT) appears, or the length cap is reached.  The instructions are
*copied* into the trace — the original binary stays intact, exactly like
Trident building into its code cache.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import TridentConfig
from ..isa.opcodes import Opcode
from ..isa.program import Program
from .trace import HotTrace, TraceIdAllocator, TraceInstruction, next_trace_id


def form_trace(
    program: Program,
    head_pc: int,
    directions: Sequence[bool],
    config: TridentConfig,
    ids: Optional[TraceIdAllocator] = None,
) -> Optional[HotTrace]:
    """Build a hot trace, or None when nothing useful can be formed."""
    body = []
    pc = head_pc
    direction_index = 0
    max_len = config.max_trace_instructions
    n = len(program.instructions)
    # Guard against walks that make no progress (e.g. BR-only cycles).
    steps = 0
    max_steps = 4 * max_len

    while len(body) < max_len and 0 <= pc < n:
        steps += 1
        if steps > max_steps:
            break
        inst = program.instructions[pc]
        op = inst.opcode
        if op is Opcode.JMP or op is Opcode.HALT:
            break
        if inst.is_conditional_branch:
            if direction_index >= len(directions):
                break
            taken = directions[direction_index]
            direction_index += 1
            body.append(
                TraceInstruction(
                    inst=inst.copy(), orig_pc=pc, expected_taken=taken
                )
            )
            pc = inst.target if taken else pc + 1
        elif op is Opcode.BR:
            # Followed statically; not recorded in the bitmap and not
            # needed in the trace (the streamlining removes it).
            pc = inst.target
        else:
            body.append(TraceInstruction(inst=inst.copy(), orig_pc=pc))
            pc += 1
        if pc == head_pc:
            break

    if len(body) < 2:
        return None

    return HotTrace(
        trace_id=ids.next() if ids is not None else next_trace_id(),
        head_pc=head_pc,
        body=body,
        fallthrough_pc=pc,
    )
