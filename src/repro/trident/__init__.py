"""Trident substrate: event-driven monitoring hardware and runtime."""

from .branch_profiler import BranchProfiler
from .code_cache import CodeCache
from .dlt import DelinquentLoadTable, DLTEntry
from .events import (
    DelinquentLoadEvent,
    EventQueue,
    HotTraceEvent,
)
from .helper_thread import HelperThread, RegistrationStructure
from .optimizations import optimize_trace_body
from .runtime import TridentRuntime
from .trace import HotTrace, TraceIdAllocator, TraceInstruction, next_trace_id
from .trace_formation import form_trace
from .watch_table import WatchEntry, WatchTable

__all__ = [
    "BranchProfiler",
    "CodeCache",
    "DLTEntry",
    "DelinquentLoadEvent",
    "DelinquentLoadTable",
    "EventQueue",
    "HelperThread",
    "HotTrace",
    "HotTraceEvent",
    "RegistrationStructure",
    "TraceIdAllocator",
    "TraceInstruction",
    "TridentRuntime",
    "WatchEntry",
    "WatchTable",
    "form_trace",
    "next_trace_id",
    "optimize_trace_body",
]
