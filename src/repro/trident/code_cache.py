"""The code cache: trace storage plus the original-binary patch map.

Trident "inserts the trace into a memory buffer, called the Code Cache, and
patches the original binary to redirect execution to use the hot trace".
We model the patch as a map from original head PC to the linked trace; the
core consults it whenever it computes a new PC.  Re-optimization installs a
replacement trace under the same head and unlinks the old one (the paper's
"removes the old hot trace from the hardware watch table").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .trace import HotTrace


class CodeCache:
    """Trace storage keyed by id, with a head-PC patch map."""

    def __init__(self) -> None:
        self._traces: Dict[int, HotTrace] = {}
        self._patch_map: Dict[int, HotTrace] = {}
        self.links = 0
        self.relinks = 0
        self.unlinks = 0

    # ------------------------------------------------------------------
    def lookup(self, pc: int) -> Optional[HotTrace]:
        """The core's fetch-time patch check."""
        return self._patch_map.get(pc)

    def trace_by_id(self, trace_id: int) -> Optional[HotTrace]:
        return self._traces.get(trace_id)

    def link(self, trace: HotTrace) -> Optional[HotTrace]:
        """Patch ``trace.head_pc`` to enter ``trace``.

        Returns the trace that was previously linked at that head (now
        unlinked), or None.
        """
        previous = self._patch_map.get(trace.head_pc)
        self._traces[trace.trace_id] = trace
        self._patch_map[trace.head_pc] = trace
        if previous is not None:
            self.relinks += 1
            self._traces.pop(previous.trace_id, None)
        else:
            self.links += 1
        return previous

    def unlink(self, trace: HotTrace) -> None:
        """Remove the patch for this trace (execution reverts to the
        original binary at its head)."""
        current = self._patch_map.get(trace.head_pc)
        if current is not None and current.trace_id == trace.trace_id:
            del self._patch_map[trace.head_pc]
            self.unlinks += 1
        self._traces.pop(trace.trace_id, None)

    # ------------------------------------------------------------------
    def linked_traces(self) -> List[HotTrace]:
        return list(self._patch_map.values())

    def __len__(self) -> int:
        return len(self._patch_map)
