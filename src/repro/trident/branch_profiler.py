"""The hardware branch profiler that finds hot trace heads.

Trident's profiler (Table 2) is a 256-entry, 4-way associative table of
4-bit counters plus three standalone 16-bit direction bitmaps.  We model it
directly:

* Candidate trace heads are targets of taken *backward* branches (loop
  heads) — the classic trace-head heuristic.
* Each arrival at a candidate head bumps its 4-bit counter; at saturation
  the profiler arms a *capture* for that head.
* Once the captured head is reached again, the directions of subsequent
  conditional branches are recorded (up to 48, the three 16-bit bitmaps)
  until control returns to the head — at which point a
  :class:`~repro.trident.events.HotTraceEvent` is emitted.

The profiler only observes branches executed from the *original* binary;
once a trace is linked, its branches execute inside the trace and stop
feeding the profiler.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from ..config import TridentConfig
from .events import HotTraceEvent


class BranchProfiler:
    """4-bit-counter hot-head detector with direction capture."""

    def __init__(self, config: TridentConfig) -> None:
        self.config = config
        self._num_sets = max(
            1, config.profiler_entries // config.profiler_associativity
        )
        self._assoc = config.profiler_associativity
        self._counter_max = (1 << config.profiler_counter_bits) - 1
        # set index -> OrderedDict[head_pc -> counter]; last item is MRU.
        self._sets: Dict[int, OrderedDict] = {}
        #: Heads whose capture already produced a trace (don't re-emit).
        self._captured: set = set()
        # Active capture state.
        self._capture_head: Optional[int] = None
        self._capture_armed_head: Optional[int] = None
        self._capture_dirs: List[bool] = []
        self.captures_started = 0
        self.events_emitted = 0

    # ------------------------------------------------------------------
    def _bucket(self, head_pc: int) -> OrderedDict:
        index = head_pc % self._num_sets
        bucket = self._sets.get(index)
        if bucket is None:
            bucket = OrderedDict()
            self._sets[index] = bucket
        return bucket

    def _bump(self, head_pc: int) -> bool:
        """Count an arrival at ``head_pc``; True when the counter saturates."""
        bucket = self._bucket(head_pc)
        counter = bucket.get(head_pc)
        if counter is None:
            if len(bucket) >= self._assoc:
                bucket.popitem(last=False)  # LRU victim
            bucket[head_pc] = 1
            return False
        bucket.move_to_end(head_pc)
        if counter >= self._counter_max:
            return True
        bucket[head_pc] = counter + 1
        return counter + 1 >= self._counter_max

    def forget(self, head_pc: int) -> None:
        """Allow ``head_pc`` to be captured again (trace was unlinked)."""
        self._captured.discard(head_pc)
        bucket = self._bucket(head_pc)
        bucket.pop(head_pc, None)

    # ------------------------------------------------------------------
    def on_branch(
        self, pc: int, taken: bool, target: Optional[int], cycle: float
    ) -> Optional[HotTraceEvent]:
        """Observe one executed branch; maybe return a hot-trace event."""
        # 1. If a capture is recording, append this direction.
        if self._capture_head is not None:
            event = self._record_capture(pc, taken, target, cycle)
            if event is not None:
                return event

        # 2. Arm / count candidate heads: taken backward branches.
        if taken and target is not None and target <= pc:
            head = target
            if head in self._captured:
                return None
            if self._capture_armed_head is None and self._bump(head):
                self._capture_armed_head = head
            # An armed capture begins at the next arrival at the head —
            # which is this very branch.
            if self._capture_armed_head == head:
                self._begin_capture(head)
        return None

    def _begin_capture(self, head: int) -> None:
        self._capture_head = head
        self._capture_armed_head = None
        self._capture_dirs = []
        self.captures_started += 1

    def _record_capture(
        self, pc: int, taken: bool, target: Optional[int], cycle: float
    ) -> Optional[HotTraceEvent]:
        head = self._capture_head
        # Control returned to the head: the loop closed.
        if taken and target == head:
            return self._finish_capture(cycle, closing_taken=True)
        self._capture_dirs.append(taken)
        if len(self._capture_dirs) >= self.config.capture_bitmap_branches:
            return self._finish_capture(cycle, closing_taken=False)
        return None

    def _finish_capture(
        self, cycle: float, closing_taken: bool
    ) -> Optional[HotTraceEvent]:
        head = self._capture_head
        dirs = self._capture_dirs
        self._capture_head = None
        self._capture_dirs = []
        if closing_taken:
            dirs = dirs + [True]
        if not dirs:
            return None
        self._captured.add(head)
        self.events_emitted += 1
        return HotTraceEvent(
            head_pc=head, directions=tuple(dirs), cycle=cycle
        )
