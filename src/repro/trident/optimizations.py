"""Classical optimizations applied to freshly formed hot traces.

The paper lists the base optimizations Trident performs when streamlining a
trace: redundant branch/load removal, constant propagation, instruction
re-association, strength reduction, and the store/load-to-MOVE conversion
for legacy long-int/float transfers (section 3.2).  These are deliberately
conservative — a trace is straight-line code with known branch directions,
which makes the safety conditions simple to state:

* **Redundant load removal** — a second load of ``disp(base)`` with no
  intervening store, no redefinition of ``base``, and the first load's
  destination still live becomes ``MOVE``.
* **Store/load forwarding** — a load of ``disp(base)`` immediately
  following (not necessarily adjacently) a store to the same location, with
  the same safety conditions, becomes ``MOVE`` from the stored register.
* **Strength reduction** — ``MULQ`` by a power-of-two immediate becomes
  ``SLL``.
* **Constant folding** — an ALU op whose operands are known constants
  (from ``li``/``LDA off(r31)``) becomes a load-immediate.

Redundant *branch* removal falls out of formation itself (unconditional
branches are never emitted into the body).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode
from ..isa.registers import ZERO_REGISTER
from .trace import TraceInstruction


def optimize_trace_body(
    body: List[TraceInstruction],
) -> Tuple[List[TraceInstruction], Dict[str, int]]:
    """Apply the base optimizations; returns (new body, change counts)."""
    counts = {
        "redundant_loads_removed": 0,
        "store_load_forwarded": 0,
        "strength_reduced": 0,
        "constants_folded": 0,
    }
    body = _forward_memory(body, counts)
    body = _fold_constants(body, counts)
    body = _reduce_strength(body, counts)
    return body, counts


def _forward_memory(
    body: List[TraceInstruction], counts: Dict[str, int]
) -> List[TraceInstruction]:
    """Redundant-load removal and store/load forwarding in one pass.

    ``available`` maps (base_reg, base_version, disp) -> register known to
    hold that memory word, where base_version counts redefinitions of the
    base register so stale entries die naturally.
    """
    reg_version = [0] * 32
    # (base_reg, base_version, disp) -> (holding_reg, its_version, from_store)
    available: Dict[Tuple[int, int, int], Tuple[int, int, bool]] = {}
    result: List[TraceInstruction] = []

    for tinst in body:
        inst = tinst.inst
        op = inst.opcode
        is_forward = False

        if op is Opcode.LDQ and inst.ra is not None and inst.rd is not None:
            key = (inst.ra, reg_version[inst.ra], inst.disp)
            holder = available.get(key)
            if (
                holder is not None
                and reg_version[holder[0]] == holder[1]
                and holder[0] != inst.rd
            ):
                tinst = TraceInstruction(
                    inst=Instruction(
                        Opcode.MOVE, rd=inst.rd, ra=holder[0]
                    ),
                    orig_pc=tinst.orig_pc,
                )
                inst = tinst.inst
                op = inst.opcode
                is_forward = True
                if holder[2]:
                    counts["store_load_forwarded"] += 1
                else:
                    counts["redundant_loads_removed"] += 1
        elif op is Opcode.STQ and inst.ra is not None:
            # No alias analysis: a store invalidates all memory facts,
            # then exposes its own value for store/load forwarding.
            available.clear()
            key = (inst.ra, reg_version[inst.ra], inst.disp)
            if inst.rd is not None:
                available[key] = (inst.rd, reg_version[inst.rd], True)

        result.append(tinst)

        dest = inst.destination_register()
        if dest is not None and dest != ZERO_REGISTER:
            reg_version[dest] += 1

        # A (surviving) load exposes its destination as holding the word.
        if op is Opcode.LDQ and inst.ra is not None and inst.rd is not None:
            if inst.rd != inst.ra:
                key = (inst.ra, reg_version[inst.ra], inst.disp)
                available[key] = (inst.rd, reg_version[inst.rd], False)
        elif op is Opcode.MOVE and is_forward:
            pass  # the original fact still stands; nothing to add
    return result


def _fold_constants(
    body: List[TraceInstruction], counts: Dict[str, int]
) -> List[TraceInstruction]:
    """Propagate known constants through LDA/ALU instructions."""
    known: Dict[int, int] = {}
    result: List[TraceInstruction] = []
    for tinst in body:
        inst = tinst.inst
        op = inst.opcode
        if op is Opcode.LDA and inst.ra == ZERO_REGISTER:
            if inst.rd is not None:
                known[inst.rd] = inst.disp
            result.append(tinst)
            continue
        folded = False
        if (
            op in (Opcode.ADDQ, Opcode.SUBQ, Opcode.MULQ)
            and inst.ra in known
        ):
            rhs: Optional[int] = None
            if inst.imm is not None:
                rhs = inst.imm
            elif inst.rb in known:
                rhs = known[inst.rb]
            if rhs is not None and inst.rd is not None:
                a = known[inst.ra]
                if op is Opcode.ADDQ:
                    value = a + rhs
                elif op is Opcode.SUBQ:
                    value = a - rhs
                else:
                    value = a * rhs
                if -(2**31) < value < 2**31:
                    new = TraceInstruction(
                        inst=Instruction(
                            Opcode.LDA,
                            rd=inst.rd,
                            ra=ZERO_REGISTER,
                            disp=value,
                        ),
                        orig_pc=tinst.orig_pc,
                    )
                    result.append(new)
                    known[inst.rd] = value
                    counts["constants_folded"] += 1
                    folded = True
        if not folded:
            dest = inst.destination_register()
            if dest is not None:
                known.pop(dest, None)
            result.append(tinst)
    return result


def _reduce_strength(
    body: List[TraceInstruction], counts: Dict[str, int]
) -> List[TraceInstruction]:
    """MULQ by a power-of-two immediate becomes a shift."""
    result: List[TraceInstruction] = []
    for tinst in body:
        inst = tinst.inst
        if (
            inst.opcode is Opcode.MULQ
            and inst.imm is not None
            and inst.imm > 0
            and (inst.imm & (inst.imm - 1)) == 0
        ):
            shift = inst.imm.bit_length() - 1
            new = TraceInstruction(
                inst=Instruction(
                    Opcode.SLL, rd=inst.rd, ra=inst.ra, imm=shift
                ),
                orig_pc=tinst.orig_pc,
            )
            result.append(new)
            counts["strength_reduced"] += 1
        else:
            result.append(tinst)
    return result
