"""Harness-level chaos: seeded worker kills, hangs, torn journal writes,
and cache corruption.

PR 1's fault layer perturbs the *simulated machine* (DRAM latency, cache
flushes) and watches the self-repairing prefetcher recover.  This module
perturbs the *experiment fleet itself* — SIGKILLs a worker mid-job,
hangs one past its lease, tears a journal record in half, corrupts a
result-cache entry after it lands — and the recovery machinery
(:mod:`repro.harness.supervisor`, :mod:`repro.harness.journal`, the
hardened stores) must produce byte-identical tables anyway.  CI's
``chaos-smoke`` job holds the repo to that.

Everything is seeded and keyed on the **code-version-independent** job
key (:func:`repro.harness.journal.job_key`), so a chaos schedule is a
pure function of ``(seed, job set)``: the same command misbehaves the
same way on every machine and every commit, and a job's retries draw
fresh decisions, so a finite ``max_kills_per_job`` guarantees the sweep
converges.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..logutil import get_logger

_log = get_logger("chaos")

#: Where a chaos kill lands relative to the job's compute:
#: ``pre`` — before any work (the whole attempt is lost);
#: ``post`` — after the result exists but before it is reported (the
#: cruellest case: recovery must come from checkpoints/cache, not luck).
KILL_PHASES = ("pre", "post")


def _rng(seed: int, *parts: object) -> random.Random:
    """A private RNG keyed on (seed, *parts) — stable across processes."""
    digest = hashlib.sha256(
        ":".join([str(seed), *(str(p) for p in parts)]).encode()
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass(frozen=True)
class ChaosDecision:
    """What chaos does to one (job, attempt)."""

    kill_phase: Optional[str] = None  # "pre" | "post" | None
    hang: bool = False

    @property
    def clean(self) -> bool:
        return self.kill_phase is None and not self.hang

    #: Compact wire form for the supervisor's child argument list.
    def token(self) -> Optional[str]:
        if self.kill_phase is not None:
            return self.kill_phase
        if self.hang:
            return "hang"
        return None


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded recipe of harness-level misbehaviour.

    Rates are per job-attempt probabilities; ``max_kills_per_job`` caps
    how many consecutive attempts of one job can be disturbed, so a
    retried job always eventually runs clean.  A nonzero ``kill_rate``
    guarantees **at least one** kill per schedule (the smallest job key
    is forced if the draws all came up clean) — a chaos run that
    disturbs nothing proves nothing.
    """

    seed: int = 7
    kill_rate: float = 0.0
    hang_rate: float = 0.0
    #: How long an injected hang sleeps; pick a supervisor lease shorter
    #: than this or the hang is never detected.
    hang_s: float = 30.0
    max_kills_per_job: int = 2
    #: Tear this many journal records mid-write (0 disables).
    torn_journal: int = 0
    #: Probability a freshly stored result-cache entry is corrupted.
    corrupt_cache_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("kill_rate", "hang_rate", "corrupt_cache_rate"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or not 0 <= value <= 1:
                raise ConfigError(
                    f"chaos {name} must be a probability in [0, 1], "
                    f"got {value!r}"
                )
        if not isinstance(self.seed, int):
            raise ConfigError(f"chaos seed must be an int, got {self.seed!r}")
        if not isinstance(self.max_kills_per_job, int) or self.max_kills_per_job < 1:
            raise ConfigError("chaos max_kills_per_job must be >= 1")
        if not isinstance(self.torn_journal, int) or self.torn_journal < 0:
            raise ConfigError("chaos torn_journal must be >= 0")
        if not isinstance(self.hang_s, (int, float)) or self.hang_s <= 0:
            raise ConfigError("chaos hang_s must be positive")

    # ------------------------------------------------------------------
    # Parsing (the CLI's --chaos key=value tokens).
    # ------------------------------------------------------------------
    _FIELDS = {
        "seed": int,
        "kill-rate": float,
        "hang-rate": float,
        "hang-s": float,
        "max-kills": int,
        "torn-journal": int,
        "corrupt-cache-rate": float,
    }
    _NAMES = {
        "kill-rate": "kill_rate",
        "hang-rate": "hang_rate",
        "hang-s": "hang_s",
        "max-kills": "max_kills_per_job",
        "torn-journal": "torn_journal",
        "corrupt-cache-rate": "corrupt_cache_rate",
    }

    @staticmethod
    def parse(tokens: Sequence[str]) -> "ChaosPlan":
        """``["seed=7", "kill-rate=0.2"]`` (commas also split) → a plan."""
        kwargs = {}
        for token in tokens:
            for part in token.replace(",", " ").split():
                if "=" not in part:
                    raise ConfigError(
                        f"chaos option {part!r} is not key=value; known "
                        f"keys: {', '.join(sorted(ChaosPlan._FIELDS))}"
                    )
                key, _, raw = part.partition("=")
                if key not in ChaosPlan._FIELDS:
                    raise ConfigError(
                        f"unknown chaos option {key!r}; known: "
                        f"{', '.join(sorted(ChaosPlan._FIELDS))}"
                    )
                try:
                    value = ChaosPlan._FIELDS[key](raw)
                except ValueError:
                    raise ConfigError(
                        f"chaos option {key}={raw!r} is not a "
                        f"{ChaosPlan._FIELDS[key].__name__}"
                    ) from None
                kwargs[ChaosPlan._NAMES.get(key, key)] = value
        return ChaosPlan(**kwargs)

    # ------------------------------------------------------------------
    # Scheduling.
    # ------------------------------------------------------------------
    def decision(self, key: str, attempt: int) -> ChaosDecision:
        """The seeded decision for one attempt of one job."""
        if attempt >= self.max_kills_per_job:
            return ChaosDecision()
        rng = _rng(self.seed, "attempt", key, attempt)
        if rng.random() < self.kill_rate:
            return ChaosDecision(kill_phase=rng.choice(KILL_PHASES))
        if rng.random() < self.hang_rate:
            return ChaosDecision(hang=True)
        return ChaosDecision()

    def schedule(self, keys: Iterable[str]) -> "ChaosSchedule":
        """Bind the plan to a concrete job set.

        This is where the at-least-one-kill guarantee lands: if no
        first-attempt draw across ``keys`` produced a kill (or a hang,
        when only hangs are requested), the smallest key is forced to
        die ``pre`` on attempt 0.
        """
        keys = sorted(set(keys))
        forced: Dict[Tuple[str, int], ChaosDecision] = {}
        if keys and self.kill_rate > 0:
            if not any(
                self.decision(k, 0).kill_phase is not None for k in keys
            ):
                forced[(keys[0], 0)] = ChaosDecision(kill_phase="pre")
        elif keys and self.hang_rate > 0:
            if not any(self.decision(k, 0).hang for k in keys):
                forced[(keys[0], 0)] = ChaosDecision(hang=True)
        return ChaosSchedule(plan=self, _forced=forced)


@dataclass
class ChaosSchedule:
    """A :class:`ChaosPlan` bound to one run's job set."""

    plan: ChaosPlan
    _forced: Dict[Tuple[str, int], ChaosDecision] = field(
        default_factory=dict
    )
    #: Counters the engine folds into its summary.
    kills_injected: int = 0
    hangs_injected: int = 0
    cache_corruptions: int = 0
    journal_tears: int = 0

    def decision(self, key: str, attempt: int) -> ChaosDecision:
        decision = self._forced.get(
            (key, attempt), self.plan.decision(key, attempt)
        )
        if decision.kill_phase is not None:
            self.kills_injected += 1
        elif decision.hang:
            self.hangs_injected += 1
        return decision

    # ------------------------------------------------------------------
    # Storage corruption.
    # ------------------------------------------------------------------
    def maybe_corrupt_cache(self, path, key: str) -> bool:
        """Truncate a just-written cache entry with seeded probability.

        Emulates a torn store or bit-rot discovered later: the entry
        parses as garbage, the hardened read path quarantines it, and
        the job re-simulates — same table, one cold run.
        """
        rate = self.plan.corrupt_cache_rate
        if rate <= 0:
            return False
        if _rng(self.plan.seed, "corrupt", key).random() >= rate:
            return False
        try:
            data = path.read_bytes()
            path.write_bytes(data[: max(1, len(data) // 2)])
        except OSError as exc:
            _log.debug("chaos cache corruption skipped: %s", exc)
            return False
        self.cache_corruptions += 1
        _log.info("chaos: corrupted cache entry %s", path.name)
        return True

    # ------------------------------------------------------------------
    # Journal tearing.
    # ------------------------------------------------------------------
    def journal_filter(self) -> Callable[[str], str]:
        """A :attr:`JobJournal.write_filter` tearing ``torn_journal``
        records.

        Targets ``start`` records — operationally real (a torn write
        happens mid-sweep, not at submit) and information-safe: a lost
        ``start`` is superseded by the job's eventual ``done``, so
        recovery after the tear still reconstructs every outcome.
        """
        remaining = [self.plan.torn_journal]

        def tear(line: str) -> str:
            if remaining[0] > 0 and '"event":"start"' in line:
                remaining[0] -= 1
                self.journal_tears += 1
                _log.info("chaos: tearing journal record mid-write")
                return line[: max(1, len(line) // 2)]
            return line

        return tear

    def summary(self) -> str:
        return (
            f"chaos: kills={self.kills_injected} "
            f"hangs={self.hangs_injected} "
            f"cache_corruptions={self.cache_corruptions} "
            f"journal_tears={self.journal_tears}"
        )
