"""The fault injector: applies a :class:`FaultPlan` to a live simulation.

The injector is wired into the run through narrow hooks the simulated
components already expose — :class:`~repro.memory.hierarchy.MemoryHierarchy`
fault fields (``dram_latency_extra``, ``bus_occupancy_scale``,
``flush_caches``), :class:`~repro.trident.runtime.TridentRuntime` drop
windows and helper controls — never by forking simulator logic.  The core
calls :meth:`FaultInjector.tick` every step; the fast path is two integer
comparisons, so an armed injector costs nothing measurable until an event
is due.

Determinism: event application order is the plan order within a trigger,
trigger thresholds are exact, and all randomness (which DLT entries a
corruption storm hits) comes from a private ``random.Random(plan.seed)``.
Two runs with the same workload, config, and plan are bit-identical.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Optional, Tuple

from .plan import FaultEvent, FaultPlan

#: Fault kinds that need the Trident runtime to exist.
_RUNTIME_KINDS = (
    "dlt_corrupt", "dlt_evict", "dlt_drop_events",
    "helper_stall", "helper_fail",
)


class FaultInjector:
    """Executes a fault plan against one simulation's components."""

    def __init__(
        self,
        plan: FaultPlan,
        hierarchy,
        runtime: Optional[object] = None,
    ) -> None:
        self.plan = plan
        self.hierarchy = hierarchy
        self.runtime = runtime
        self.rng = random.Random(plan.seed)
        #: Chronological record of everything applied (or skipped), for
        #: result reporting and determinism tests.
        self.log: List[Dict] = []
        self.faults_applied = 0
        self.faults_skipped = 0
        #: Observability hook (repro.obs): set by the Simulation.
        self.obs = None

        by_cycle = [e for e in plan.events if e.at_cycle is not None]
        by_inst = [e for e in plan.events if e.at_instruction is not None]
        #: Pending events, soonest last (popped from the end).
        self._by_cycle = sorted(
            by_cycle, key=lambda e: e.at_cycle, reverse=True
        )
        self._by_instruction = sorted(
            by_inst, key=lambda e: e.at_instruction, reverse=True
        )
        #: Scheduled window ends: (cycle, seq, revert callable).
        self._reverts: List[Tuple[float, int, object]] = []
        self._revert_seq = 0
        self._next_cycle = float("inf")
        self._next_instruction = float("inf")
        self._refresh_thresholds()

    # ------------------------------------------------------------------
    def _refresh_thresholds(self) -> None:
        nxt = float("inf")
        if self._by_cycle:
            nxt = self._by_cycle[-1].at_cycle
        if self._reverts and self._reverts[0][0] < nxt:
            nxt = self._reverts[0][0]
        self._next_cycle = nxt
        self._next_instruction = (
            self._by_instruction[-1].at_instruction
            if self._by_instruction
            else float("inf")
        )

    @property
    def exhausted(self) -> bool:
        return (
            not self._by_cycle
            and not self._by_instruction
            and not self._reverts
        )

    def tick(self, cycle: float, committed: int) -> None:
        """Apply every event and window-end due by (``cycle``,
        ``committed``).  Called from the core's run loop."""
        if cycle < self._next_cycle and committed < self._next_instruction:
            return
        while self._reverts and self._reverts[0][0] <= cycle:
            _ready, _seq, revert = heapq.heappop(self._reverts)
            revert()
        while self._by_cycle and self._by_cycle[-1].at_cycle <= cycle:
            self._apply(self._by_cycle.pop(), cycle, committed)
        while (
            self._by_instruction
            and self._by_instruction[-1].at_instruction <= committed
        ):
            self._apply(self._by_instruction.pop(), cycle, committed)
        self._refresh_thresholds()

    def finish(self, cycle: float) -> None:
        """Run every outstanding window-end (end-of-simulation cleanup)."""
        while self._reverts:
            _ready, _seq, revert = heapq.heappop(self._reverts)
            revert()
        self._refresh_thresholds()

    # ------------------------------------------------------------------
    def _schedule_revert(self, cycle: float, revert) -> None:
        self._revert_seq += 1
        heapq.heappush(self._reverts, (cycle, self._revert_seq, revert))

    def _record(self, event: FaultEvent, cycle: float, committed: int,
                skipped: bool = False, detail: str = "") -> None:
        entry = {
            "kind": event.kind,
            "label": event.label,
            "cycle": int(cycle),
            "instruction": committed,
        }
        if skipped:
            entry["skipped"] = True
        if detail:
            entry["detail"] = detail
        self.log.append(entry)
        if skipped:
            self.faults_skipped += 1
        else:
            self.faults_applied += 1
        if self.obs is not None:
            self.obs.emit(
                "fault",
                cycle,
                fault=event.kind,
                label=event.label,
                detail=detail,
                skipped=skipped,
            )

    def _apply(self, event: FaultEvent, cycle: float, committed: int) -> None:
        runtime = self.runtime
        if event.kind in _RUNTIME_KINDS and runtime is None:
            # The policy runs no Trident runtime; the fault has no target.
            self._record(event, cycle, committed, skipped=True,
                         detail="no Trident runtime under this policy")
            return
        handler = getattr(self, f"_apply_{event.kind}")
        detail = handler(event, cycle)
        self._record(event, cycle, committed, detail=detail or "")

    # ------------------------------------------------------------------
    # Hierarchy faults.
    # ------------------------------------------------------------------
    def _apply_dram_latency(self, event: FaultEvent, cycle: float) -> str:
        extra = int(event.magnitude)
        hierarchy = self.hierarchy
        hierarchy.dram_latency_extra += extra
        if event.duration_cycles:
            def revert() -> None:
                hierarchy.dram_latency_extra -= extra
            self._schedule_revert(cycle + event.duration_cycles, revert)
            return f"+{extra} cycles for {event.duration_cycles} cycles"
        return f"+{extra} cycles (permanent phase shift)"

    def _apply_bus_contention(self, event: FaultEvent, cycle: float) -> str:
        scale = float(event.magnitude)
        hierarchy = self.hierarchy
        hierarchy.bus_occupancy_scale *= scale

        def revert() -> None:
            hierarchy.bus_occupancy_scale /= scale

        self._schedule_revert(cycle + event.duration_cycles, revert)
        return f"x{scale:g} occupancy for {event.duration_cycles} cycles"

    def _apply_cache_flush(self, event: FaultEvent, cycle: float) -> str:
        levels = ("l1", "l2", "l3")[: int(event.magnitude)]
        flushed = self.hierarchy.flush_caches(levels)
        return f"flushed {flushed} lines from {'+'.join(levels)}"

    # ------------------------------------------------------------------
    # Trident faults.
    # ------------------------------------------------------------------
    def _apply_dlt_corrupt(self, event: FaultEvent, cycle: float) -> str:
        dlt = self.runtime.dlt
        victims = self._pick_entries(dlt, event.magnitude)
        rng = self.rng
        for entry in victims:
            entry.stride = rng.randrange(-4096, 4097)
            entry.confidence = rng.randrange(0, dlt.config.confidence_max + 1)
            entry.last_addr = None
            entry.total_miss_latency = rng.randrange(0, 1 << 16)
        return f"corrupted {len(victims)} DLT entries"

    def _apply_dlt_evict(self, event: FaultEvent, cycle: float) -> str:
        dlt = self.runtime.dlt
        victims = self._pick_entries(dlt, event.magnitude)
        for entry in victims:
            dlt.evict(entry.tag)
        return f"evicted {len(victims)} DLT entries"

    def _pick_entries(self, dlt, fraction: float):
        entries = dlt.entries()
        if not entries:
            return []
        count = max(1, int(round(len(entries) * fraction)))
        return self.rng.sample(entries, min(count, len(entries)))

    def _apply_dlt_drop_events(self, event: FaultEvent, cycle: float) -> str:
        until = cycle + event.duration_cycles
        runtime = self.runtime
        runtime.drop_dlt_events_until = max(
            runtime.drop_dlt_events_until, until
        )
        return f"dropping delinquent-load events for {event.duration_cycles} cycles"

    def _apply_helper_stall(self, event: FaultEvent, cycle: float) -> str:
        self.runtime.helper.stall(cycle, event.duration_cycles)
        return f"helper descheduled for {event.duration_cycles} cycles"

    def _apply_helper_fail(self, event: FaultEvent, cycle: float) -> str:
        kind = self.runtime.fail_helper_job()
        if kind is None:
            return "helper was idle; nothing to kill"
        return f"killed in-flight helper job ({kind})"
