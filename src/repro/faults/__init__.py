"""Fault injection and resilience machinery (chaos-testing the repro).

The paper's headline claim is *self-repair*: the prefetcher re-converges
when latency conditions shift.  This package provides the machinery to
actually perturb a run mid-flight and watch the repair loop respond:

* :mod:`repro.faults.plan` — declarative, JSON round-trippable
  :class:`FaultPlan` / :class:`FaultEvent` schedules;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which applies a
  plan to a live simulation through narrow component hooks;
* :mod:`repro.faults.watchdog` — :class:`Watchdog`, the run-loop guard
  that converts hangs into :class:`~repro.errors.SimulationStallError`;
* :mod:`repro.faults.chaos` — :class:`ChaosPlan` / :class:`ChaosSchedule`,
  seeded faults aimed at the experiment *fleet* itself (worker kills,
  hangs, torn journal writes, cache corruption) rather than the
  simulated machine.
"""

from .chaos import ChaosPlan, ChaosSchedule
from .injector import FaultInjector
from .plan import FAULT_KINDS, FaultEvent, FaultPlan
from .watchdog import Watchdog

__all__ = [
    "ChaosPlan",
    "ChaosSchedule",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "Watchdog",
]
