"""Fault plans: the declarative half of the fault-injection subsystem.

A :class:`FaultPlan` is a seeded, validated list of :class:`FaultEvent`
perturbations applied to the simulated machine mid-run by the
:class:`~repro.faults.injector.FaultInjector`.  Plans are pure data — JSON
round-trippable, hashable, reusable across runs — so a chaos experiment is
exactly reproducible: the same plan and seed perturb the same run the same
way, bit for bit.

Supported fault kinds (``FaultEvent.kind``):

``dram_latency``
    Add ``magnitude`` cycles to every DRAM-sourced fill.  With a duration
    it is a contention spike; with ``duration_cycles=0`` it is a permanent
    phase shift — the probe the resilience experiment uses against the
    self-repair loop (section 3.5.2's re-adaptation claim).
``bus_contention``
    Multiply fill-bus occupancy by ``magnitude`` for the window.
``cache_flush``
    Instantly invalidate the first ``magnitude`` cache levels (1 = L1,
    2 = L1+L2, 3 = all), emulating the cache footprint of a context
    switch.
``dlt_corrupt``
    Scramble the stride/confidence state of a seeded ``magnitude``
    fraction of live DLT entries (soft-error model).
``dlt_evict``
    Evict a seeded ``magnitude`` fraction of live DLT entries (an
    eviction storm: monitoring state is lost, windows restart).
``dlt_drop_events``
    Discard every delinquent-load event fired during the window (the
    event bus misbehaves; monitoring continues but the optimizer hears
    nothing).
``helper_stall``
    The helper thread's context is descheduled for the window: its
    in-flight job is delayed and no new job dispatches.
``helper_fail``
    Kill the helper's in-flight job (the optimization is lost; the
    runtime recovers by clearing optimization flags so events can
    re-fire).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ConfigError

#: Every fault kind the injector implements.
FAULT_KINDS = (
    "dram_latency",
    "bus_contention",
    "cache_flush",
    "dlt_corrupt",
    "dlt_evict",
    "dlt_drop_events",
    "helper_stall",
    "helper_fail",
)

#: Kinds that act over a window (duration required to matter) vs. at an
#: instant.  ``dram_latency`` is special: duration 0 means "until the end
#: of the run" (a phase shift), so it appears in neither set.
_INSTANT_KINDS = ("cache_flush", "dlt_corrupt", "dlt_evict", "helper_fail")
_WINDOW_KINDS = ("bus_contention", "dlt_drop_events", "helper_stall")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled perturbation.

    Exactly one of ``at_cycle`` / ``at_instruction`` selects the trigger:
    the event fires when the simulated cycle count, or the committed
    main-thread instruction count, first reaches the threshold.
    Durations are always in cycles.
    """

    kind: str
    at_cycle: Optional[int] = None
    at_instruction: Optional[int] = None
    #: Window length in cycles; 0 = instant (or, for ``dram_latency``,
    #: permanent).
    duration_cycles: int = 0
    #: Kind-specific strength: extra cycles (dram_latency), occupancy
    #: multiplier (bus_contention), levels to flush (cache_flush),
    #: fraction of entries (dlt_corrupt / dlt_evict); unused otherwise.
    magnitude: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {', '.join(FAULT_KINDS)}"
            )
        has_cycle = self.at_cycle is not None
        has_inst = self.at_instruction is not None
        if has_cycle == has_inst:
            raise ConfigError(
                f"fault {self.kind!r} needs exactly one of at_cycle / "
                "at_instruction"
            )
        trigger = self.at_cycle if has_cycle else self.at_instruction
        if not isinstance(trigger, int) or trigger < 0:
            raise ConfigError(
                f"fault {self.kind!r} trigger must be a non-negative "
                f"integer, got {trigger!r}"
            )
        if not isinstance(self.duration_cycles, int) or self.duration_cycles < 0:
            raise ConfigError(
                f"fault {self.kind!r} duration_cycles must be a "
                f"non-negative integer, got {self.duration_cycles!r}"
            )
        if self.kind in _WINDOW_KINDS and self.duration_cycles == 0:
            raise ConfigError(
                f"fault {self.kind!r} is a window fault and needs "
                "duration_cycles > 0"
            )
        if self.kind in _INSTANT_KINDS and self.duration_cycles != 0:
            raise ConfigError(
                f"fault {self.kind!r} is instantaneous; duration_cycles "
                "must be 0"
            )
        self._validate_magnitude()

    def _validate_magnitude(self) -> None:
        mag = self.magnitude
        if not isinstance(mag, (int, float)):
            raise ConfigError(
                f"fault {self.kind!r} magnitude must be a number"
            )
        if self.kind == "dram_latency" and not (
            float(mag).is_integer() and mag > 0
        ):
            raise ConfigError(
                "dram_latency magnitude is extra cycles: a positive integer"
            )
        if self.kind == "bus_contention" and mag <= 0:
            raise ConfigError("bus_contention magnitude must be > 0")
        if self.kind == "cache_flush" and int(mag) not in (1, 2, 3):
            raise ConfigError(
                "cache_flush magnitude selects levels to flush: 1, 2 or 3"
            )
        if self.kind in ("dlt_corrupt", "dlt_evict") and not (
            0.0 < mag <= 1.0
        ):
            raise ConfigError(
                f"{self.kind} magnitude is a fraction in (0, 1]"
            )

    def to_dict(self) -> Dict:
        out: Dict = {"kind": self.kind}
        if self.at_cycle is not None:
            out["at_cycle"] = self.at_cycle
        else:
            out["at_instruction"] = self.at_instruction
        if self.duration_cycles:
            out["duration_cycles"] = self.duration_cycles
        if self.magnitude != 1.0:
            out["magnitude"] = self.magnitude
        if self.label:
            out["label"] = self.label
        return out

    @staticmethod
    def from_dict(raw: Dict) -> "FaultEvent":
        if not isinstance(raw, dict):
            raise ConfigError(f"fault event must be an object, got {raw!r}")
        known = {
            "kind", "at_cycle", "at_instruction", "duration_cycles",
            "magnitude", "label",
        }
        unknown = set(raw) - known
        if unknown:
            raise ConfigError(
                f"fault event has unknown keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        if "kind" not in raw:
            raise ConfigError("fault event is missing 'kind'")
        return FaultEvent(**raw)


@dataclass(frozen=True)
class FaultPlan:
    """A validated, seeded schedule of fault events."""

    events: Tuple[FaultEvent, ...] = ()
    #: Seeds the injector's private RNG (DLT corruption/eviction picks);
    #: independent of the workload seed so the same plan perturbs
    #: different workloads comparably.
    seed: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ConfigError(
                    f"FaultPlan events must be FaultEvent, got {event!r}"
                )
        if not isinstance(self.seed, int):
            raise ConfigError(f"FaultPlan seed must be an int, got {self.seed!r}")

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Serialisation.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    @staticmethod
    def from_dict(raw: Dict) -> "FaultPlan":
        if not isinstance(raw, dict):
            raise ConfigError(f"fault plan must be an object, got {raw!r}")
        unknown = set(raw) - {"seed", "events"}
        if unknown:
            raise ConfigError(
                f"fault plan has unknown keys {sorted(unknown)}"
            )
        events_raw = raw.get("events", [])
        if not isinstance(events_raw, list):
            raise ConfigError("fault plan 'events' must be a list")
        events = tuple(FaultEvent.from_dict(e) for e in events_raw)
        return FaultPlan(events=events, seed=raw.get("seed", 1))

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"fault plan is not valid JSON: {exc}") from None
        return FaultPlan.from_dict(raw)

    @staticmethod
    def load(path) -> "FaultPlan":
        """Read a plan from a JSON file (the CLI's ``--inject``)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ConfigError(f"cannot read fault plan {path!r}: {exc}") from None
        return FaultPlan.from_json(text)

    # ------------------------------------------------------------------
    # Convenience constructors for common chaos scenarios.
    # ------------------------------------------------------------------
    @staticmethod
    def latency_phase_shift(
        at_instruction: int, extra_cycles: int = 250, seed: int = 1
    ) -> "FaultPlan":
        """A permanent DRAM latency increase at ``at_instruction`` — the
        resilience experiment's probe of the self-repair loop."""
        return FaultPlan(
            events=(
                FaultEvent(
                    kind="dram_latency",
                    at_instruction=at_instruction,
                    magnitude=extra_cycles,
                    label="phase-shift",
                ),
            ),
            seed=seed,
        )

    @staticmethod
    def context_switch_storm(
        period_cycles: int, count: int, levels: int = 1, seed: int = 1
    ) -> "FaultPlan":
        """Periodic cache flushes emulating context switches."""
        events = tuple(
            FaultEvent(
                kind="cache_flush",
                at_cycle=period_cycles * (i + 1),
                magnitude=levels,
                label=f"context-switch-{i}",
            )
            for i in range(count)
        )
        return FaultPlan(events=events, seed=seed)
