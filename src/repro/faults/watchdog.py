"""Run-loop watchdog: turn hangs into :class:`SimulationStallError`.

The core's dataflow model guarantees per-step progress for well-formed
programs, but a crafted workload (an infinite loop with a huge instruction
budget), a pathological configuration, or a future core bug can still spin
a run far past any useful horizon.  The watchdog is checked from the core's
run loop every :data:`CHECK_INTERVAL` steps and enforces three budgets:

* **commit stall** — the committed-instruction count did not advance at
  all between two checks (thousands of steps): something is re-executing
  synthetic work forever;
* **cycle budget** — the simulated clock passed ``max_cycles``;
* **wall-time budget** — the host spent more than ``wall_time_limit``
  seconds on the run (warmup included).

All three raise :class:`~repro.errors.SimulationStallError` (transient, so
the experiment harness retries once) carrying the progress made so far.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..errors import SimulationStallError

#: Core run-loop steps between watchdog checks.  Large enough to stay off
#: the hot path, small enough that a wall-time trip is prompt.
CHECK_INTERVAL = 2048


class Watchdog:
    """Progress monitor for one simulation (warmup + measurement)."""

    check_interval = CHECK_INTERVAL

    def __init__(
        self,
        max_cycles: Optional[float] = None,
        wall_time_limit: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.max_cycles = max_cycles
        self.wall_time_limit = wall_time_limit
        self._clock = clock
        self._deadline: Optional[float] = None
        self._last_committed: Optional[int] = None
        self.trips = 0

    def __getstate__(self):
        """Checkpoint support (repro.checkpoint): the armed wall-time
        deadline is host-clock state — meaningless in another process and
        different between two captures of identical simulated state — so
        snapshots carry it disarmed; the next ``run`` call re-arms a
        fresh ``wall_time_limit`` budget for the resumed segment."""
        state = dict(self.__dict__)
        state["_deadline"] = None
        return state

    def start(self) -> None:
        """Arm the wall-time deadline (idempotent: the first call wins, so
        warmup and measurement share one budget)."""
        if self.wall_time_limit is not None and self._deadline is None:
            self._deadline = self._clock() + self.wall_time_limit

    def reset_progress(self) -> None:
        """Forget the commit baseline (call when a new run segment begins
        so a segment boundary is never mistaken for a stall)."""
        self._last_committed = None

    def check(self, committed: int, cycles: float) -> None:
        """Raise :class:`SimulationStallError` when a budget is exhausted."""
        if self.max_cycles is not None and cycles > self.max_cycles:
            self._trip(
                f"cycle budget exhausted: {cycles:.0f} simulated cycles "
                f"exceed max_cycles={self.max_cycles:.0f} "
                f"({committed} instructions committed)",
                committed, cycles,
            )
        if self._last_committed is not None and committed == self._last_committed:
            self._trip(
                f"commit stall: no instruction committed across "
                f"{self.check_interval} core steps "
                f"(stuck at {committed} instructions, {cycles:.0f} cycles)",
                committed, cycles,
            )
        self._last_committed = committed
        if self._deadline is not None and self._clock() > self._deadline:
            self._trip(
                f"wall-time limit of {self.wall_time_limit:.1f}s exhausted "
                f"({committed} instructions, {cycles:.0f} cycles simulated)",
                committed, cycles,
            )

    def _trip(self, message: str, committed: int, cycles: float) -> None:
        self.trips += 1
        raise SimulationStallError(message, committed=committed, cycles=cycles)
