#!/usr/bin/env python
"""Build your own workload and run it through the full system.

Shows the complete public API surface a downstream user needs: the
assembler DSL, heap builders, machine/Trident configuration, policy
selection, and result inspection.  The workload here is a toy
"image blur": a strided read-modify-write over a large frame with a small
lookup table — two stride streams plus an L1-resident gather.
"""

from repro import (
    MachineConfig,
    PrefetchPolicy,
    Simulation,
    SimulationConfig,
    StreamBufferConfig,
    TridentConfig,
)
from repro.isa.assembler import Assembler
from repro.memory.mainmem import DataMemory, HeapAllocator
from repro.workloads.base import Workload, counted_loop

FRAME_WORDS = 4_000_000
LUT_WORDS = 512  # 4 KB: L1-resident


def build_blur() -> Workload:
    memory = DataMemory()
    alloc = HeapAllocator(memory)
    frame = alloc.alloc_array(FRAME_WORDS)
    out = alloc.alloc_array(FRAME_WORDS)
    lut = alloc.alloc_array(
        LUT_WORDS, init=(i * 3 for i in range(LUT_WORDS))
    )

    asm = Assembler("blur")
    close_frames = counted_loop(asm, "r21", 1_000, "frames")
    asm.li("r1", frame)
    asm.li("r2", out)
    close_pixels = counted_loop(asm, "r22", 400_000, "pixels")
    asm.ldq("r3", "r1", 0)            # pixel[i]
    asm.ldq("r4", "r1", 8)            # pixel[i+1]
    asm.addq("r5", "r3", rb="r4")
    asm.and_("r6", "r5", imm=LUT_WORDS - 1)
    asm.sll("r6", "r6", imm=3)
    asm.li("r7", lut)
    asm.addq("r6", "r6", rb="r7")
    asm.ldq("r8", "r6", 0)            # lut[(a+b) & mask]: L1 hit
    asm.addq("r9", "r5", rb="r8")
    asm.stq("r9", "r2", 0)
    asm.lda("r1", "r1", 16)
    asm.lda("r2", "r2", 16)
    close_pixels()
    close_frames()
    asm.halt()

    return Workload(
        name="blur",
        program=asm.build(),
        memory=memory,
        description="strided blur with an L1-resident lookup table",
        kind="mixed",
    )


def main() -> None:
    workload = build_blur()

    # A custom machine: smaller stream buffers and a bigger DLT, to show
    # the configuration surface.
    machine = MachineConfig().with_stream_buffers(
        StreamBufferConfig(num_buffers=4, entries_per_buffer=4)
    )
    trident = TridentConfig()

    for policy in (
        PrefetchPolicy.NONE,
        PrefetchPolicy.HW_ONLY,
        PrefetchPolicy.SELF_REPAIRING,
    ):
        sim = Simulation(
            workload,
            SimulationConfig(
                machine=machine,
                trident=trident,
                policy=policy,
                max_instructions=120_000,
                warmup_instructions=120_000,
            ),
        )
        result = sim.run()
        extra = ""
        if policy is PrefetchPolicy.SELF_REPAIRING:
            extra = (
                f"  (traces={result.traces_linked}, "
                f"prefetches={result.prefetches_inserted}, "
                f"repairs={result.repairs_applied})"
            )
        print(f"{policy.value:16s} IPC {result.ipc:.3f}{extra}")


if __name__ == "__main__":
    main()
