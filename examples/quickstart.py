#!/usr/bin/env python
"""Quickstart: run one benchmark under three prefetching regimes.

Reproduces the paper's core comparison in miniature: the hardware stream
buffer baseline, non-adaptive dynamic software prefetching (ADORE-style),
and the self-repairing prefetcher.

Run:
    python examples/quickstart.py [workload] [instructions]
"""

import sys

from repro import PrefetchPolicy, run_simulation

WORKLOAD = sys.argv[1] if len(sys.argv) > 1 else "mcf"
BUDGET = int(sys.argv[2]) if len(sys.argv) > 2 else 80_000
WARMUP = 2 * BUDGET


def main() -> None:
    print(f"workload={WORKLOAD}  warmup={WARMUP}  measured={BUDGET}\n")

    baseline = run_simulation(
        WORKLOAD,
        policy=PrefetchPolicy.HW_ONLY,
        max_instructions=BUDGET,
        warmup_instructions=WARMUP,
    )
    print(f"hardware stream buffers (8x8): IPC {baseline.ipc:.3f}")

    basic = run_simulation(
        WORKLOAD,
        policy=PrefetchPolicy.BASIC,
        max_instructions=BUDGET,
        warmup_instructions=WARMUP,
    )
    print(
        f"+ basic software prefetching:  IPC {basic.ipc:.3f} "
        f"({(basic.speedup_over(baseline) - 1) * 100:+.1f}%)"
    )

    repaired = run_simulation(
        WORKLOAD,
        policy=PrefetchPolicy.SELF_REPAIRING,
        max_instructions=BUDGET,
        warmup_instructions=WARMUP,
    )
    print(
        f"+ self-repairing prefetching:  IPC {repaired.ipc:.3f} "
        f"({(repaired.speedup_over(baseline) - 1) * 100:+.1f}%)"
    )

    print()
    print(f"traces linked:        {repaired.traces_linked}")
    print(f"prefetches inserted:  {repaired.prefetches_inserted} stride, "
          f"{repaired.pointer_prefetches_inserted} pointer")
    print(f"distance repairs:     {repaired.repairs_applied}")
    print(f"helper thread active: {repaired.helper_active_fraction:.1%} "
          f"of cycles")
    print("\nload outcome breakdown (self-repairing run):")
    for kind, fraction in repaired.breakdown().items():
        print(f"  {kind:22s} {fraction:7.2%}")


if __name__ == "__main__":
    main()
