#!/usr/bin/env python
"""Section 5.1's cost question: what does the optimizer itself cost?

The paper measures this by running Trident with the prefetch optimizer
fully active — forming traces, classifying loads, building prefetched
trace bodies — but never linking the results into execution, so the main
thread runs unmodified code and any slowdown is pure optimizer overhead
(they report 0.6%).  The helper-thread occupancy (their Figure 3, 2.2%
average) is reported alongside.

Run:
    python examples/optimizer_overhead.py [workload ...]
"""

import sys

from repro import PrefetchPolicy, run_simulation

WORKLOADS = sys.argv[1:] or ["mcf", "swim", "galgel"]
BUDGET = 100_000


def main() -> None:
    print(f"{'workload':10s} {'base IPC':>9s} {'overhead-only IPC':>18s} "
          f"{'slowdown':>9s} {'helper active':>14s}")
    for name in WORKLOADS:
        base = run_simulation(
            name, policy=PrefetchPolicy.HW_ONLY, max_instructions=BUDGET
        )
        overhead = run_simulation(
            name,
            policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=BUDGET,
            overhead_only=True,
        )
        full = run_simulation(
            name,
            policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=BUDGET,
        )
        slowdown = max(0.0, base.ipc / overhead.ipc - 1.0)
        print(
            f"{name:10s} {base.ipc:9.3f} {overhead.ipc:18.3f} "
            f"{slowdown:8.2%} {full.helper_active_fraction:13.1%}"
        )
    print(
        "\nThe overhead-only column runs the full optimizer without ever"
        "\nlinking its traces (the paper's 0.6% experiment): the optimizer"
        "\nis effectively free because it lives on the spare SMT context."
    )


if __name__ == "__main__":
    main()
