#!/usr/bin/env python
"""The paper's key pointer observation, demonstrated.

Section 3.3: "the hardware support allows us to identify a large number
of pointer loads that turn out to have stride access patterns, due to the
way memory structures are allocated and used."

This example builds the SAME pointer-chasing program over two heap
layouts — allocator-sequential (mcf-like) and scrambled (dot-like) — and
shows how the classification, the inserted prefetch kind, and the speedup
all change with nothing but data layout.
"""

from repro import PrefetchPolicy, Simulation, SimulationConfig
from repro.isa.assembler import Assembler
from repro.memory.mainmem import DataMemory, HeapAllocator
from repro.workloads.base import Workload, counted_loop
from repro.workloads.data import build_linked_list

NODES = 80_000
NODE_WORDS = 8


def chase_workload(name: str, scramble: bool) -> Workload:
    import random

    memory = DataMemory()
    alloc = HeapAllocator(memory)
    head, _ = build_linked_list(
        alloc,
        node_words=NODE_WORDS,
        count=NODES,
        rng=random.Random(7),
        scramble=scramble,
    )
    asm = Assembler(name)
    close_outer = counted_loop(asm, "r21", 10_000, "outer")
    asm.li("r1", head)
    close_inner = counted_loop(asm, "r22", NODES, "walk")
    asm.ldq("r2", "r1", 8)       # payload
    asm.addq("r11", "r11", rb="r2")
    asm.mulq("r12", "r11", rb="r2")
    asm.xor("r11", "r11", rb="r12")
    asm.ldq("r1", "r1", 0)       # chase
    close_inner()
    close_outer()
    asm.halt()
    return Workload(
        name=name,
        program=asm.build(),
        memory=memory,
        description="pointer chase",
        kind="pointer",
    )


def run(workload: Workload, policy: PrefetchPolicy):
    sim = Simulation(
        workload,
        SimulationConfig(
            policy=policy, max_instructions=120_000,
            warmup_instructions=160_000,
        ),
    )
    return sim, sim.run()


def describe(layout: str, workload: Workload) -> None:
    _, hw = run(workload, PrefetchPolicy.HW_ONLY)
    sim, sr = run(workload, PrefetchPolicy.SELF_REPAIRING)
    print(f"--- {layout} layout ---")
    print(f"  hardware-only IPC:   {hw.ipc:.3f}")
    print(f"  self-repairing IPC:  {sr.ipc:.3f} "
          f"({(sr.speedup_over(hw) - 1) * 100:+.1f}%)")
    kinds = set()
    for trace in sim.runtime.code_cache.linked_traces():
        for record in trace.meta.get("records", {}).values():
            kinds.add(record.kind)
    print(f"  prefetch kinds inserted: {sorted(kinds) or ['none']}")
    print(f"  stride prefetches: {sr.prefetches_inserted}, "
          f"pointer (double-deref) prefetches: "
          f"{sr.pointer_prefetches_inserted}")
    print()


def main() -> None:
    print(__doc__)
    describe("sequential (mcf-like)", chase_workload("seq_chase", False))
    describe("scrambled (dot-like)", chase_workload("scram_chase", True))
    print(
        "With a sequential layout the DLT's stride detector turns the\n"
        "pointer chase into a stride-prefetchable load (large gains);\n"
        "scrambled nodes leave only the double-dereference pointer\n"
        "prefetch, which cannot get far ahead of a serialized chain."
    )


if __name__ == "__main__":
    main()
