#!/usr/bin/env python
"""Self-repair as *adaptation*: the same trace, two program phases.

The paper motivates repair not only as a distance search but as a way "to
adapt if the nature of the load changes".  This example builds a loop that
switches its access stride mid-run (a phase change in working-set
behaviour): the distance tuned for phase 1 goes stale in phase 2, the
loads turn delinquent again, and the optimizer re-tunes — visible in the
repair history timestamps.
"""

from repro import PrefetchPolicy, Simulation, SimulationConfig
from repro.isa.assembler import Assembler
from repro.memory.mainmem import DataMemory, HeapAllocator
from repro.workloads.base import Workload, counted_loop

ARRAY_WORDS = 16_000_000


def build_phased() -> Workload:
    memory = DataMemory()
    alloc = HeapAllocator(memory)
    data = alloc.alloc_array(ARRAY_WORDS)

    asm = Assembler("phased")
    # Phase 1: light compute per line (needs a long prefetch distance).
    asm.li("r1", data)
    close_p1 = counted_loop(asm, "r22", 6_000, "phase1")
    for tap in range(8):
        asm.ldq("r4", "r1", tap * 8)
        asm.addf("r11", "r11", rb="r4")
    asm.lda("r1", "r1", 64)
    close_p1()
    # Phase 2: the same data stream, but now each line feeds a heavy
    # dependent chain (distance 1 would do; the tuned distance is stale
    # but harmless, and the *latency* profile changes under the DLT).
    close_p2 = counted_loop(asm, "r23", 50_000, "phase2")
    for tap in range(8):
        asm.ldq("r4", "r1", tap * 8)
        asm.mulf("r12", "r11", rb="r4")
        asm.divf("r11", "r12", rb="r4")
        asm.addf("r11", "r11", rb="r4")
    asm.lda("r1", "r1", 64)
    close_p2()
    asm.halt()
    return Workload(
        name="phased",
        program=asm.build(),
        memory=memory,
        description="stride scan whose per-line compute changes mid-run",
        kind="stride",
    )


def main() -> None:
    print(__doc__)
    sim = Simulation(
        build_phased(),
        SimulationConfig(
            policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=700_000,
        ),
    )
    result = sim.run()
    print(f"IPC {result.ipc:.3f}, repairs {result.repairs_applied}, "
          f"helper jobs {result.helper_jobs}\n")
    seen = set()
    for trace in sim.runtime.code_cache.linked_traces():
        print(f"trace @ pc {trace.head_pc} (version {trace.version}):")
        for record in trace.meta.get("records", {}).values():
            if id(record) in seen:
                continue
            seen.add(id(record))
            print(
                f"  loads {record.load_pcs}: final distance "
                f"{record.distance} after {record.repairs_done} repairs"
                f"{' (mature)' if record.mature else ''}"
            )
            for distance, latency in record.history:
                print(f"    d={distance:3d}  avg latency {latency:7.1f}")
    print(
        "\nEach trace belongs to one phase; the distances the search"
        "\nconverged to differ because the phases' iteration times differ."
    )


if __name__ == "__main__":
    main()
