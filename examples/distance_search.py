#!/usr/bin/env python
"""Watch the self-repairing distance search converge.

Runs the `art` workload (short iterations, memory-latency-bound: the
prefetch distance matters a lot) and prints each prefetch record's repair
trajectory — the (distance, measured average access latency) pairs of
section 3.5.2's search — exactly the "trial and error until the correct
distance is found" the paper describes.

Run:
    python examples/distance_search.py [workload]
"""

import sys

from repro import PrefetchPolicy, Simulation, SimulationConfig

WORKLOAD = sys.argv[1] if len(sys.argv) > 1 else "art"


def main() -> None:
    sim = Simulation(
        WORKLOAD,
        SimulationConfig(
            policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=320_000,
        ),
    )
    result = sim.run()
    print(f"{WORKLOAD}: IPC {result.ipc:.3f}, "
          f"{result.repairs_applied} repairs applied\n")

    seen = set()
    for trace in sim.runtime.code_cache.linked_traces():
        records = trace.meta.get("records", {})
        for record in records.values():
            if id(record) in seen:
                continue
            seen.add(id(record))
            label = ",".join(str(pc) for pc in record.load_pcs)
            print(
                f"record loads=[{label}] kind={record.kind} "
                f"stride={record.stride} max_distance={record.max_distance}"
            )
            print(
                f"  final distance {record.distance}"
                f"{' (mature)' if record.mature else ''}"
            )
            if record.history:
                print("  search trajectory (distance -> avg latency):")
                for distance, latency in record.history:
                    bar = "#" * max(1, int(latency / 8))
                    print(f"    d={distance:3d}  {latency:7.1f}  {bar}")
            print()


if __name__ == "__main__":
    main()
