"""Behavioural tests: each workload exhibits the memory character its
benchmark is documented to have (the substitution contract of DESIGN.md)."""

import pytest

from repro.config import PrefetchPolicy, SimulationConfig
from repro.harness.runner import Simulation, run_simulation
from repro.workloads.registry import load_workload

BUDGET = 60_000


def record_kinds(sim):
    kinds = set()
    for trace in sim.runtime.code_cache.linked_traces():
        for record in trace.meta.get("records", {}).values():
            kinds.add(record.kind)
    return kinds


class TestMcf:
    def test_chase_is_stride_rescued(self):
        """mcf's allocator-sequential chains: the DLT stride-detects the
        pointer chase (section 3.3's key observation)."""
        sim = Simulation(
            "mcf",
            SimulationConfig(
                policy=PrefetchPolicy.SELF_REPAIRING,
                max_instructions=BUDGET,
            ),
        )
        sim.run()
        assert "stride" in record_kinds(sim)

    def test_fields_grouped_with_chase(self):
        sim = Simulation(
            "mcf",
            SimulationConfig(
                policy=PrefetchPolicy.SELF_REPAIRING,
                max_instructions=BUDGET,
            ),
        )
        sim.run()
        records = {
            id(r): r
            for t in sim.runtime.code_cache.linked_traces()
            for r in t.meta.get("records", {}).values()
        }
        # One same-object group covering several node-field loads.
        assert any(len(r.load_pcs) >= 3 for r in records.values())


class TestDot:
    def test_scrambled_chains_classify_pointer(self):
        sim = Simulation(
            "dot",
            SimulationConfig(
                policy=PrefetchPolicy.SELF_REPAIRING,
                max_instructions=120_000,
            ),
        )
        result = sim.run()
        kinds = record_kinds(sim)
        assert "stride" not in kinds or result.pointer_prefetches_inserted
        assert result.pointer_prefetches_inserted >= 1

    def test_traces_exit_early_often(self):
        result = run_simulation(
            "dot",
            policy=PrefetchPolicy.TRACE_ONLY,
            max_instructions=120_000,
        )
        stats = result.core
        assert stats.trace_entries > 0
        exit_ratio = stats.trace_exits_early / stats.trace_entries
        assert exit_ratio > 0.3  # the data-dependent branch bites


class TestEquake:
    def test_gather_matures_unprefetched(self):
        sim = Simulation(
            "equake",
            SimulationConfig(
                policy=PrefetchPolicy.SELF_REPAIRING,
                max_instructions=150_000,
            ),
        )
        result = sim.run()
        # Something matured (the gather), and it never got a prefetch.
        assert result.loads_matured >= 1


class TestApplu:
    def test_body_exceeds_trace_cap(self):
        """applu's point: the inner loop is longer than both the ROB and
        the trace-length cap."""
        workload = load_workload("applu")
        sim = Simulation(
            workload,
            SimulationConfig(
                policy=PrefetchPolicy.TRACE_ONLY,
                max_instructions=40_000,
            ),
        )
        sim.run()
        traces = sim.runtime.code_cache.linked_traces()
        assert traces
        trident = sim.runtime.trident
        assert any(
            t.original_length == trident.max_trace_instructions
            for t in traces
        )

    def test_basic_equals_self_repairing(self):
        kwargs = dict(max_instructions=80_000, warmup_instructions=150_000)
        basic = run_simulation(
            "applu", policy=PrefetchPolicy.BASIC, **kwargs
        )
        repaired = run_simulation(
            "applu", policy=PrefetchPolicy.SELF_REPAIRING, **kwargs
        )
        # "applu ... a prefetch distance of 1 is optimal": repair gains
        # nothing meaningful over the basic scheme.
        assert repaired.ipc == pytest.approx(basic.ipc, rel=0.10)


class TestGalgel:
    def test_more_streams_than_buffers(self):
        workload = load_workload("galgel")
        # 12 stream cursors advance per iteration.
        from repro.isa.opcodes import Opcode

        lda_updates = {
            inst.rd
            for inst in workload.program.instructions
            if inst.opcode is Opcode.LDA and inst.ra == inst.rd
        }
        assert len(lda_updates) >= 12


class TestGap:
    def test_low_trace_coverage_of_misses(self):
        result = run_simulation(
            "gap",
            policy=PrefetchPolicy.TRACE_ONLY,
            max_instructions=120_000,
            warmup_instructions=100_000,
        )
        # The pseudo-random probes miss outside any trace.
        assert result.miss_trace_coverage < 0.85


class TestParser:
    def test_many_static_load_sites(self):
        workload = load_workload("parser")
        loads = sum(
            1 for inst in workload.program.instructions if inst.is_load
        )
        assert loads > 150  # DLT-pressure comes from site count
