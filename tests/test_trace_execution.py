"""Directed tests of hot-trace execution inside the SMT core: entry,
exit, fall-through, synthetic instruction accounting."""

import pytest

from repro.config import MachineConfig, TridentConfig
from repro.cpu.core import SMTCore
from repro.isa.assembler import Assembler
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.mainmem import DataMemory
from repro.trident.trace import TraceInstruction
from repro.trident.trace_formation import form_trace


class _FakeHelper:
    def __init__(self, busy_until=0.0):
        self.busy_until = busy_until


class _FakeCodeCache:
    def __init__(self, patch_map):
        self._patch_map = patch_map


class FakeRuntime:
    """Minimal runtime stub: serves one trace, records hook calls.

    Mirrors both runtime views the core consumes: the ``trace_at`` /
    ``helper_busy_until`` methods used by the reference interpreter and
    the ``code_cache._patch_map`` / ``helper.busy_until`` attributes the
    decoded fast path binds at compile time.
    """

    overhead_only = False

    def __init__(self, trace, busy_until=0.0):
        self.trace = trace
        self.helper = _FakeHelper(busy_until)
        self.code_cache = _FakeCodeCache(
            {trace.head_pc: trace} if trace is not None else {}
        )
        self.loads = []
        self.executions = []
        self.branches = []

    @property
    def helper_busy_until(self):
        return self.helper.busy_until

    def trace_at(self, pc):
        if self.trace is not None and pc == self.trace.head_pc:
            return self.trace
        return None

    def on_branch(self, pc, taken, target, cycle):
        self.branches.append((pc, taken))

    def on_trace_load(self, pc, trace, ea, outcome, cycle):
        self.loads.append((pc, ea, outcome.kind.value))

    def on_trace_execution(self, trace, duration, completed, cycle):
        self.executions.append((trace.trace_id, completed))

    def tick(self, cycle):
        pass


def loop_program(iters=50):
    asm = Assembler("t")
    asm.li("r1", iters)
    asm.li("r5", 0x100000)
    asm.label("loop")                 # pc 2
    asm.ldq("r2", "r5", 0)            # pc 2
    asm.addq("r3", "r3", rb="r2")
    asm.lda("r5", "r5", 8)
    asm.subq("r1", "r1", imm=1)
    asm.bne("r1", "loop")
    asm.halt()
    return asm.build()


def run_with_trace(program, trace, budget=10_000):
    config = MachineConfig()
    runtime = FakeRuntime(trace)
    core = SMTCore(
        program, DataMemory(), MemoryHierarchy(config), config, runtime
    )
    core.run(budget)
    return core, runtime


class TestTraceExecution:
    def test_loop_executes_inside_trace(self):
        program = loop_program(iters=50)
        trace = form_trace(program, 2, [True], TridentConfig())
        core, runtime = run_with_trace(program, trace)
        assert core.stats.trace_entries == 50
        # Loads inside the trace reported with their original PCs.
        assert runtime.loads
        assert all(pc == 2 for pc, _ea, _k in runtime.loads)
        # Completed executions reported to the watch table — all but the
        # final iteration, whose back edge falls through (early exit).
        completions = [c for _tid, c in runtime.executions]
        assert completions.count(False) == 1
        assert completions.count(True) == 49

    def test_architectural_results_identical_with_trace(self):
        program = loop_program(iters=50)
        config = MachineConfig()
        plain = SMTCore(
            program, DataMemory(), MemoryHierarchy(config), config
        )
        plain.run(10_000)
        trace = form_trace(program, 2, [True], TridentConfig())
        core, _ = run_with_trace(program, trace)
        assert core.ctx.halted and plain.ctx.halted
        assert core.ctx.regs == plain.ctx.regs

    def test_early_exit_resumes_original_code(self):
        # Trace expects the back edge taken: the final iteration exits.
        program = loop_program(iters=10)
        trace = form_trace(program, 2, [True], TridentConfig())
        core, runtime = run_with_trace(program, trace)
        assert core.ctx.halted
        assert core.stats.trace_exits_early == 1  # the last iteration
        assert core.ctx.regs[1] == 0

    def test_synthetic_instructions_not_committed(self):
        program = loop_program(iters=30)
        trace = form_trace(program, 2, [True], TridentConfig())
        # Hand-insert a prefetch + nf-load pair.
        trace.body.insert(
            0,
            TraceInstruction(
                inst=Instruction(Opcode.PREFETCH, ra=5, disp=64),
                orig_pc=2,
                synthetic=True,
            ),
        )
        trace.body.insert(
            0,
            TraceInstruction(
                inst=Instruction(Opcode.LDQ_NF, rd=28, ra=5, disp=0),
                orig_pc=2,
                synthetic=True,
            ),
        )
        plain_program = loop_program(iters=30)
        config = MachineConfig()
        plain = SMTCore(
            plain_program, DataMemory(), MemoryHierarchy(config), config
        )
        plain.run(10_000)
        core, runtime = run_with_trace(program, trace)
        assert core.ctx.halted
        # Committed counts match the unoptimized run exactly.
        assert core.stats.committed == plain.stats.committed
        assert core.stats.synthetic_executed == 2 * 30
        # The synthetic nf-load never reaches the DLT hook.
        assert all(pc == 2 for pc, _ea, _k in runtime.loads)
        assert len(runtime.loads) == 30

    def test_prefetch_in_trace_reaches_hierarchy(self):
        program = loop_program(iters=30)
        trace = form_trace(program, 2, [True], TridentConfig())
        trace.body.insert(
            0,
            TraceInstruction(
                inst=Instruction(Opcode.PREFETCH, ra=5, disp=640),
                orig_pc=2,
                synthetic=True,
            ),
        )
        core, _ = run_with_trace(program, trace)
        assert core.hierarchy.stats.software_prefetches_issued > 0

    def test_trace_interference_when_helper_busy(self):
        program = loop_program(iters=2_000)
        config = MachineConfig()

        idle_core, _ = run_with_trace(program, None, budget=8_000)
        busy = SMTCore(
            loop_program(iters=2_000), DataMemory(),
            MemoryHierarchy(config), config,
            FakeRuntime(None, busy_until=float("inf")),
        )
        busy.run(8_000)
        assert busy.cycles > idle_core.cycles
