"""Tests for the memory hierarchy: timing, fills, Figure-6 classification."""

import pytest

from repro.config import MachineConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.stats import OutcomeKind, PrefetchSource


@pytest.fixture
def hier():
    return MemoryHierarchy(MachineConfig())


class TestDemandLoads:
    def test_cold_miss_goes_to_memory(self, hier):
        out = hier.load(pc=1, addr=0x10000, cycle=0)
        assert out.kind is OutcomeKind.MISS
        assert out.level == "mem"
        assert out.latency >= hier.config.memory_latency

    def test_hit_after_fill_completes(self, hier):
        hier.load(1, 0x10000, 0)
        out = hier.load(1, 0x10000, 1000)
        assert out.kind is OutcomeKind.HIT
        assert out.latency == hier.config.l1.latency

    def test_demand_merge_is_miss_with_remaining_latency(self, hier):
        first = hier.load(1, 0x10000, 0)
        second = hier.load(2, 0x10008, 100)
        assert second.kind is OutcomeKind.MISS
        assert second.latency < first.latency
        assert second.level == "inflight"

    def test_nearly_complete_merge_counts_as_hit(self, hier):
        first = hier.load(1, 0x10000, 0)
        ready = first.latency
        out = hier.load(2, 0x10008, ready - 1)
        assert out.kind is OutcomeKind.HIT

    def test_l2_hit_latency(self, hier):
        hier.load(1, 0x10000, 0)
        hier.drain(10_000)
        # Evict from L1 by filling its set (L1: 512 sets, 2-way).
        way_stride = 512 * 64
        hier.load(1, 0x10000 + way_stride, 20_000)
        hier.load(1, 0x10000 + 2 * way_stride, 30_000)
        hier.drain(40_000)
        out = hier.load(1, 0x10000, 50_000)
        assert out.level == "l2"
        assert out.latency >= hier.config.l2.latency

    def test_load_synthetic_not_recorded(self, hier):
        hier.load_synthetic(0x10000, 0)
        assert hier.stats.total_loads == 0

    def test_stats_recorded(self, hier):
        hier.load(1, 0x10000, 0)
        hier.load(1, 0x10000, 10_000)
        assert hier.stats.total_loads == 2
        assert hier.stats.outcomes[OutcomeKind.MISS] == 1
        assert hier.stats.outcomes[OutcomeKind.HIT] == 1


class TestSoftwarePrefetch:
    def test_prefetch_then_timely_load_is_prefetched_hit(self, hier):
        assert hier.software_prefetch(0x10000, 0)
        hier.drain(1000)
        out = hier.load(1, 0x10000, 1000)
        assert out.kind is OutcomeKind.HIT_PREFETCHED
        assert out.prefetch_source is PrefetchSource.SOFTWARE

    def test_second_touch_is_plain_hit(self, hier):
        hier.software_prefetch(0x10000, 0)
        hier.drain(1000)
        hier.load(1, 0x10000, 1000)
        out = hier.load(1, 0x10000, 1001)
        assert out.kind is OutcomeKind.HIT

    def test_late_load_is_partial_hit(self, hier):
        hier.software_prefetch(0x10000, 0)
        out = hier.load(1, 0x10000, 100)
        assert out.kind is OutcomeKind.PARTIAL_HIT
        assert 0 < out.latency < hier.config.memory_latency

    def test_prefetch_of_resident_line_is_useless(self, hier):
        hier.load(1, 0x10000, 0)
        hier.drain(1000)
        assert not hier.software_prefetch(0x10000, 1000)
        assert hier.stats.software_prefetches_useless == 1

    def test_prefetch_of_inflight_line_is_useless(self, hier):
        hier.software_prefetch(0x10000, 0)
        assert not hier.software_prefetch(0x10008, 1)

    def test_touched_fill_installs_without_prefetch_bit(self, hier):
        hier.software_prefetch(0x10000, 0)
        hier.load(1, 0x10000, 5)          # partial hit: consumes first touch
        hier.drain(10_000)
        out = hier.load(1, 0x10000, 10_000)
        assert out.kind is OutcomeKind.HIT


class TestDisplacement:
    def test_miss_due_to_prefetch(self, hier):
        # Fill one L1 set (2 ways), then prefetch a third line into it.
        way_stride = 512 * 64
        hier.load(1, 0x10000, 0)
        hier.load(1, 0x10000 + way_stride, 1)
        hier.drain(10_000)
        hier.software_prefetch(0x10000 + 2 * way_stride, 10_000)
        hier.drain(20_000)
        # One of the two resident lines was displaced by the prefetch.
        victims = [
            a
            for a in (0x10000, 0x10000 + way_stride)
            if not hier.l1.contains(a)
        ]
        assert len(victims) == 1
        out = hier.load(1, victims[0], 30_000)
        assert out.kind is OutcomeKind.MISS_DUE_TO_PREFETCH


class TestBusAndFills:
    def test_bus_serialises_fills(self, hier):
        first = hier.load(1, 0x10000, 0)
        second = hier.load(2, 0x20000, 0)
        # Independent lines, same cycle: the second fill waits for the bus.
        assert second.latency >= first.latency + hier.config.bus_transfer_cycles

    def test_flush_pending_installs_everything(self, hier):
        hier.load(1, 0x10000, 0)
        hier.software_prefetch(0x20000, 0)
        hier.flush_pending()
        assert hier.outstanding_fills == 0
        assert hier.l1.contains(0x10000)
        assert hier.l1.contains(0x20000)

    def test_store_allocates_without_stall(self, hier):
        hier.store(0x10000, 0)
        out = hier.load(1, 0x10000, 1)
        assert out.kind is OutcomeKind.HIT
        assert hier.stats.stores == 1

    def test_inclusive_install(self, hier):
        hier.load(1, 0x10000, 0)
        hier.drain(10_000)
        assert hier.l1.contains(0x10000)
        assert hier.l2.contains(0x10000)
        assert hier.l3.contains(0x10000)
