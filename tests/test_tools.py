"""Test the EXPERIMENTS.md regeneration tool against a sandbox copy."""

import importlib.util
import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).parent.parent
TOOL = ROOT / "tools" / "update_experiments.py"


def load_tool(monkeypatch, tmp_path):
    spec = importlib.util.spec_from_file_location("update_tool", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    results = tmp_path / "results"
    results.mkdir()
    monkeypatch.setattr(module, "RESULTS", results)
    experiments = tmp_path / "EXPERIMENTS.md"
    monkeypatch.setattr(module, "EXPERIMENTS", experiments)
    return module, results, experiments


class TestUpdateExperiments:
    def test_replaces_reference_block(self, monkeypatch, tmp_path):
        module, results, experiments = load_tool(monkeypatch, tmp_path)
        (results / "fig2_hw_baseline.txt").write_text("TABLE-2\n")
        (results / "fig5_policies.txt").write_text("TABLE-5\n")
        experiments.write_text(
            "# header\n\n## Reference tables\n\n```\nOLD\n```\n\n## Notes\nkeep\n"
        )
        assert module.main() == 0
        text = experiments.read_text()
        assert "OLD" not in text
        assert "TABLE-2" in text and "TABLE-5" in text
        assert text.index("TABLE-2") < text.index("TABLE-5")  # ordered
        assert "## Notes\nkeep" in text

    def test_missing_results_fail_loudly(self, monkeypatch, tmp_path):
        module, results, experiments = load_tool(monkeypatch, tmp_path)
        experiments.write_text("## Reference tables\n\n```\nOLD\n```\n")
        with pytest.raises(SystemExit, match="no usable results"):
            module.main()

    def test_empty_file_skipped_with_warning(
        self, monkeypatch, tmp_path, capsys
    ):
        module, results, experiments = load_tool(monkeypatch, tmp_path)
        (results / "fig2_hw_baseline.txt").write_text("TABLE-2\n")
        (results / "fig5_policies.txt").write_text("")  # corrupt: empty
        experiments.write_text("## Reference tables\n\n```\nOLD\n```\n")
        assert module.main() == 0
        text = experiments.read_text()
        assert "TABLE-2" in text
        err = capsys.readouterr().err
        assert "skipping empty fig5_policies.txt" in err

    def test_unreadable_file_skipped_with_warning(
        self, monkeypatch, tmp_path, capsys
    ):
        module, results, experiments = load_tool(monkeypatch, tmp_path)
        (results / "fig2_hw_baseline.txt").write_text("TABLE-2\n")
        bad = results / "fig5_policies.txt"
        bad.write_text("unreadable\n")
        real_read_text = pathlib.Path.read_text

        def read_text(self, *args, **kwargs):
            if self.name == bad.name:
                raise OSError("simulated I/O error")
            return real_read_text(self, *args, **kwargs)

        monkeypatch.setattr(pathlib.Path, "read_text", read_text)
        experiments.write_text("## Reference tables\n\n```\nOLD\n```\n")
        assert module.main() == 0
        err = capsys.readouterr().err
        assert "skipping unreadable fig5_policies.txt" in err

    def test_all_files_corrupt_fails_loudly(self, monkeypatch, tmp_path):
        module, results, experiments = load_tool(monkeypatch, tmp_path)
        (results / "fig2_hw_baseline.txt").write_text("")
        experiments.write_text("## Reference tables\n\n```\nOLD\n```\n")
        with pytest.raises(SystemExit, match="no usable results"):
            module.main()

    def test_missing_marker_fails_loudly(self, monkeypatch, tmp_path):
        module, results, experiments = load_tool(monkeypatch, tmp_path)
        (results / "fig2_hw_baseline.txt").write_text("T\n")
        experiments.write_text("# no marker here\n")
        with pytest.raises(SystemExit, match="Reference tables"):
            module.main()

    def test_real_experiments_file_has_marker(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert "## Reference tables" in text
