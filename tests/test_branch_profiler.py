"""Tests for the branch profiler's hot-head detection and capture."""

from repro.config import TridentConfig
from repro.trident.branch_profiler import BranchProfiler
from repro.trident.events import HotTraceEvent


def drive_loop(profiler, head=10, back_pc=20, iterations=30, inner=()):
    """Simulate a counted loop: optional inner conditional branches then a
    taken backward branch to ``head``.  Returns all events emitted."""
    events = []
    for _ in range(iterations):
        for pc, taken, target in inner:
            event = profiler.on_branch(pc, taken, target, cycle=0.0)
            if event:
                events.append(event)
        event = profiler.on_branch(back_pc, True, head, cycle=0.0)
        if event:
            events.append(event)
    return events


class TestHotHeadDetection:
    def test_saturation_produces_event(self):
        profiler = BranchProfiler(TridentConfig())
        events = drive_loop(profiler)
        assert len(events) == 1
        event = events[0]
        assert isinstance(event, HotTraceEvent)
        assert event.head_pc == 10
        # The closing back-edge direction is recorded as taken.
        assert event.directions == (True,)

    def test_needs_saturation_count(self):
        profiler = BranchProfiler(TridentConfig())
        events = drive_loop(profiler, iterations=10)
        assert events == []

    def test_forward_branches_never_candidates(self):
        profiler = BranchProfiler(TridentConfig())
        for _ in range(100):
            event = profiler.on_branch(5, True, 50, cycle=0.0)  # forward
            assert event is None

    def test_not_taken_branches_never_candidates(self):
        profiler = BranchProfiler(TridentConfig())
        for _ in range(100):
            assert profiler.on_branch(20, False, 10, 0.0) is None

    def test_captured_head_not_recaptured(self):
        profiler = BranchProfiler(TridentConfig())
        events = drive_loop(profiler, iterations=60)
        assert len(events) == 1

    def test_forget_allows_recapture(self):
        profiler = BranchProfiler(TridentConfig())
        drive_loop(profiler, iterations=40)
        profiler.forget(10)
        events = drive_loop(profiler, iterations=40)
        assert len(events) == 1


class TestCapture:
    def test_inner_branch_directions_recorded(self):
        profiler = BranchProfiler(TridentConfig())
        inner = [(12, True, 15), (17, False, 19)]
        events = drive_loop(profiler, inner=inner, iterations=30)
        assert len(events) == 1
        # inner directions in order, then the closing back edge.
        assert events[0].directions == (True, False, True)

    def test_capture_caps_at_bitmap_budget(self):
        config = TridentConfig()
        profiler = BranchProfiler(config)
        # Saturate the head: the 15th arrival arms and opens the capture
        # (one more iteration would close it via the back edge).
        assert drive_loop(profiler, iterations=15) == []
        # Now a pathological iteration with endless inner branches.
        event = None
        for i in range(200):
            event = profiler.on_branch(100 + i, True, 200 + i, 0.0)
            if event:
                break
        assert event is not None
        assert len(event.directions) == config.capture_bitmap_branches

    def test_two_loops_detected_sequentially(self):
        profiler = BranchProfiler(TridentConfig())
        first = drive_loop(profiler, head=10, back_pc=20, iterations=40)
        second = drive_loop(profiler, head=50, back_pc=60, iterations=40)
        assert len(first) == 1 and first[0].head_pc == 10
        assert len(second) == 1 and second[0].head_pc == 50

    def test_lru_within_profiler_set(self):
        config = TridentConfig()
        profiler = BranchProfiler(config)
        sets = config.profiler_entries // config.profiler_associativity
        # Five heads mapping to the same set (associativity 4): the first
        # is evicted before saturating if the others keep arriving.
        heads = [sets * i for i in range(1, 6)]
        for _ in range(10):
            for head in heads:
                profiler.on_branch(head + 5, True, head, 0.0)
        # No event yet (counters keep getting evicted or are below max).
        # Now hammer a single head to saturation.
        events = drive_loop(
            profiler, head=heads[0], back_pc=heads[0] + 5, iterations=20
        )
        assert len(events) == 1
