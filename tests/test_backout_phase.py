"""Tests for trace backout and the phase-change extension."""

import dataclasses

import pytest

from repro.config import MachineConfig, PrefetchPolicy, TridentConfig
from repro.memory.stats import LoadOutcome, OutcomeKind
from repro.trident.runtime import TridentRuntime
from repro.trident.trace_formation import form_trace

from conftest import simple_stride_program

MISS = LoadOutcome(OutcomeKind.MISS, 350, "mem")
HIT = LoadOutcome(OutcomeKind.HIT, 3, "l1")


def make_runtime(**trident_kwargs):
    program = simple_stride_program(iters=10_000)
    return TridentRuntime(
        program=program,
        machine=MachineConfig(),
        trident=TridentConfig(**trident_kwargs),
        policy=PrefetchPolicy.SELF_REPAIRING,
    )


def link_trace(runtime):
    trace = form_trace(runtime.program, 2, [True], runtime.trident)
    runtime.code_cache.link(trace)
    runtime.watch_table.register(trace.trace_id, trace.head_pc, len(trace))
    return trace


class TestTraceBackout:
    def test_underperforming_trace_unlinked(self):
        runtime = make_runtime()
        trace = link_trace(runtime)
        # 90% early exits, past the judgement threshold.
        for i in range(100):
            runtime.on_trace_execution(trace, 5.0, i % 10 == 0, float(i))
        assert runtime.trace_at(2) is None
        assert runtime.traces_backed_out == 1

    def test_healthy_trace_stays(self):
        runtime = make_runtime()
        trace = link_trace(runtime)
        for i in range(200):
            runtime.on_trace_execution(trace, 5.0, i % 2 == 0, float(i))
        assert runtime.trace_at(2) is trace
        assert runtime.traces_backed_out == 0

    def test_no_judgement_before_minimum_sample(self):
        runtime = make_runtime()
        trace = link_trace(runtime)
        for i in range(30):  # below backout_min_executions
            runtime.on_trace_execution(trace, 5.0, False, float(i))
        assert runtime.trace_at(2) is trace

    def test_backout_allows_recapture_then_blacklists(self):
        runtime = make_runtime()
        profiler = runtime.profiler

        def hot_loop_events(n=40):
            events = 0
            for i in range(n):
                event = profiler.on_branch(6, True, 2, float(i))
                if event is not None:
                    runtime.events.push(event)
                    events += 1
            return events

        # Initial capture through the profiler marks the head captured.
        assert hot_loop_events() == 1
        for attempt in range(runtime.trident.backout_max_retries + 1):
            trace = link_trace(runtime)
            for i in range(100):
                runtime.on_trace_execution(trace, 5.0, False, float(i))
            assert runtime.trace_at(2) is None
            if attempt < runtime.trident.backout_max_retries:
                # The head was forgotten: it can saturate and capture again.
                assert hot_loop_events() == 1
        # Retries exhausted: the head stays captured, no more events.
        assert hot_loop_events() == 0

    def test_trace_being_optimized_not_judged(self):
        runtime = make_runtime()
        trace = link_trace(runtime)
        runtime.watch_table.set_optimizing(trace.trace_id, True)
        for i in range(100):
            runtime.on_trace_execution(trace, 5.0, False, float(i))
        assert runtime.trace_at(2) is trace


class TestPhaseDetection:
    def drive_interval(self, runtime, trace, pc, outcome, loads):
        addr = 0x100000
        for _ in range(loads):
            runtime.on_trace_load(pc, trace, addr, outcome, 0.0)
            addr += 8  # constant small stride, never delinquency-bound

    def test_phase_shift_clears_mature_flags(self):
        runtime = make_runtime(
            phase_detection=True, phase_interval_loads=500
        )
        trace = link_trace(runtime)
        pc = trace.load_pcs()[0]
        runtime.dlt.update(pc, 0x100000, False, 0)
        runtime.dlt.set_mature(pc)
        # Interval 1: ~0% misses; interval 2 establishes the baseline.
        self.drive_interval(runtime, trace, pc, HIT, 1_000)
        assert runtime.dlt.lookup(pc).mature
        # Interval 3: heavy misses -> phase change -> mature cleared.
        self.drive_interval(runtime, trace, pc, MISS, 500)
        assert runtime.phase_changes >= 1
        assert not runtime.dlt.lookup(pc).mature

    def test_stable_phase_never_fires(self):
        runtime = make_runtime(
            phase_detection=True, phase_interval_loads=500
        )
        trace = link_trace(runtime)
        pc = trace.load_pcs()[0]
        self.drive_interval(runtime, trace, pc, HIT, 5_000)
        assert runtime.phase_changes == 0

    def test_detection_off_by_default(self):
        runtime = make_runtime()
        trace = link_trace(runtime)
        pc = trace.load_pcs()[0]
        self.drive_interval(runtime, trace, pc, HIT, 9_000)
        self.drive_interval(runtime, trace, pc, MISS, 9_000)
        assert runtime.phase_changes == 0

    def test_phase_change_reopens_records(self):
        from repro.core.repair import PrefetchRecord
        from repro.isa.instruction import Instruction
        from repro.isa.opcodes import Opcode

        runtime = make_runtime(
            phase_detection=True, phase_interval_loads=500
        )
        trace = link_trace(runtime)
        pc = trace.load_pcs()[0]
        record = PrefetchRecord(
            group_key=(pc,), load_pcs=(pc,), base_reg=1, stride=8,
            distance=4, base_offsets=(0,),
            instructions=[Instruction(Opcode.PREFETCH, ra=1, disp=32)],
            mature=True, repairs_left=0, max_distance=10,
        )
        trace.meta["records"] = {pc: record}
        self.drive_interval(runtime, trace, pc, HIT, 1_000)
        self.drive_interval(runtime, trace, pc, MISS, 500)
        assert not record.mature
        assert record.repairs_left >= record.max_distance
        assert record.prev_avg_latency is None
