"""Unit tests for the observability layer (repro.obs)."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    EventRing,
    MetricsRegistry,
    Observer,
    TimelineCollector,
    TraceEvent,
    chrome_trace,
    validate_chrome_trace,
)
from repro.obs.metrics import Histogram
from repro.obs.sampling import IntervalSampler


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        h = Histogram("h", bounds=(3, 11, 35))
        h.observe(3)    # lands in the 3-bucket, not the 11-bucket
        h.observe(4)    # 11-bucket
        h.observe(11)   # 11-bucket
        h.observe(12)   # 35-bucket
        h.observe(35)   # 35-bucket
        h.observe(36)   # overflow
        assert h.counts == [1, 2, 2, 1]
        assert h.count == 6

    def test_summary_stats(self):
        h = Histogram("h", bounds=(10,))
        for v in (2, 4, 6):
            h.observe(v)
        assert h.min == 2 and h.max == 6
        assert h.mean == pytest.approx(4.0)
        snap = h.snapshot()
        assert snap["counts"] == [3, 0]
        assert snap["total"] == 12

    def test_bounds_are_sorted_and_required(self):
        assert Histogram("h", bounds=(35, 3, 11)).bounds == (3, 11, 35)
        with pytest.raises(ValueError):
            Histogram("h", bounds=())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c", (1, 2)) is reg.histogram("c")

    def test_cross_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x", (1,))

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.set_many({"g": 1.5})
        reg.histogram("h", (1, 2)).observe(1)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        json.dumps(snap)  # must be JSON-serialisable


class TestEventRing:
    def test_overflow_keeps_newest_and_counts_drops(self):
        ring = EventRing(capacity=4)
        for i in range(10):
            ring.append(TraceEvent(float(i), "k", {"i": i}))
        kept = [e.fields["i"] for e in ring.events()]
        assert kept == [6, 7, 8, 9]
        assert ring.dropped == 6
        assert ring.total_emitted == 10
        assert ring.summary()["buffered"] == 4

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventRing(capacity=0)


class TestObserver:
    def test_emit_without_cycle_uses_logical_clock(self):
        obs = Observer()
        obs.now = 123.0
        obs.emit("repair", None, pc=1, new_distance=2)
        assert obs.events()[0].cycle == 123.0

    def test_snapshot_includes_samples_only_when_sampling(self):
        assert "samples" not in Observer().snapshot()
        assert Observer(sample_interval=10).snapshot()["samples"] == []


class TestSampler:
    def test_window_deltas(self):
        s = IntervalSampler(100)
        s.start(instructions=1000, cycles=2000.0, loads=10, misses=2)
        sample = s.record(
            instructions=1100, cycles=2400.0, loads=60, misses=12
        )
        assert sample.instructions == 100
        assert sample.cycles == 400.0
        assert sample.ipc == pytest.approx(0.25)
        assert sample.miss_rate == pytest.approx(10 / 50)
        assert sample.end_instruction == 1100

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            IntervalSampler(0)


class TestTimelineCollector:
    def _collector_with_group(self):
        tc = TimelineCollector()
        tc.on_event(
            100.0,
            "insert",
            {"load_pcs": [3, 4, 7], "distance": 1, "prefetch_kind": "stride"},
        )
        return tc

    def test_insert_then_repairs_build_trajectory(self):
        tc = self._collector_with_group()
        tc.on_event(
            200.0,
            "repair",
            {"pc": 3, "new_distance": 2, "avg_latency": 40.0},
        )
        tc.on_event(
            300.0,
            "repair",
            {"pc": 3, "new_distance": 3, "avg_latency": 38.0,
             "mature": True},
        )
        (tl,) = tc.timelines()
        assert tl.pc == 3
        assert tl.distance_trajectory() == [
            (100.0, 1), (200.0, 2), (300.0, 3),
        ]
        assert tl.final_distance == 3
        assert tl.mature and tl.mature_cycle == 300.0

    def test_member_pc_events_land_on_group_lead(self):
        tc = self._collector_with_group()
        tc.on_event(150.0, "dl_event", {"pc": 7})
        tc.on_event(250.0, "mature", {"pc": 4})
        (tl,) = tc.timelines()
        assert tl.dl_events == 1
        assert tl.mature

    def test_events_for_unknown_pcs_ignored(self):
        tc = TimelineCollector()
        tc.on_event(1.0, "repair", {"pc": 99, "new_distance": 2})
        tc.on_event(1.0, "dl_event", {"pc": 99})
        assert len(tc) == 0


class TestChromeTrace:
    def _events(self):
        return [
            TraceEvent(10.0, "dl_event", {"pc": 3}),
            TraceEvent(20.0, "helper_begin", {"job": "repair", "ready": 50.0}),
            TraceEvent(
                50.0, "helper_end", {"job": "repair", "began": 20.0}
            ),
            TraceEvent(60.0, "fill", {"level": "l3", "block": 7}),
            TraceEvent(70.0, "fault", {"fault": "dram_latency"}),
            TraceEvent(80.0, "sample", {"ipc": 0.5, "miss_rate": 0.1}),
        ]

    def test_schema_valid_and_typed(self):
        payload = chrome_trace(self._events(), metadata={"w": "mcf"})
        assert validate_chrome_trace(payload) == []
        by_ph = {}
        for event in payload["traceEvents"]:
            by_ph.setdefault(event["ph"], []).append(event)
        # helper job is one complete slice (begin marker elided)
        (slice_,) = by_ph["X"]
        assert slice_["name"] == "helper:repair"
        assert slice_["ts"] == 20.0 and slice_["dur"] == 30.0
        # the sample became two counter events
        assert {e["name"] for e in by_ph["C"]} == {
            "windowed IPC", "windowed miss rate",
        }
        # metadata names every track
        assert any(e["name"] == "process_name" for e in by_ph["M"])

    def test_tracks_route_by_kind(self):
        payload = chrome_trace(self._events())
        tids = {
            e["name"]: e["tid"]
            for e in payload["traceEvents"]
            if e["ph"] == "i"
        }
        assert tids["dl_event"] != tids["fill"] != tids["fault"]

    def test_validator_flags_problems(self):
        assert validate_chrome_trace({"traceEvents": []}) != []
        bad = {"traceEvents": [{"ph": "Z", "name": "x"}]}
        assert any("invalid ph" in p for p in validate_chrome_trace(bad))
        assert validate_chrome_trace([]) == ["top level is not an object"]
