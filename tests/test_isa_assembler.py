"""Tests for the assembler DSL, programs, and instruction helpers."""

import pytest

from repro.isa.assembler import Assembler, _reg
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import (
    OPTIMIZER_SCRATCH_REGISTERS,
    check_program_register,
    parse_register,
    register_name,
)


class TestRegisterParsing:
    def test_parse_simple(self):
        assert parse_register("r0") == 0
        assert parse_register("r31") == 31

    def test_parse_uppercase(self):
        assert parse_register("R7") == 7

    def test_parse_whitespace(self):
        assert parse_register("  r12 ") == 12

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_register("x1")
        with pytest.raises(ValueError):
            parse_register("r")
        with pytest.raises(ValueError):
            parse_register("r32")

    def test_register_name_round_trip(self):
        for i in range(32):
            assert parse_register(register_name(i)) == i

    def test_register_name_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            register_name(32)

    def test_reserved_registers_rejected_for_programs(self):
        for reg in OPTIMIZER_SCRATCH_REGISTERS:
            with pytest.raises(ValueError):
                check_program_register(reg)

    def test_zero_register_allowed(self):
        assert check_program_register(31) == 31

    def test_reg_operand_accepts_int(self):
        assert _reg(5) == 5
        with pytest.raises(ValueError):
            _reg(99)
        with pytest.raises(TypeError):
            _reg(3.5)


class TestAssembler:
    def test_builds_simple_program(self):
        asm = Assembler("t")
        asm.li("r1", 100)
        asm.halt()
        program = asm.build()
        assert len(program) == 2
        assert program.instructions[0].opcode is Opcode.LDA
        assert program.instructions[0].disp == 100

    def test_forward_label_resolution(self):
        asm = Assembler("t")
        asm.beq("r1", "done")
        asm.addq("r2", "r2", imm=1)
        asm.label("done")
        asm.halt()
        program = asm.build()
        assert program.instructions[0].target == 2

    def test_backward_label_resolution(self):
        asm = Assembler("t")
        asm.label("loop")
        asm.subq("r1", "r1", imm=1)
        asm.bne("r1", "loop")
        asm.halt()
        program = asm.build()
        assert program.instructions[1].target == 0

    def test_undefined_label_rejected(self):
        asm = Assembler("t")
        asm.br("nowhere")
        asm.halt()
        with pytest.raises(ValueError, match="undefined label"):
            asm.build()

    def test_duplicate_label_rejected(self):
        asm = Assembler("t")
        asm.label("a")
        with pytest.raises(ValueError, match="duplicate"):
            asm.label("a")

    def test_alu_requires_exactly_one_rhs(self):
        asm = Assembler("t")
        with pytest.raises(ValueError):
            asm.addq("r1", "r2")
        with pytest.raises(ValueError):
            asm.addq("r1", "r2", rb="r3", imm=4)

    def test_reserved_register_write_rejected(self):
        asm = Assembler("t")
        with pytest.raises(ValueError, match="reserved"):
            asm.ldq("r28", "r1", 0)

    def test_reserved_register_allowed_for_optimizer(self):
        asm = Assembler("t", allow_reserved=True)
        asm.ldq_nf("r28", "r1", 0)
        assert asm.here == 1

    def test_missing_halt_rejected(self):
        asm = Assembler("t")
        asm.nop()
        with pytest.raises(ValueError, match="no HALT"):
            asm.build()

    def test_here_tracks_pc(self):
        asm = Assembler("t")
        assert asm.here == 0
        asm.nop()
        assert asm.here == 1


class TestProgram:
    def test_fetch_out_of_range(self):
        program = Program(name="p")
        with pytest.raises(IndexError):
            program.fetch(0)

    def test_label_lookup(self):
        asm = Assembler("t")
        asm.label("start")
        asm.halt()
        program = asm.build()
        assert program.label_pc("start") == 0
        assert program.pc_label(0) == "start"
        assert program.pc_label(1) is None

    def test_validate_rejects_out_of_range_target(self):
        inst = Instruction(Opcode.BR, target=99)
        program = Program(
            instructions=[inst, Instruction(Opcode.HALT)], name="p"
        )
        with pytest.raises(ValueError, match="out-of-range"):
            program.validate()


class TestInstruction:
    def test_source_registers_for_store(self):
        inst = Instruction(Opcode.STQ, rd=3, ra=4, disp=8)
        assert set(inst.source_registers()) == {3, 4}

    def test_destination_register(self):
        load = Instruction(Opcode.LDQ, rd=5, ra=1)
        assert load.destination_register() == 5
        store = Instruction(Opcode.STQ, rd=5, ra=1)
        assert store.destination_register() is None
        branch = Instruction(Opcode.BNE, ra=2, target=0)
        assert branch.destination_register() is None

    def test_copy_is_independent(self):
        inst = Instruction(Opcode.PREFETCH, ra=1, disp=64, meta={"a": 1})
        dup = inst.copy()
        dup.disp = 128
        dup.meta["a"] = 2
        assert inst.disp == 64
        assert inst.meta["a"] == 1

    def test_classification_properties(self):
        assert Instruction(Opcode.LDQ, rd=1, ra=2).is_load
        assert Instruction(Opcode.LDQ_NF, rd=1, ra=2).is_load
        assert Instruction(Opcode.STQ, rd=1, ra=2).is_store
        assert Instruction(Opcode.PREFETCH, ra=2).is_prefetch
        assert Instruction(Opcode.BNE, ra=1).is_conditional_branch
        assert Instruction(Opcode.BR).is_branch
        assert not Instruction(Opcode.BR).is_conditional_branch
