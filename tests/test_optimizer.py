"""Unit tests for the PrefetchOptimizer's decision tree."""

import pytest

from repro.config import MachineConfig, PrefetchPolicy, TridentConfig
from repro.core.optimizer import PrefetchOptimizer
from repro.trident.code_cache import CodeCache
from repro.trident.dlt import DelinquentLoadTable
from repro.trident.trace_formation import form_trace
from repro.trident.watch_table import WatchTable

from conftest import simple_stride_program


def make_optimizer(policy=PrefetchPolicy.SELF_REPAIRING, **kwargs):
    machine = MachineConfig()
    trident = TridentConfig()
    dlt = DelinquentLoadTable(trident.dlt, machine.l2_miss_latency / 2)
    watch = WatchTable()
    cache = CodeCache()
    opt = PrefetchOptimizer(
        machine=machine,
        trident=trident,
        policy=policy,
        dlt=dlt,
        watch_table=watch,
        code_cache=cache,
        **kwargs,
    )
    return opt


def make_trace(opt):
    program = simple_stride_program(iters=1_000)
    trace = form_trace(program, 2, [True], opt.trident)
    opt.code_cache.link(trace)
    entry = opt.watch_table.register(trace.trace_id, 2, len(trace))
    opt.watch_table.record_execution(trace.trace_id, 20.0, True)
    return trace


def drive_delinquency(opt, pc, windows=1, stride=8):
    addr = 0x100000
    for _ in range(windows * opt.trident.dlt.access_window):
        opt.dlt.update(pc, addr, True, 350)
        addr += stride


class TestDecisionTree:
    def test_first_event_yields_insertion(self):
        opt = make_optimizer()
        trace = make_trace(opt)
        pc = trace.load_pcs()[0]
        drive_delinquency(opt, pc)
        job = opt.process_delinquent_load(trace, pc)
        assert job.kind == "insert"
        job.apply()
        new = opt.code_cache.lookup(2)
        assert new.prefetch_instructions()
        assert opt.stats.insertion_jobs == 1
        # Adaptive policy starts at distance 1.
        record = new.meta["records"][pc]
        assert record.distance == 1

    def test_second_event_yields_repair(self):
        opt = make_optimizer()
        trace = make_trace(opt)
        pc = trace.load_pcs()[0]
        drive_delinquency(opt, pc)
        opt.process_delinquent_load(trace, pc).apply()
        new = opt.code_cache.lookup(2)
        drive_delinquency(opt, pc)
        job = opt.process_delinquent_load(new, pc)
        assert job.kind == "repair"
        job.apply()
        assert opt.stats.repairs_applied == 1
        assert new.meta["records"][pc].distance == 2

    def test_non_adaptive_policy_matures_after_insertion(self):
        opt = make_optimizer(policy=PrefetchPolicy.BASIC)
        trace = make_trace(opt)
        pc = trace.load_pcs()[0]
        drive_delinquency(opt, pc)
        opt.process_delinquent_load(trace, pc).apply()
        assert opt.dlt.lookup(pc).mature

    def test_basic_policy_uses_estimate(self):
        opt = make_optimizer(policy=PrefetchPolicy.BASIC)
        trace = make_trace(opt)
        pc = trace.load_pcs()[0]
        drive_delinquency(opt, pc)
        opt.process_delinquent_load(trace, pc).apply()
        new = opt.code_cache.lookup(2)
        record = new.meta["records"][pc]
        # avg miss latency 350 / avg exec 20 -> estimate ~18.
        assert record.distance == pytest.approx(18, abs=2)

    def test_unclassifiable_load_matures(self):
        from repro.isa.assembler import Assembler

        # A gather: base register computed from a loaded value.
        asm = Assembler("gather")
        asm.li("r1", 0x10000)
        asm.li("r4", 0x40000)
        asm.li("r2", 1000)
        asm.label("loop")
        asm.ldq("r3", "r1", 0)
        asm.sll("r5", "r3", imm=3)
        asm.addq("r5", "r5", rb="r4")
        asm.ldq("r6", "r5", 0)       # gather (pc 7)
        asm.lda("r1", "r1", 8)
        asm.subq("r2", "r2", imm=1)
        asm.bne("r2", "loop")
        asm.halt()
        program = asm.build()
        opt = make_optimizer()
        trace = form_trace(program, 3, [True], opt.trident)
        opt.code_cache.link(trace)
        opt.watch_table.register(trace.trace_id, 3, len(trace))
        gather_pc = 6
        # Scrambled addresses: no stride for the DLT to find.
        import random
        rng = random.Random(0)
        for _ in range(256):
            opt.dlt.update(gather_pc, rng.randrange(1 << 22) * 8, True, 350)
        job = opt.process_delinquent_load(trace, gather_pc)
        job.apply()
        assert opt.dlt.lookup(gather_pc).mature
        # The index load (pc 3, strided) may have earned a prefetch, but
        # the gather itself never did.
        current = opt.code_cache.lookup(3)
        records = current.meta.get("records", {}) if current else {}
        assert gather_pc not in records

    def test_batch_repair_covers_sibling_records(self):
        """One event repairs every delinquent record in the trace."""
        from repro.isa.assembler import Assembler

        asm = Assembler("two_streams")
        asm.li("r1", 0x100000)
        asm.li("r2", 0x900000)
        asm.li("r3", 10_000)
        asm.label("loop")
        asm.ldq("r4", "r1", 0)
        asm.ldq("r5", "r2", 0)
        asm.lda("r1", "r1", 64)
        asm.lda("r2", "r2", 64)
        asm.subq("r3", "r3", imm=1)
        asm.bne("r3", "loop")
        asm.halt()
        program = asm.build()
        opt = make_optimizer()
        trace = form_trace(program, 3, [True], opt.trident)
        opt.code_cache.link(trace)
        opt.watch_table.register(trace.trace_id, 3, len(trace))
        opt.watch_table.record_execution(trace.trace_id, 20.0, True)
        pc_a, pc_b = trace.load_pcs()
        drive_delinquency(opt, pc_a, stride=64)
        drive_delinquency(opt, pc_b, stride=64)
        opt.process_delinquent_load(trace, pc_a).apply()
        new = opt.code_cache.lookup(3)
        drive_delinquency(opt, pc_a, stride=64)
        drive_delinquency(opt, pc_b, stride=64)
        job = opt.process_delinquent_load(new, pc_a)
        job.apply()
        records = new.meta["records"]
        assert records[pc_a].repairs_done == 1
        assert records[pc_b].repairs_done == 1

    def test_regeneration_preserves_repair_state(self):
        """A newly delinquent group member triggers regeneration; the
        existing group's repair state survives through inheritance."""
        from repro.isa.assembler import Assembler

        asm = Assembler("two_fields")
        asm.li("r1", 0x100000)
        asm.li("r3", 10_000)
        asm.label("loop")
        asm.ldq("r4", "r1", 0)       # field A (pc 2)
        asm.ldq("r5", "r1", 256)     # field B (pc 3): a separate line
        asm.lda("r1", "r1", 64)
        asm.subq("r3", "r3", imm=1)
        asm.bne("r3", "loop")
        asm.halt()
        program = asm.build()
        opt = make_optimizer()
        trace = form_trace(program, 2, [True], opt.trident)
        opt.code_cache.link(trace)
        opt.watch_table.register(trace.trace_id, 2, len(trace))
        opt.watch_table.record_execution(trace.trace_id, 20.0, True)
        pc_a, pc_b = trace.load_pcs()
        # Only field A is delinquent at first: the plan covers A alone.
        drive_delinquency(opt, pc_a, stride=64)
        opt.process_delinquent_load(trace, pc_a).apply()
        new = opt.code_cache.lookup(2)
        records = new.meta["records"]
        assert pc_a in records and pc_b not in records
        records[pc_a].distance = 7
        records[pc_a].repairs_done = 3
        # Field B turns delinquent later: regeneration must widen the
        # plan while keeping A's repair state.
        drive_delinquency(opt, pc_a, stride=64)
        drive_delinquency(opt, pc_b, stride=64)
        opt.process_delinquent_load(new, pc_b).apply()
        regenerated = opt.code_cache.lookup(2)
        assert regenerated.trace_id != new.trace_id
        inherited = regenerated.meta["records"][pc_a]
        assert inherited.distance == 7
        assert inherited.repairs_done == 3
        assert pc_b in regenerated.meta["records"]
