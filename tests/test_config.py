"""Tests for the configuration objects (the paper's Tables 1 and 2)."""

import pytest

from repro.config import (
    CacheConfig,
    DLTConfig,
    MachineConfig,
    PrefetchPolicy,
    SimulationConfig,
    StreamBufferConfig,
    TridentConfig,
)


class TestTable1:
    def test_paper_baseline_matches_table_1(self):
        m = MachineConfig.paper_baseline()
        assert m.issue_width == 4
        assert m.pipeline_depth == 20
        assert m.rob_entries == 256
        assert m.hardware_contexts == 2
        assert m.l1.size_bytes == 64 * 1024
        assert m.l1.associativity == 2 and m.l1.latency == 3
        assert m.l2.size_bytes == 512 * 1024
        assert m.l2.associativity == 8 and m.l2.latency == 11
        assert m.l3.size_bytes == 4 * 1024 * 1024
        assert m.l3.associativity == 16 and m.l3.latency == 35
        assert m.memory_latency == 350
        assert m.stream_buffers.num_buffers == 8
        assert m.stream_buffers.entries_per_buffer == 8
        assert m.stream_buffers.history_table_entries == 1024

    def test_l2_miss_latency_is_l3_hit(self):
        assert MachineConfig().l2_miss_latency == 35

    def test_with_stream_buffers(self):
        m = MachineConfig().with_stream_buffers(
            StreamBufferConfig.paper_4x4()
        )
        assert m.stream_buffers.num_buffers == 4
        assert m.l1.size_bytes == 64 * 1024  # rest untouched

    def test_with_l1_size(self):
        m = MachineConfig().with_l1_size(88 * 1024)
        assert m.l1.size_bytes == 88 * 1024
        assert m.l1.associativity == 2

    def test_cache_geometry(self):
        assert CacheConfig(64 * 1024, 2, 3).num_sets == 512


class TestTable2:
    def test_paper_default_matches_table_2(self):
        t = TridentConfig.paper_default()
        assert t.profiler_entries == 256
        assert t.profiler_associativity == 4
        assert t.profiler_counter_bits == 4
        assert t.capture_bitmap_branches == 48  # three 16-bit bitmaps
        assert t.watch_table_entries == 256
        assert t.dlt.entries == 1024
        assert t.dlt.associativity == 2
        assert t.dlt.access_window == 256
        assert t.dlt.miss_threshold == 8

    def test_dlt_miss_rate(self):
        assert DLTConfig().miss_rate_threshold == pytest.approx(8 / 256)

    def test_with_miss_rate(self):
        dlt = DLTConfig().with_miss_rate(0.06)
        assert dlt.miss_threshold == 15  # round(0.06 * 256)

    def test_with_window_keeps_rate(self):
        dlt = DLTConfig().with_window(512)
        assert dlt.access_window == 512
        assert dlt.miss_threshold == 16

    def test_with_entries(self):
        assert DLTConfig().with_entries(128).entries == 128

    def test_confidence_parameters(self):
        dlt = DLTConfig()
        assert (dlt.confidence_max, dlt.confidence_up, dlt.confidence_down) \
            == (15, 1, 7)


class TestPolicies:
    def test_software_prefetching_flags(self):
        assert not PrefetchPolicy.NONE.software_prefetching
        assert not PrefetchPolicy.HW_ONLY.software_prefetching
        assert PrefetchPolicy.BASIC.software_prefetching
        assert PrefetchPolicy.SELF_REPAIRING.software_prefetching
        assert PrefetchPolicy.TRACE_ONLY.software_prefetching

    def test_inserts_prefetches(self):
        assert PrefetchPolicy.BASIC.inserts_prefetches
        assert not PrefetchPolicy.TRACE_ONLY.inserts_prefetches
        assert not PrefetchPolicy.HW_ONLY.inserts_prefetches

    def test_hardware_prefetching_flags(self):
        assert not PrefetchPolicy.NONE.hardware_prefetching
        assert not PrefetchPolicy.SW_ONLY.hardware_prefetching
        assert PrefetchPolicy.HW_ONLY.hardware_prefetching
        assert PrefetchPolicy.SELF_REPAIRING.hardware_prefetching

    def test_adaptive_repair_flags(self):
        assert PrefetchPolicy.SELF_REPAIRING.adaptive_repair
        assert PrefetchPolicy.SW_ONLY.adaptive_repair
        assert not PrefetchPolicy.BASIC.adaptive_repair
        assert not PrefetchPolicy.WHOLE_OBJECT.adaptive_repair

    def test_grouping_flags(self):
        assert not PrefetchPolicy.BASIC.same_object_grouping
        assert PrefetchPolicy.WHOLE_OBJECT.same_object_grouping
        assert PrefetchPolicy.SELF_REPAIRING.same_object_grouping

    def test_simulation_config_replace(self):
        cfg = SimulationConfig()
        other = cfg.replace(max_instructions=5)
        assert other.max_instructions == 5
        assert cfg.max_instructions != 5
