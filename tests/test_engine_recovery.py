"""Engine recovery paths: broken-pool rebuilds, interrupt flushing, the
CLI's clean SIGINT/SIGTERM exits, and resume-sweep."""

from __future__ import annotations

import os
import signal

import pytest

from repro.__main__ import main
from repro.harness import engine as engine_mod
from repro.harness.cache import ResultCache
from repro.harness.engine import ExperimentEngine, make_job
from repro.harness.journal import JobJournal, job_key

BUDGET = 2_000
WARMUP = 200


def _jobs(workloads=("art", "dot", "mcf")):
    return [
        make_job(w, max_instructions=BUDGET, warmup_instructions=WARMUP)
        for w in workloads
    ]


def _always_crash(jobs, ckpt_root, resume_ok):
    """Module-level (picklable) stand-in for ``_worker_chain`` that dies
    the way a segfaulting worker does."""
    os._exit(13)


class TestBrokenPool:
    def test_one_dying_worker_no_longer_loses_the_batch(
        self, tmp_path, monkeypatch
    ):
        """Regression: a worker calling ``os._exit`` breaks the whole
        ``ProcessPoolExecutor``; the engine must rebuild the pool and
        resubmit only the chains that never finished."""
        monkeypatch.setenv(
            engine_mod._ENV_CRASH_ONCE, str(tmp_path / "latch")
        )
        engine = ExperimentEngine(
            workers=2, cache=ResultCache(tmp_path / "cache")
        )
        outcomes = engine.run(_jobs())
        assert all(outcome.ok for outcome in outcomes)
        assert engine.stats.pool_rebuilds == 1
        assert engine.stats.leases_reclaimed >= 1
        assert engine.stats.jobs_retried >= 1
        assert engine.stats.jobs_quarantined == 0

    def test_persistent_crasher_is_quarantined_not_looped(
        self, tmp_path, monkeypatch
    ):
        """A chain that breaks the pool on every attempt ends as an
        error record after MAX_POOL_ATTEMPTS, not an infinite loop."""
        monkeypatch.setattr(engine_mod, "_worker_chain", _always_crash)
        engine = ExperimentEngine(
            workers=2, cache=ResultCache(tmp_path / "cache")
        )
        outcomes = engine.run(_jobs(("art", "dot")))
        assert all(not outcome.ok for outcome in outcomes)
        assert all(
            outcome.error["type"] == "WorkerCrashError"
            for outcome in outcomes
        )
        assert engine.stats.pool_rebuilds == engine_mod.MAX_POOL_ATTEMPTS
        assert engine.stats.jobs_quarantined == 2

    def test_journal_records_pool_reclaims(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            engine_mod._ENV_CRASH_ONCE, str(tmp_path / "latch")
        )
        journal = JobJournal(tmp_path / "j", fsync=False)
        engine = ExperimentEngine(
            workers=2, cache=ResultCache(tmp_path / "cache"),
            journal=journal,
        )
        jobs = _jobs()
        engine.run(jobs)
        state = journal.recover()
        assert state.unfinished() == []
        assert sum(r.strikes for r in state.jobs.values()) >= 1


class TestInterruptFlush:
    def test_interrupt_keeps_finished_work_durable(
        self, tmp_path, monkeypatch
    ):
        """A SIGINT mid-sweep: jobs that finished are already in the
        cache and journal; the journal records the interruption; a
        resumed run replays them instead of recomputing."""
        jobs = _jobs(("art", "dot"))
        real = engine_mod._execute_job

        def interrupt_on_dot(job, *args, **kwargs):
            if job.workload == "dot":
                raise KeyboardInterrupt
            return real(job, *args, **kwargs)

        monkeypatch.setattr(engine_mod, "_execute_job", interrupt_on_dot)
        cache = ResultCache(tmp_path / "cache")
        journal = JobJournal(tmp_path / "j", fsync=False)
        engine = ExperimentEngine(cache=cache, journal=journal)
        with pytest.raises(KeyboardInterrupt):
            engine.run(jobs)

        state = journal.recover()
        assert state.interrupted
        done = [r for r in state.jobs.values() if r.state == "done"]
        assert len(done) == 1  # art finished before the interrupt

        monkeypatch.setattr(engine_mod, "_execute_job", real)
        resumed = ExperimentEngine(
            cache=cache, journal=JobJournal(tmp_path / "j", fsync=False)
        )
        outcomes = resumed.run(jobs)
        assert all(outcome.ok for outcome in outcomes)
        assert resumed.stats.jobs_cached == 1  # art replayed, not re-run


class TestSignalExits:
    def _fake_figure(self, exc):
        def figure(**kwargs):
            raise exc
        return figure

    def test_sigint_exits_130_without_traceback(
        self, monkeypatch, capsys
    ):
        import repro.__main__ as cli

        monkeypatch.setitem(
            cli._FIGURES, "5", self._fake_figure(KeyboardInterrupt())
        )
        assert main(["figure", "5"]) == 130
        err = capsys.readouterr().err
        assert "interrupted (SIGINT)" in err
        assert "Traceback" not in err

    def test_sigterm_exits_143(self, monkeypatch, capsys):
        import repro.__main__ as cli

        def figure(**kwargs):
            # Raise the real signal: the installed handler must convert
            # it into a clean exit, not a KeyboardInterrupt traceback.
            os.kill(os.getpid(), signal.SIGTERM)
            raise AssertionError("signal was not delivered")

        monkeypatch.setitem(cli._FIGURES, "5", figure)
        assert main(["figure", "5"]) == 143
        err = capsys.readouterr().err
        assert "interrupted (SIGTERM)" in err

    def test_handlers_are_restored_after_main(self):
        before = signal.getsignal(signal.SIGTERM)
        main(["list"])
        assert signal.getsignal(signal.SIGTERM) == before


class TestResumeSweepCLI:
    def test_resume_sweep_replays_interrupted_run(
        self, tmp_path, capsys, monkeypatch
    ):
        journal_dir = str(tmp_path / "journal")
        code = main([
            "figure", "5", "--workloads", "art,dot",
            "--instructions", str(BUDGET), "--warmup", str(WARMUP),
            "--journal-dir", journal_dir,
        ])
        assert code == 0
        capsys.readouterr()

        code = main(["resume-sweep", "--journal-dir", journal_dir])
        captured = capsys.readouterr()
        assert code == 0
        assert "replayed from cache" in captured.out
        assert "re-simulated" in captured.out
        assert "0 unfinished" in captured.err

    def test_resume_sweep_requires_journal_dir(self, capsys):
        assert main(["resume-sweep"]) == 2
        assert "requires --journal-dir" in capsys.readouterr().err

    def test_resume_sweep_with_empty_journal(self, tmp_path, capsys):
        assert main(
            ["resume-sweep", "--journal-dir", str(tmp_path / "nothing")]
        ) == 2
        assert "no recoverable journal" in capsys.readouterr().err

    def test_chaos_flag_round_trips_through_cli(self, tmp_path, capsys):
        # --no-cache keeps the jobs genuinely pending (a warm cache
        # would replay everything and give chaos nothing to disturb).
        code = main([
            "figure", "5", "--workloads", "art",
            "--instructions", str(BUDGET), "--warmup", str(WARMUP),
            "--jobs", "2", "--no-cache",
            "--journal-dir", str(tmp_path / "j"),
            "--chaos", "seed=7", "kill-rate=0.2",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "chaos: kills=" in captured.err
        assert "reclaimed=" in captured.err


class TestHardenedStores:
    def test_disk_full_disables_cache_not_the_sweep(
        self, tmp_path, monkeypatch
    ):
        import errno

        cache = ResultCache(tmp_path / "cache")
        real_replace = os.replace

        def replace_enospc(src, dst):
            raise OSError(errno.ENOSPC, "no space left on device")

        monkeypatch.setattr(os, "replace", replace_enospc)
        key = cache.key_for({"k": 1})
        assert cache.put(key, {"k": 1}, {"ipc": 1.0}, 0.1) is False
        assert cache.disabled
        monkeypatch.setattr(os, "replace", real_replace)
        # Still off for the rest of the run — degraded, not flapping.
        assert cache.put(key, {"k": 1}, {"ipc": 1.0}, 0.1) is False
        engine = ExperimentEngine(cache=cache)
        assert engine.run(_jobs(("art",)))[0].ok

    def test_checkpoint_quarantine_moves_corrupt_snapshot(self, tmp_path):
        from repro.checkpoint import CheckpointStore

        store = CheckpointStore(tmp_path)
        prefix = store.prefix_key(_jobs(("art",))[0].spec())
        path = store.path_for(prefix, 1_000)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"garbage")
        assert store.best(prefix, 2_000) is None
        assert store.quarantined == 1
        assert not path.exists()
        moved = list((tmp_path / "quarantine").rglob("*.ckpt"))
        assert len(moved) == 1
