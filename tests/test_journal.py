"""The durable job journal: append/recover round-trips, torn-write and
corruption tolerance, atomic rotation, and engine integration."""

from __future__ import annotations

import json

import pytest

from repro.errors import JournalError
from repro.harness.engine import ExperimentEngine, make_job
from repro.harness.journal import (
    EVENTS,
    JobJournal,
    job_key,
)
from repro.logutil import reset_logging

BUDGET = 2_000
WARMUP = 200


def _job(workload="art", **overrides):
    kwargs = dict(
        max_instructions=BUDGET, warmup_instructions=WARMUP,
    )
    kwargs.update(overrides)
    return make_job(workload, **kwargs)


class TestAppendRecover:
    def test_round_trip_reconstructs_job_states(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=False)
        job = _job()
        key = job_key(job.spec())
        journal.append("sweep", argv=["figure", "5"])
        journal.append("submit", key=key, job=job.to_dict())
        journal.append("start", key=key)
        journal.append("done", key=key, elapsed_s=1.5)
        state = journal.recover()
        assert state.records == 4
        assert state.skipped == 0
        assert state.sweep == {"argv": ["figure", "5"]}
        record = state.jobs[key]
        assert record.state == "done"
        assert record.finished
        assert record.elapsed_s == 1.5
        assert record.job == job.to_dict()
        assert state.unfinished() == []

    def test_unfinished_jobs_surface_for_resume(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=False)
        done, stuck = _job("art"), _job("dot")
        for job in (done, stuck):
            journal.append(
                "submit", key=job_key(job.spec()), job=job.to_dict()
            )
        journal.append("start", key=job_key(done.spec()))
        journal.append("done", key=job_key(done.spec()), elapsed_s=0.1)
        journal.append("start", key=job_key(stuck.spec()))
        state = journal.recover()
        pending = state.unfinished()
        assert [r.key for r in pending] == [job_key(stuck.spec())]
        assert pending[0].state == "running"

    def test_reclaim_counts_strikes_and_requeues(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=False)
        key = job_key(_job().spec())
        journal.append("submit", key=key, job=_job().to_dict())
        journal.append("start", key=key)
        journal.append("reclaimed", key=key, reason="WorkerCrashError")
        journal.append("start", key=key)
        journal.append("reclaimed", key=key, reason="LeaseExpiredError")
        state = journal.recover()
        record = state.jobs[key]
        assert record.state == "submitted"
        assert record.strikes == 2
        assert not record.finished

    def test_unknown_event_raises(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=False)
        with pytest.raises(JournalError, match="unknown journal event"):
            journal.append("vanished", key="k")

    def test_sequence_continues_across_reopen(self, tmp_path):
        first = JobJournal(tmp_path, fsync=False)
        seq = first.append("sweep", argv=[])
        first.close()
        second = JobJournal(tmp_path, fsync=False)
        assert second.append("interrupted") == seq + 1


class TestCorruptionTolerance:
    def _populated(self, tmp_path) -> JobJournal:
        journal = JobJournal(tmp_path, fsync=False)
        for name in ("art", "dot"):
            job = _job(name)
            key = job_key(job.spec())
            journal.append("submit", key=key, job=job.to_dict())
            journal.append("start", key=key)
            journal.append("done", key=key, elapsed_s=0.2)
        journal.close()
        return journal

    def test_torn_tail_recovers_verified_prefix(self, tmp_path):
        journal = self._populated(tmp_path)
        whole = journal.path.read_text()
        lines = whole.splitlines()
        # Tear the final record mid-write, exactly as a crash would.
        torn = "\n".join(lines[:-1] + [lines[-1][: len(lines[-1]) // 2]])
        journal.path.write_text(torn)
        state = JobJournal(tmp_path, fsync=False).recover()
        assert state.skipped == 1
        assert state.records == len(lines) - 1
        # The torn record was 'dot's done: it recovers as unfinished.
        assert len(state.unfinished()) == 1

    def test_mid_file_bit_rot_skips_only_that_record(self, tmp_path):
        journal = self._populated(tmp_path)
        lines = journal.path.read_text().splitlines()
        # Flip one byte inside the second record's payload.
        lines[1] = lines[1].replace('"event"', '"Event"', 1)
        journal.path.write_text("\n".join(lines) + "\n")
        state = JobJournal(tmp_path, fsync=False).recover()
        assert state.skipped == 1
        assert state.records == len(lines) - 1

    def test_checksum_guards_against_tamper(self, tmp_path):
        journal = self._populated(tmp_path)
        lines = journal.path.read_text().splitlines()
        record = json.loads(lines[0])
        record["data"] = {"argv": ["forged"]}  # sum now stale
        lines[0] = json.dumps(record, sort_keys=True)
        journal.path.write_text("\n".join(lines) + "\n")
        state = JobJournal(tmp_path, fsync=False).recover()
        assert state.skipped == 1

    def test_garbage_lines_and_blank_lines_are_skipped(self, tmp_path):
        journal = self._populated(tmp_path)
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write("\n{not json\n[1,2]\n")
        state = JobJournal(tmp_path, fsync=False).recover()
        assert state.skipped == 2  # blank line is not even counted
        assert len(state.jobs) == 2

    def test_missing_file_recovers_empty(self, tmp_path):
        state = JobJournal(tmp_path, fsync=False).recover()
        assert state.jobs == {}
        assert state.records == 0

    def test_skip_warning_names_byte_offset_and_counts(
        self, tmp_path, caplog
    ):
        journal = self._populated(tmp_path)
        raw = journal.path.read_bytes()
        lines = raw.split(b"\n")
        # The first torn line starts right after the intact prefix.
        expected_offset = len(b"\n".join(lines[:2])) + 1
        lines[2] = lines[2][: len(lines[2]) // 2]
        journal.path.write_bytes(b"\n".join(lines))
        # A prior CLI test may have configured the repro logger tree
        # with propagate=False; restore propagation so caplog sees it.
        reset_logging()
        with caplog.at_level("WARNING", logger="repro.journal"):
            state = JobJournal(tmp_path, fsync=False).recover()
        assert state.first_skipped_offset == expected_offset
        messages = [
            r.getMessage() for r in caplog.records
            if "torn or corrupt" in r.getMessage()
        ]
        assert messages
        assert "dropped 1 torn or corrupt line(s)" in messages[-1]
        assert f"first at byte offset {expected_offset}" in messages[-1]

    def test_undecodable_bytes_are_skipped_with_offset(self, tmp_path):
        journal = self._populated(tmp_path)
        with open(journal.path, "ab") as fh:
            fh.write(b"\xff\xfe garbage bytes\n")
        state = JobJournal(tmp_path, fsync=False).recover()
        assert state.skipped == 1
        assert state.first_skipped_offset is not None
        assert len(state.jobs) == 2

    def test_clean_log_has_no_skip_offset(self, tmp_path):
        journal = self._populated(tmp_path)
        state = journal.recover()
        assert state.skipped == 0
        assert state.first_skipped_offset is None


class TestRotation:
    def test_rotate_compacts_but_preserves_state(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=False)
        job = _job()
        key = job_key(job.spec())
        journal.append("sweep", argv=["claims"])
        journal.append("submit", key=key, job=job.to_dict())
        for _ in range(3):  # a noisy history of reclaims
            journal.append("start", key=key)
            journal.append("reclaimed", key=key, reason="x")
        journal.append("start", key=key)
        journal.append("done", key=key, elapsed_s=2.0)
        before = journal.recover()
        dropped = journal.rotate()
        assert dropped > 0
        after = JobJournal(tmp_path, fsync=False).recover()
        assert after.sweep == before.sweep
        assert after.jobs[key].state == before.jobs[key].state
        assert after.jobs[key].strikes == before.jobs[key].strikes
        assert after.jobs[key].job == before.jobs[key].job
        assert after.records < before.records

    def test_rotated_log_is_append_ready(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=False)
        key = job_key(_job().spec())
        journal.append("submit", key=key, job=_job().to_dict())
        journal.rotate()
        assert journal.append("start", key=key) is not None
        state = JobJournal(tmp_path, fsync=False).recover()
        assert state.jobs[key].state == "running"
        assert state.skipped == 0


class TestEngineIntegration:
    def test_engine_journals_lifecycle_and_cache_hits(self, tmp_path):
        journal = JobJournal(tmp_path / "j", fsync=False)
        engine = ExperimentEngine(journal=journal)
        job = _job()
        assert engine.run([job])[0].ok
        key = job_key(job.spec())
        state = journal.recover()
        assert state.jobs[key].state == "done"

        # A second engine over the same journal replays from cache and
        # records that as terminal too.
        second = ExperimentEngine(
            journal=JobJournal(tmp_path / "j", fsync=False)
        )
        outcome = second.run([job])[0]
        assert outcome.cached
        assert JobJournal(
            tmp_path / "j", fsync=False
        ).recover().jobs[key].state == "done"

    def test_every_engine_event_is_a_known_event(self):
        for event in (
            "sweep", "submit", "cached", "start", "done",
            "failed", "reclaimed", "quarantined", "interrupted",
        ):
            assert event in EVENTS

    def test_job_key_excludes_code_version(self, monkeypatch):
        from repro.harness.cache import ENV_CODE_VERSION

        spec = _job().spec()
        monkeypatch.setenv(ENV_CODE_VERSION, "v1")
        first = job_key(spec)
        monkeypatch.setenv(ENV_CODE_VERSION, "v2")
        assert job_key(spec) == first
