"""Tests for the Delinquent Load Table (paper section 3.3)."""

import pytest

from repro.config import DLTConfig
from repro.trident.dlt import DelinquentLoadTable

#: Paper threshold: avg miss latency must exceed half the L2-miss latency.
LAT_THRESHOLD = 17.5


def make_dlt(**kwargs):
    return DelinquentLoadTable(DLTConfig(**kwargs), LAT_THRESHOLD)


def run_window(dlt, pc, misses, window=256, miss_latency=350, stride=8):
    """Drive one monitoring window; returns True if any update fired."""
    fired = False
    addr = 0x10000
    for i in range(window):
        is_miss = i < misses
        fired |= dlt.update(pc, addr, is_miss, miss_latency if is_miss else 0)
        addr += stride
    return fired


class TestDelinquencyWindow:
    def test_fires_at_window_end_when_over_threshold(self):
        dlt = make_dlt()
        assert run_window(dlt, pc=10, misses=8)
        assert dlt.events_fired == 1

    def test_does_not_fire_below_miss_threshold(self):
        dlt = make_dlt()
        assert not run_window(dlt, pc=10, misses=7)
        assert dlt.events_fired == 0

    def test_does_not_fire_below_latency_threshold(self):
        dlt = make_dlt()
        assert not run_window(dlt, pc=10, misses=20, miss_latency=11)

    def test_counters_reset_after_clean_window(self):
        dlt = make_dlt()
        run_window(dlt, pc=10, misses=0)
        entry = dlt.lookup(10)
        assert entry.access_counter == 0
        assert entry.miss_counter == 0

    def test_counters_frozen_while_pending(self):
        dlt = make_dlt()
        run_window(dlt, pc=10, misses=8)
        entry = dlt.lookup(10)
        frozen = entry.access_counter
        # Updates while pending re-offer the event, don't count.
        assert dlt.update(10, 0x90000, True, 350)
        assert entry.access_counter == frozen

    def test_clear_window_restarts_monitoring(self):
        dlt = make_dlt()
        run_window(dlt, pc=10, misses=8)
        dlt.clear_window(10)
        entry = dlt.lookup(10)
        assert entry.access_counter == 0
        assert not entry.event_pending
        # A second full delinquent window fires again.
        assert run_window(dlt, pc=10, misses=8)
        assert dlt.events_fired == 2

    def test_mature_load_never_fires(self):
        dlt = make_dlt()
        run_window(dlt, pc=10, misses=8)
        dlt.set_mature(10)
        assert not run_window(dlt, pc=10, misses=256)
        assert dlt.events_fired == 1

    def test_mature_cleared_on_eviction(self):
        dlt = make_dlt(entries=2, associativity=2)  # one set
        dlt.update(0, 0x10000, False, 0)
        dlt.set_mature(0)
        # Two more PCs in the same (only) set evict pc 0.
        dlt.update(1, 0x20000, False, 0)
        dlt.update(2, 0x30000, False, 0)
        assert dlt.lookup(0) is None
        dlt.update(0, 0x10000, False, 0)
        assert not dlt.lookup(0).mature


class TestStrideTracking:
    def test_confidence_saturates_on_constant_stride(self):
        dlt = make_dlt()
        addr = 0x10000
        for _ in range(20):
            dlt.update(7, addr, False, 0)
            addr += 64
        assert dlt.is_stride_predictable(7)
        assert dlt.predicted_stride(7) == 64

    def test_needs_sixteen_matches(self):
        dlt = make_dlt()
        addr = 0x10000
        for _ in range(10):
            dlt.update(7, addr, False, 0)
            addr += 64
        assert not dlt.is_stride_predictable(7)

    def test_asymmetric_penalty(self):
        dlt = make_dlt()
        addr = 0x10000
        for _ in range(20):
            dlt.update(7, addr, False, 0)
            addr += 64
        # One irregular step drops confidence by 7: no longer predictable.
        dlt.update(7, 0x999000, False, 0)
        assert not dlt.is_stride_predictable(7)
        entry = dlt.lookup(7)
        assert entry.confidence == 15 - 7

    def test_scrambled_addresses_never_predictable(self):
        import random

        rng = random.Random(3)
        dlt = make_dlt()
        for _ in range(300):
            dlt.update(7, rng.randrange(1 << 24) * 8, False, 0)
        assert not dlt.is_stride_predictable(7)

    def test_zero_stride_not_predicted(self):
        dlt = make_dlt()
        for _ in range(20):
            dlt.update(7, 0x10000, False, 0)
        assert dlt.predicted_stride(7) is None


class TestPartialWindow:
    def test_partial_window_delinquency(self):
        dlt = make_dlt()
        addr = 0x10000
        for i in range(100):
            dlt.update(9, addr, i < 10, 350 if i < 10 else 0)
            addr += 8
        # 10 misses in 100 accesses (10%) at 350 cycles: pro-rated over
        # the window this is well above 8/256.
        assert dlt.is_delinquent_now(9)

    def test_partial_window_not_delinquent_with_low_rate(self):
        dlt = make_dlt()
        addr = 0x10000
        for i in range(128):
            dlt.update(9, addr, i < 2, 350 if i < 2 else 0)
            addr += 8
        # 2 misses in 128 accesses: pro-rated threshold is 4.
        assert not dlt.is_delinquent_now(9)

    def test_unknown_pc_not_delinquent(self):
        dlt = make_dlt()
        assert not dlt.is_delinquent_now(123)


class TestAssociativity:
    def test_lru_within_set(self):
        dlt = make_dlt(entries=2, associativity=2)
        dlt.update(0, 0x10000, False, 0)
        dlt.update(1, 0x20000, False, 0)
        dlt.update(0, 0x30000, False, 0)  # touch pc 0
        dlt.update(2, 0x40000, False, 0)  # evicts pc 1 (LRU)
        assert dlt.lookup(0) is not None
        assert dlt.lookup(1) is None
        assert dlt.evictions == 1

    def test_entries_listing(self):
        dlt = make_dlt()
        dlt.update(1, 0x10000, False, 0)
        dlt.update(2, 0x20000, False, 0)
        assert {e.tag for e in dlt.entries()} == {1, 2}

    def test_average_access_latency(self):
        dlt = make_dlt()
        dlt.update(5, 0x10000, True, 100)
        dlt.update(5, 0x10008, False, 0)
        entry = dlt.lookup(5)
        assert entry.average_access_latency(3) == 3 + 100 / 2
